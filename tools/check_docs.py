#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files.

Usage: python tools/check_docs.py README.md docs/architecture.md ...

Scans each markdown file for ``[text](target)`` links, skips external
targets (http/https/mailto) and pure anchors, strips ``#fragment``
suffixes from the rest, and verifies the target exists relative to the
linking file.  Also verifies that every ``RPLxxx`` lint-rule code the
docs mention exists in the ``repro.lint`` rule registry, so the rule
catalog in ``docs/linting.md`` cannot drift from the code.  Exits
non-zero listing every broken link or phantom rule code.  Used by the
CI docs job and ``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")
RULE_CODE_RE = re.compile(r"\bRPL\d{3}\b")


def _rule_registry() -> dict:
    """The live ``repro.lint`` registry (bootstrapping ``src/`` onto
    the path for direct invocations without ``PYTHONPATH=src``)."""
    try:
        from repro.lint import RULES
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
        from repro.lint import RULES
    return RULES


def unknown_rule_codes(path: Path) -> list:
    """(code, reason) pairs for RPL codes in *path* missing from the
    rule registry."""
    registry = _rule_registry()
    problems = []
    text = path.read_text(encoding="utf-8")
    for code in sorted(set(RULE_CODE_RE.findall(text))):
        if code not in registry:
            problems.append(
                (code, f"{path}: mentions {code}, not in the repro.lint registry")
            )
    return problems


def broken_links(path: Path) -> list:
    """Return (target, reason) pairs for unresolvable links in *path*."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for target in LINK_RE.findall(text):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            problems.append((target, f"{path}: missing {relative}"))
    return problems


def main(argv) -> int:
    if not argv:
        print("usage: check_docs.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    failures = []
    for name in argv:
        path = Path(name)
        if not path.exists():
            failures.append((name, f"{name}: file does not exist"))
            continue
        failures.extend(broken_links(path))
        failures.extend(unknown_rule_codes(path))
    for _, reason in failures:
        print(f"BROKEN: {reason}", file=sys.stderr)
    if not failures:
        print(
            f"ok: {len(argv)} file(s), all relative links resolve and "
            "all RPL codes exist"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
