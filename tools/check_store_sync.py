#!/usr/bin/env python3
"""CI gate: two-root sharded campaign + sync + merge matches the golden.

The cross-host story end to end, driven through the real CLI: a 3-shard
campaign is split across two physically separate store roots (shards 1-2
on "host A", shard 3 on "host B"), the roots are reconciled with
``python -m repro store sync``, merged on host A, and the canonical
campaign entry must be byte-identical to a single-host run's entry.
Runs the whole flow twice — once with host A on the filesystem backend
and once with host A on the SQLite backend — so the gate also pins the
backend-invariance guarantee (payload bytes identical through any
backend).  Exits non-zero with a diagnostic on any mismatch.

Usage::

    PYTHONPATH=src python tools/check_store_sync.py
    PYTHONPATH=src python tools/check_store_sync.py --scenario town-multilateration --trials 9
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from _gate_common import entry_bytes, run_cli


def check_backend(tag: str, host_a: Path, host_b: Path, golden: bytes, args) -> None:
    base = [
        "run",
        args.scenario,
        "--seed",
        str(args.seed),
        "--trials",
        str(args.trials),
    ]
    run_cli([*base, "--shard", "1/3"], host_a)
    run_cli([*base, "--shard", "2/3"], host_a)
    run_cli([*base, "--shard", "3/3"], host_b)
    run_cli(["store", "sync", str(host_b), str(host_a)])
    run_cli(
        [
            "merge",
            args.scenario,
            "--seed",
            str(args.seed),
            "--trials",
            str(args.trials),
            "--shards",
            "3",
        ],
        host_a,
    )
    merged = entry_bytes(host_a, args.scenario, args.seed, args.trials)
    if merged != golden:
        sys.exit(
            f"FAIL [{tag}]: two-root synced + merged entry of {args.scenario} "
            f"(seed={args.seed}, trials={args.trials}) is not byte-identical "
            f"to the single-host golden ({len(merged)} vs {len(golden)} bytes)"
        )
    print(
        f"ok [{tag}]: two-root 3-shard sync + merge of {args.scenario} is "
        f"byte-identical to the single-host golden ({len(golden)} bytes)"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="uniform-multilateration")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trials", type=int, default=6)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        single = tmp_path / "single"
        run_cli(
            [
                "run",
                args.scenario,
                "--seed",
                str(args.seed),
                "--trials",
                str(args.trials),
            ],
            single,
        )
        golden = entry_bytes(single, args.scenario, args.seed, args.trials)
        check_backend(
            "filesystem hostA",
            tmp_path / "host-a",
            tmp_path / "host-b",
            golden,
            args,
        )
        check_backend(
            "sqlite hostA",
            tmp_path / "host-a.sqlite",
            tmp_path / "host-b2",
            golden,
            args,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
