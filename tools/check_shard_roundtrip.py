#!/usr/bin/env python3
"""CI gate: a 3-shard + merge round-trip must match the single-host golden.

Drives the real CLI (``python -m repro run --shard K/N`` three times,
then ``python -m repro merge``) against a temporary store, runs the same
campaign single-host into a second temporary store, and asserts the two
canonical campaign entries are byte-identical.  Exits non-zero with a
diagnostic on any mismatch.

Usage::

    PYTHONPATH=src python tools/check_shard_roundtrip.py
    PYTHONPATH=src python tools/check_shard_roundtrip.py --scenario town-multilateration --trials 9
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from _gate_common import entry_bytes, run_cli


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="uniform-multilateration")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trials", type=int, default=6)
    parser.add_argument("--shards", type=int, default=3)
    args = parser.parse_args()

    base = ["run", args.scenario, "--seed", str(args.seed), "--trials", str(args.trials)]
    with tempfile.TemporaryDirectory() as tmp:
        sharded = Path(tmp) / "sharded"
        single = Path(tmp) / "single"
        for k in range(1, args.shards + 1):
            run_cli([*base, "--shard", f"{k}/{args.shards}"], sharded)
        # Auto-merge published the canonical entry with the last shard;
        # the explicit merge must agree (and is the CI path under test).
        run_cli(
            [
                "merge",
                args.scenario,
                "--seed",
                str(args.seed),
                "--trials",
                str(args.trials),
                "--shards",
                str(args.shards),
            ],
            sharded,
        )
        run_cli(base, single)
        merged = entry_bytes(sharded, args.scenario, args.seed, args.trials)
        golden = entry_bytes(single, args.scenario, args.seed, args.trials)
    if merged != golden:
        print(
            f"FAIL: {args.shards}-shard merge of {args.scenario} "
            f"(seed={args.seed}, trials={args.trials}) is not byte-identical "
            f"to the single-host entry ({len(merged)} vs {len(golden)} bytes)",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: {args.shards}-shard + merge round-trip of {args.scenario} "
        f"(seed={args.seed}, trials={args.trials}) is byte-identical to the "
        f"single-host golden ({len(golden)} bytes)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
