"""Shared plumbing for the CI gate scripts in this directory.

The gates (`check_shard_roundtrip.py`, `check_store_sync.py`,
`check_trace_schema.py`) drive the real CLI as subprocesses; the
invoke-and-exit-on-failure and golden-entry-lookup logic lives here
once so the gates cannot silently diverge.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path
from typing import List, Optional


def run_cli(args: List[str], store: Optional[Path] = None) -> None:
    """Run ``python -m repro <args>`` (appending ``--store`` when given);
    exits the gate with the command's output on any failure."""
    run_cli_output(args, store)


def run_cli_output(args: List[str], store: Optional[Path] = None) -> str:
    """Like :func:`run_cli`, but returns the command's stdout so gates
    can assert on what the CLI printed (``check_trace_schema.py``)."""
    command = [sys.executable, "-m", "repro", *args]
    if store is not None:
        command += ["--store", str(store)]
    result = subprocess.run(command, capture_output=True, text=True)
    if result.returncode != 0:
        sys.exit(
            f"command failed ({result.returncode}): {' '.join(command)}\n"
            f"{result.stdout}{result.stderr}"
        )
    return result.stdout


def entry_bytes(store: Path, scenario_id: str, seed: int, trials: int) -> bytes:
    """The canonical campaign entry's stored bytes (any backend), or a
    gate failure when the entry is missing."""
    from repro.scenarios import get_scenario, scenario_run_key
    from repro.store import ResultStore

    result_store = ResultStore(store)
    key = result_store.key_for(
        scenario_run_key(get_scenario(scenario_id), master_seed=seed, n_trials=trials)
    )
    data = result_store.get_bytes(key)
    if data is None:
        sys.exit(f"no canonical campaign entry for {scenario_id} in {store}")
    return data
