#!/usr/bin/env python3
"""CI gate: the perf harness works end to end and the smoke suite has
not regressed beyond a generous threshold.

Drives the real CLI:

1. ``repro bench run --suite smoke`` must produce a bench record that
   validates against the versioned schema (written into the artifact
   directory, which CI uploads for later trajectory analysis);
2. ``repro bench check`` must pass (exit 0) on an identical re-check of
   that record against itself — the no-regression baseline case;
3. injecting a synthetic 2x slowdown into a copy of the record must
   make ``repro bench check`` exit 1 — proving the gate can actually
   fire before we rely on it;
4. the fresh record is checked against the committed baseline
   (``benchmarks/baselines/BENCH_smoke.json``) with a deliberately
   generous tolerance — CI machines vary wildly in speed, so this
   catches "10x slower" catastrophes and workload-coverage drift, not
   few-percent noise.  Counter drifts are reported, never fatal.

Usage::

    PYTHONPATH=src python tools/check_perf.py
    PYTHONPATH=src python tools/check_perf.py --repeats 3 --rel-tol 9.0
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from _gate_common import run_cli_output

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_smoke.json"


def _fail(tag: str, detail: str) -> None:
    sys.exit(f"FAIL [{tag}]: {detail}")


def _run_check(current: Path, baseline: Path, *extra: str):
    """``repro bench check`` without exiting on nonzero (the gate
    asserts on specific exit codes, including the expected-failure 1)."""
    command = [
        sys.executable,
        "-m",
        "repro",
        "bench",
        "check",
        str(current),
        "--baseline",
        str(baseline),
        *extra,
    ]
    result = subprocess.run(command, capture_output=True, text=True)
    return result.returncode, result.stdout + result.stderr


def check_bench_run(artifact_dir: Path, suite: str, repeats: int) -> Path:
    """Run the suite; the record must validate and cover every workload."""
    from repro.perf import get_suite, read_bench_record

    record_path = artifact_dir / f"BENCH_{suite}.json"
    out = run_cli_output(
        [
            "bench",
            "run",
            "--suite",
            suite,
            "--repeats",
            str(repeats),
            "--out",
            str(record_path),
        ]
    )
    record = read_bench_record(record_path)  # raises on schema violation
    expected = [w.workload_id for w in get_suite(suite)]
    got = [r["id"] for r in record["results"]]
    if got != expected:
        _fail("run", f"workload coverage drifted: {got} != {expected}")
    if record["manifest"].get("suite") != suite:
        _fail("run", f"manifest suite field: {record['manifest'].get('suite')!r}")
    if f"-> {record_path}" not in out:
        _fail("run", f"CLI did not report the output path:\n{out}")
    print(f"ok [run]: {len(got)} workloads, schema-valid record at {record_path}")
    return record_path


def check_self_comparison(record_path: Path) -> None:
    """A record checked against itself must always pass."""
    code, out = _run_check(record_path, record_path)
    if code != 0:
        _fail("self", f"identical records exited {code}:\n{out}")
    if "no regressions" not in out:
        _fail("self", f"pass verdict missing from output:\n{out}")
    print("ok [self]: identical re-check exits 0")


def check_injected_slowdown(record_path: Path, artifact_dir: Path) -> None:
    """A synthetic 2x slowdown must trip the gate (exit 1)."""
    with open(record_path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    for result in record["results"]:
        result["timings_s"] = [t * 2.0 for t in result["timings_s"]]
        result["median_s"] *= 2.0
        result["min_s"] *= 2.0
    slow_path = artifact_dir / "BENCH_injected_slowdown.json"
    with open(slow_path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, sort_keys=True, indent=2)
    code, out = _run_check(slow_path, record_path)
    if code != 1:
        _fail("inject", f"2x slowdown exited {code} (want 1):\n{out}")
    if "FAIL" not in out:
        _fail("inject", f"no FAIL finding in output:\n{out}")
    print("ok [inject]: synthetic 2x slowdown trips the gate (exit 1)")


def check_against_baseline(
    record_path: Path, baseline: Path, rel_tol: float
) -> None:
    """The fresh record must be comparable to, and within the (very
    generous) tolerance of, the committed baseline."""
    code, out = _run_check(
        record_path, baseline, "--rel-tol", str(rel_tol)
    )
    if code == 2:
        _fail("baseline", f"records not comparable:\n{out}")
    if code != 0:
        _fail(
            "baseline",
            f"smoke suite regressed beyond +{rel_tol:.0%} vs committed "
            f"baseline:\n{out}",
        )
    print(f"ok [baseline]: within +{rel_tol:.0%} of {baseline.name}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="smoke")
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--rel-tol",
        type=float,
        default=9.0,
        help="allowed relative slowdown vs the committed baseline "
        "(default 9.0 = 10x: cross-machine timing gate, not a tuner)",
    )
    parser.add_argument(
        "--artifact-dir",
        type=Path,
        default=Path("perf-artifacts"),
        help="bench records land here (CI uploads this directory)",
    )
    args = parser.parse_args()

    args.artifact_dir.mkdir(parents=True, exist_ok=True)
    record_path = check_bench_run(args.artifact_dir, args.suite, args.repeats)
    check_self_comparison(record_path)
    check_injected_slowdown(record_path, args.artifact_dir)
    if args.baseline.exists():
        check_against_baseline(record_path, args.baseline, args.rel_tol)
    else:
        _fail("baseline", f"committed baseline missing: {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
