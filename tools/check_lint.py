#!/usr/bin/env python3
"""CI gate: the shipped tree must pass ``python -m repro lint``.

Usage: PYTHONPATH=src python tools/check_lint.py

Drives the real CLI (``lint --json``), parses the versioned JSON report
through the same :class:`repro.lint.LintReport` reader downstream
tooling uses — so the gate also fails if the CLI ever emits a report
the reader rejects — and fails listing every finding.  Suppressed and
allowlisted discharges are printed for the CI log: "clean" must stay
auditable, never silent.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _gate_common import run_cli_output  # noqa: E402

try:
    from repro.lint import LintReport
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.lint import LintReport


def main() -> int:
    command = [sys.executable, "-m", "repro", "lint", "--json"]
    result = subprocess.run(command, capture_output=True, text=True)
    if result.returncode not in (0, 1):
        sys.exit(
            f"lint command failed ({result.returncode}): {' '.join(command)}\n"
            f"{result.stdout}{result.stderr}"
        )
    try:
        report = LintReport.from_json(result.stdout)
    except (ValueError, KeyError) as exc:
        sys.exit(f"lint --json output did not parse as a lint report: {exc}")
    for finding in report.findings:
        print(f"FINDING: {finding.render()}", file=sys.stderr)
    for finding in report.suppressed:
        print(f"suppressed: {finding.render()}")
    for finding in report.allowed:
        print(f"allowlisted: {finding.render()} [{finding.justification}]")
    if report.findings:
        print(report.summary(), file=sys.stderr)
        return 1
    # The registry listing must also run cleanly (the docs reference it).
    rules_listing = run_cli_output(["lint", "--list-rules"])
    n_rules = sum(1 for line in rules_listing.splitlines() if line[:1] == "R")
    print(
        f"ok: {report.summary()} across {n_rules} rules "
        f"({len(report.suppressed)} suppressed, {len(report.allowed)} allowlisted "
        "discharges audited above)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
