#!/usr/bin/env python3
"""CI gate: telemetry traces validate against the versioned schema.

Drives the real CLI end to end: a fixed-count scenario run with
``--trace`` must produce a trace that parses under the current schema
version and carries the expected manifest fields, span tree, and store
counters; an adaptive run must additionally record scheduler boundary
and stop events; and ``repro trace summarize`` / ``repro trace
compare`` must render both.  Exits non-zero with a diagnostic on any
violation — catching schema drift (a record shape change without a
version bump) before it ships.

Usage::

    PYTHONPATH=src python tools/check_trace_schema.py
    PYTHONPATH=src python tools/check_trace_schema.py --scenario town-multilateration
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from _gate_common import run_cli, run_cli_output


def _fail(tag: str, detail: str) -> None:
    sys.exit(f"FAIL [{tag}]: {detail}")


def _index(records):
    by_type = {}
    for record in records:
        by_type.setdefault(record["type"], []).append(record)
    return by_type


def check_fixed_trace(path: Path, scenario: str, trials: int):
    """Validate the fixed-count run's trace; returns (manifest, records)."""
    from repro.telemetry import TRACE_SCHEMA_VERSION, read_trace

    manifest, records = read_trace(path)  # raises on any schema violation
    if manifest["schema"] != TRACE_SCHEMA_VERSION:
        _fail("fixed", f"schema {manifest['schema']} != {TRACE_SCHEMA_VERSION}")
    for field in ("scenario_id", "spec_hash", "master_seed", "code_version", "host"):
        if field not in manifest:
            _fail("fixed", f"manifest missing {field!r}")
    if manifest["scenario_id"] != scenario:
        _fail("fixed", f"manifest scenario_id {manifest['scenario_id']!r}")

    by_type = _index(records)
    paths = [s["path"] for s in by_type.get("span", [])]
    for expected in ("scenario", "scenario/campaign"):
        if paths.count(expected) != 1:
            _fail("fixed", f"expected exactly one {expected!r} span, got {paths}")
    if paths.count("scenario/campaign/solve") != trials:
        _fail("fixed", f"expected {trials} solve spans, got {paths}")

    counters = {c["name"]: c["value"] for c in by_type.get("counter", [])}
    if counters.get("engine.campaign.trials") != trials:
        _fail("fixed", f"engine.campaign.trials counter: {counters}")
    store_counters = [n for n in counters if n.startswith("store.")]
    if not store_counters:
        _fail("fixed", f"no store.* counters in trace: {sorted(counters)}")
    print(
        f"ok [fixed]: {1 + len(records)} records, {len(paths)} spans, "
        f"{len(counters)} counters ({len(store_counters)} store.*)"
    )
    return manifest, records


def check_adaptive_trace(path: Path):
    """Validate the adaptive run's trace records scheduler decisions."""
    from repro.telemetry import read_trace

    _, records = read_trace(path)
    by_type = _index(records)
    events = by_type.get("event", [])
    boundaries = [e for e in events if e["name"] == "scheduler.boundary"]
    stops = [e for e in events if e["name"] == "scheduler.stop"]
    if not boundaries:
        _fail("adaptive", "no scheduler.boundary events in adaptive trace")
    if len(stops) != 1:
        _fail("adaptive", f"expected one scheduler.stop event, got {len(stops)}")
    for field in ("chunk", "committed", "half_width", "satisfied"):
        if field not in boundaries[0]["fields"]:
            _fail("adaptive", f"boundary event missing {field!r}")
    counters = {c["name"]: c["value"] for c in by_type.get("counter", [])}
    if "scheduler.trials_saved" not in counters:
        _fail("adaptive", f"no scheduler.trials_saved counter: {sorted(counters)}")
    print(
        f"ok [adaptive]: {len(boundaries)} boundary events, "
        f"stop reason {stops[0]['fields'].get('reason')!r}"
    )


def check_cli_rendering(fixed: Path, adaptive: Path) -> None:
    """`trace summarize` and `trace compare` must render both traces."""
    out = run_cli_output(["trace", "summarize", str(fixed)])
    for needle in ("span tree", "scenario", "campaign", "solve", "counters:"):
        if needle not in out:
            _fail("summarize", f"{needle!r} missing from output:\n{out}")
    out = run_cli_output(["trace", "summarize", str(adaptive)])
    for needle in ("scheduler decisions:", "boundary 1:", "stop:"):
        if needle not in out:
            _fail("summarize", f"{needle!r} missing from adaptive output:\n{out}")
    out = run_cli_output(["trace", "compare", str(fixed), str(adaptive)])
    if "engine.campaign.trials" not in out:
        _fail("compare", f"counter diff missing from output:\n{out}")
    print("ok [cli]: summarize and compare render both traces")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="uniform-multilateration")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trials", type=int, default=2)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        fixed = tmp_path / "fixed.jsonl"
        adaptive = tmp_path / "adaptive.jsonl"
        base = ["run", args.scenario, "--seed", str(args.seed)]
        run_cli(
            [*base, "--trials", str(args.trials), "--trace", str(fixed)],
            tmp_path / "store",
        )
        run_cli(
            [
                *base,
                "--trials",
                str(max(8, args.trials)),
                "--adaptive",
                "--tolerance",
                "5.0",
                "--trace",
                str(adaptive),
            ],
            tmp_path / "store",
        )
        check_fixed_trace(fixed, args.scenario, args.trials)
        check_adaptive_trace(adaptive)
        check_cli_rendering(fixed, adaptive)
    return 0


if __name__ == "__main__":
    sys.exit(main())
