"""Tests for the APS baselines (repro.core.aps)."""

import numpy as np
import pytest

from repro.core import evaluate_localization
from repro.core.aps import dv_distance_localize, dv_hop_localize
from repro.core.measurements import MeasurementSet
from repro.deploy import spread_anchors, square_grid
from repro.errors import InsufficientDataError, ValidationError
from repro.ranging import gaussian_ranges


@pytest.fixture(scope="module")
def grid_scenario():
    positions = square_grid(5, 5, spacing_m=10.0)
    ranges = gaussian_ranges(positions, max_range_m=12.0, sigma_m=0.1, rng=3)
    anchor_idx = spread_anchors(positions, 5)
    anchors = {int(i): positions[i] for i in anchor_idx}
    return positions, ranges, anchors


class TestDvHop:
    def test_localizes_grid(self, grid_scenario):
        positions, ranges, anchors = grid_scenario
        result = dv_hop_localize(ranges, anchors, len(positions))
        loc = result.localized & ~result.is_anchor
        assert loc.sum() == (~result.is_anchor).sum()
        report = evaluate_localization(result.positions[loc], positions[loc])
        # Hop-count granularity: error within about half a hop length.
        assert report.average_error < 6.0

    def test_anchor_rows_exact(self, grid_scenario):
        positions, ranges, anchors = grid_scenario
        result = dv_hop_localize(ranges, anchors, len(positions))
        for a, pos in anchors.items():
            assert np.allclose(result.positions[a], pos)

    def test_needs_three_anchors(self, grid_scenario):
        positions, ranges, anchors = grid_scenario
        two = dict(list(anchors.items())[:2])
        with pytest.raises(InsufficientDataError):
            dv_hop_localize(ranges, two, len(positions))

    def test_disconnected_node_unlocalized(self):
        positions = np.array(
            [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0], [500.0, 500.0]]
        )
        ms = MeasurementSet()
        for i, j in [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (1, 2)]:
            d = float(np.hypot(*(positions[i] - positions[j])))
            ms.add_distance(i, j, d)
        anchors = {0: positions[0], 1: positions[1], 2: positions[2]}
        result = dv_hop_localize(ms, anchors, 5)
        assert result.localized[3]
        assert not result.localized[4]

    def test_invalid_anchor_id(self, grid_scenario):
        positions, ranges, _ = grid_scenario
        with pytest.raises(ValidationError):
            dv_hop_localize(
                ranges, {0: (0, 0), 1: (1, 0), 99: (2, 0)}, len(positions)
            )

    def test_isolated_anchors_rejected(self):
        ms = MeasurementSet()
        ms.add_distance(3, 4, 5.0)
        anchors = {0: (0.0, 0.0), 1: (10.0, 0.0), 2: (0.0, 10.0)}
        with pytest.raises(InsufficientDataError):
            dv_hop_localize(ms, anchors, 5)


class TestDvDistance:
    def test_localizes_grid(self, grid_scenario):
        positions, ranges, anchors = grid_scenario
        result = dv_distance_localize(ranges, anchors, len(positions))
        loc = result.localized & ~result.is_anchor
        assert loc.sum() >= (~result.is_anchor).sum() // 2

    def test_one_hop_neighbors_accurate(self, grid_scenario):
        positions, ranges, anchors = grid_scenario
        result = dv_distance_localize(ranges, anchors, len(positions))
        # Nodes adjacent to >=3 anchors see near-exact distances.
        # At minimum, the algorithm must not distort them grossly.
        loc = result.localized & ~result.is_anchor
        report = evaluate_localization(result.positions[loc], positions[loc])
        assert report.average_error < 15.0

    def test_path_distance_overestimates(self):
        # Straight-line chain: DV-distance to a far anchor equals the
        # path sum, which for a bent path exceeds the Euclidean truth.
        positions = np.array(
            [[0.0, 0.0], [10.0, 0.0], [10.0, 10.0], [0.0, 10.0]]
        )
        ms = MeasurementSet()
        for i, j in [(0, 1), (1, 2), (2, 3)]:  # a bent path, no shortcuts
            d = float(np.hypot(*(positions[i] - positions[j])))
            ms.add_distance(i, j, d)
        anchors = {0: positions[0], 1: positions[1], 2: positions[2]}
        result = dv_distance_localize(ms, anchors, 4)
        # Node 3's estimated distance to anchor 0 is 30 m (path) vs
        # 10 m (true): position error must reflect that bias.
        assert result.localized[3]
        err = float(np.hypot(*(result.positions[3] - positions[3])))
        assert err > 1.0

    def test_invalid_measurements_type(self, grid_scenario):
        positions, _, anchors = grid_scenario
        with pytest.raises(ValidationError):
            dv_distance_localize([(0, 1, 5.0)], anchors, len(positions))


class TestAnisotropyClaim:
    def test_dv_hop_degrades_on_bent_topology(self):
        """Section 2's claim: DV-hop suffers on anisotropic layouts."""
        positions = square_grid(6, 6, spacing_m=10.0)
        n = len(positions)
        iso_ranges = gaussian_ranges(positions, max_range_m=12.0, sigma_m=0.1, rng=3)
        iso_anchors = {int(i): positions[i] for i in spread_anchors(positions, 6)}
        iso = dv_hop_localize(iso_ranges, iso_anchors, n)
        iso_loc = iso.localized & ~iso.is_anchor
        iso_err = evaluate_localization(
            iso.positions[iso_loc], positions[iso_loc]
        ).average_error

        keep = [
            i
            for i in range(n)
            if not (15.0 < positions[i][0] < 45.0 and positions[i][1] > 15.0)
        ]
        c_pos = positions[keep]
        c_ranges = gaussian_ranges(c_pos, max_range_m=12.0, sigma_m=0.1, rng=3)
        c_anchors = {int(i): c_pos[i] for i in spread_anchors(c_pos, 6)}
        aniso = dv_hop_localize(c_ranges, c_anchors, len(c_pos))
        a_loc = aniso.localized & ~aniso.is_anchor
        aniso_err = evaluate_localization(
            aniso.positions[a_loc], c_pos[a_loc]
        ).average_error

        assert aniso_err > 1.5 * iso_err
