"""Tests for deployment generators (repro.deploy)."""

import numpy as np
import pytest

from repro.core.geometry import pairwise_distances
from repro.deploy import (
    boundary_anchors,
    offset_grid,
    paper_grid,
    parking_lot_layout,
    random_anchors,
    spread_anchors,
    square_grid,
    town_layout,
    uniform_random_layout,
)
from repro.errors import ValidationError


class TestOffsetGrid:
    def test_default_shape(self):
        grid = offset_grid()
        assert grid.shape == (49, 2)

    def test_spacings(self):
        grid = offset_grid()
        dist = pairwise_distances(grid)
        np.fill_diagonal(dist, np.inf)
        nearest = dist.min(axis=1)
        # Every node's nearest neighbor is at 9 m or ~10.06 m.
        diag = np.hypot(9.0, 4.5)
        assert np.all(
            np.isclose(nearest, 9.0, atol=0.01)
            | np.isclose(nearest, diag, atol=0.01)
        )

    def test_paper_failed_node_position_exists(self):
        grid = offset_grid()
        assert np.any(np.all(np.isclose(grid, [0.0, 4.5]), axis=1))

    def test_column_structure(self):
        grid = offset_grid(columns=3, rows=2, column_spacing_m=5.0)
        xs = sorted(set(grid[:, 0]))
        assert xs == [0.0, 5.0, 10.0]

    def test_invalid(self):
        with pytest.raises(ValidationError):
            offset_grid(columns=0)
        with pytest.raises(ValidationError):
            offset_grid(column_spacing_m=0.0)
        with pytest.raises(ValidationError):
            offset_grid(offset_m=-1.0)


class TestPaperGrid:
    def test_node_counts(self):
        assert paper_grid(49).shape == (49, 2)
        assert paper_grid(47).shape == (47, 2)
        assert paper_grid(46).shape == (46, 2)

    def test_failed_node_dropped_first(self):
        grid = paper_grid(48)
        assert not np.any(np.all(np.isclose(grid, [0.0, 4.5]), axis=1))

    def test_deterministic_default(self):
        assert np.allclose(paper_grid(46), paper_grid(46))

    def test_invalid_count(self):
        with pytest.raises(ValidationError):
            paper_grid(0)
        with pytest.raises(ValidationError):
            paper_grid(50)


class TestSquareGrid:
    def test_shape_and_spacing(self):
        grid = square_grid(3, 2, spacing_m=4.0)
        assert grid.shape == (6, 2)
        assert grid[:, 0].max() == 8.0
        assert grid[:, 1].max() == 4.0

    def test_invalid(self):
        with pytest.raises(ValidationError):
            square_grid(0, 3)


class TestRandomLayouts:
    def test_uniform_count_and_bounds(self):
        pts = uniform_random_layout(30, width_m=50.0, height_m=40.0, rng=0)
        assert pts.shape == (30, 2)
        assert pts[:, 0].min() >= 0 and pts[:, 0].max() <= 50
        assert pts[:, 1].min() >= 0 and pts[:, 1].max() <= 40

    def test_uniform_min_separation(self):
        pts = uniform_random_layout(
            20, width_m=100.0, height_m=100.0, min_separation_m=10.0, rng=1
        )
        dist = pairwise_distances(pts)
        np.fill_diagonal(dist, np.inf)
        assert dist.min() >= 10.0

    def test_uniform_impossible_density(self):
        with pytest.raises(ValidationError):
            uniform_random_layout(
                100, width_m=10.0, height_m=10.0, min_separation_m=9.0, rng=0
            )

    def test_town_default(self):
        pts = town_layout(59, rng=2005)
        assert pts.shape == (59, 2)
        dist = pairwise_distances(pts)
        np.fill_diagonal(dist, np.inf)
        assert dist.min() >= 6.0

    def test_town_determinism(self):
        assert np.allclose(town_layout(30, rng=5), town_layout(30, rng=5))

    def test_town_nodes_near_streets(self):
        pts = town_layout(40, blocks_x=2, blocks_y=2, block_size_m=30.0, rng=3)
        # Every node within jitter distance of some street grid line.
        lines = [0.0, 30.0, 60.0]
        near_street = [
            min(abs(x - g) for g in lines) <= 4.0 or min(abs(y - g) for g in lines) <= 4.0
            for x, y in pts
        ]
        assert all(near_street)

    def test_parking_lot(self):
        pts = parking_lot_layout(15, rng=4)
        assert pts.shape == (15, 2)
        assert pts.max() <= 25.0

    def test_invalid_counts(self):
        with pytest.raises(ValidationError):
            uniform_random_layout(0)
        with pytest.raises(ValidationError):
            town_layout(0)


class TestAnchors:
    def setup_method(self):
        self.positions = square_grid(5, 5, spacing_m=10.0)

    def test_random_count_and_uniqueness(self):
        idx = random_anchors(25, 6, rng=0)
        assert len(idx) == 6
        assert len(set(idx.tolist())) == 6
        assert idx.max() < 25

    def test_random_invalid(self):
        with pytest.raises(ValidationError):
            random_anchors(10, 0)
        with pytest.raises(ValidationError):
            random_anchors(10, 11)

    def test_spread_deterministic(self):
        a = spread_anchors(self.positions, 4)
        b = spread_anchors(self.positions, 4)
        assert np.array_equal(a, b)

    def test_spread_covers_extremes(self):
        idx = spread_anchors(self.positions, 4, start=0)
        chosen = self.positions[idx]
        # Farthest-point sampling from a corner hits distant corners.
        assert np.any(np.all(chosen == [40.0, 40.0], axis=1))

    def test_spread_better_than_random_spread(self):
        spread_idx = spread_anchors(self.positions, 5)
        rng = np.random.default_rng(3)
        spread_min = pairwise_distances(self.positions[spread_idx])
        np.fill_diagonal(spread_min, np.inf)
        random_idx = random_anchors(25, 5, rng=rng)
        rand_min = pairwise_distances(self.positions[random_idx])
        np.fill_diagonal(rand_min, np.inf)
        assert spread_min.min() >= rand_min.min()

    def test_spread_invalid_start(self):
        with pytest.raises(ValidationError):
            spread_anchors(self.positions, 3, start=99)

    def test_boundary_prefers_periphery(self):
        idx = boundary_anchors(self.positions, 8)
        center = self.positions.mean(axis=0)
        chosen_dist = np.hypot(*(self.positions[idx] - center).T)
        others = np.setdiff1d(np.arange(25), idx)
        other_dist = np.hypot(*(self.positions[others] - center).T)
        assert chosen_dist.min() >= other_dist.max() - 1e-9
