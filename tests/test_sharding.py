"""Tests for cross-host campaign sharding.

The headline guarantee: N hosts each running one contiguous shard of a
campaign's trial-index space — with no coordination beyond the shared
``(spec, master_seed, n_trials, N)`` — produce, after the merge step, a
store entry *byte-identical* to the one a single-host run would have
published, because trial ``i`` draws child ``i`` of
``SeedSequence(master_seed)`` no matter which shard executes it.
"""

import gzip

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    CampaignResult,
    ShardCampaignResult,
    ShardSpec,
    merge_shards,
    plan_shards,
    run_campaign_shard,
    run_monte_carlo,
    shard_bounds,
)
from repro.engine.scheduler import ConfidenceStop
from repro.errors import ValidationError
from repro.scenarios import (
    get_scenario,
    merge_scenario_shards,
    run_scenario,
    run_scenario_shard,
    scenario_run_key,
    scenario_shard_key,
    scenario_shard_status,
)
from repro.store import (
    ResultStore,
    aggregates_equal,
    campaign_to_payload,
    shard_from_payload,
    shard_to_payload,
)


def _metric_trial(rng):
    return {"x": float(rng.normal()), "y": float(rng.uniform())}


def _nan_trial(rng):
    """Roughly a third of trials report a NaN metric (degenerate draws)."""
    value = rng.normal(2.0, 0.5)
    if rng.random() < 0.35:
        return {"x": float("nan"), "y": float(rng.uniform())}
    return {"x": float(value)}


def _run_all_shards(trial_fn, n_trials, n_shards, master_seed=0):
    return [
        run_campaign_shard(
            trial_fn,
            n_trials,
            shard=ShardSpec(index=k, n_shards=n_shards),
            master_seed=master_seed,
        )
        for k in range(n_shards)
    ]


class TestShardSpec:
    def test_validation(self):
        with pytest.raises(ValidationError):
            ShardSpec(index=0, n_shards=0)
        with pytest.raises(ValidationError):
            ShardSpec(index=3, n_shards=3)
        with pytest.raises(ValidationError):
            ShardSpec(index=-1, n_shards=3)

    def test_parse_cli_form_round_trip(self):
        shard = ShardSpec.parse("2/3")
        assert shard == ShardSpec(index=1, n_shards=3)
        assert shard.cli_form == "2/3"

    @pytest.mark.parametrize("text", ["", "2", "0/3", "4/3", "a/b", "2/", "/3"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValidationError):
            ShardSpec.parse(text)

    def test_describe_is_canonical(self):
        assert ShardSpec(index=1, n_shards=4).describe() == {
            "index": 1,
            "n_shards": 4,
        }


class TestPlanShards:
    def test_partition_is_contiguous_and_exhaustive(self):
        for n_trials in (1, 2, 7, 31, 64):
            for n_shards in range(1, min(n_trials, 9) + 1):
                bounds = plan_shards(n_trials, n_shards)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n_trials
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start
                sizes = [stop - start for start, stop in bounds]
                assert all(size >= 1 for size in sizes)
                assert max(sizes) - min(sizes) <= 1

    def test_shard_bounds_matches_plan(self):
        assert shard_bounds(10, ShardSpec(index=1, n_shards=3)) == (4, 7)

    def test_validation(self):
        with pytest.raises(ValidationError):
            plan_shards(0, 1)
        with pytest.raises(ValidationError):
            plan_shards(4, 0)
        with pytest.raises(ValidationError):
            plan_shards(3, 4)  # would leave an empty shard


class TestShardRun:
    def test_shard_records_equal_full_run_slice(self):
        full = run_monte_carlo(_metric_trial, 11, master_seed=42)
        for k in range(4):
            shard = ShardSpec(index=k, n_shards=4)
            result = run_campaign_shard(
                _metric_trial, 11, shard=shard, master_seed=42
            )
            start, stop = shard_bounds(11, shard)
            assert result.records == full.records[start:stop]
            assert result.bounds == (start, stop)
            assert result.campaign_trials == 11

    @pytest.mark.slow
    def test_shard_worker_count_independent(self):
        shard = ShardSpec(index=1, n_shards=2)
        serial = run_campaign_shard(_metric_trial, 16, shard=shard, master_seed=7)
        parallel = run_campaign_shard(
            _metric_trial, 16, shard=shard, master_seed=7, n_workers=3
        )
        assert parallel.records == serial.records

    def test_describe_names_range(self):
        result = run_campaign_shard(
            _metric_trial, 9, shard=ShardSpec(index=2, n_shards=3), master_seed=0
        )
        assert result.describe() == "shard 3/3: trials [6, 9) of 9"


class TestMergeShards:
    @pytest.mark.parametrize("n_trials,n_shards", [(6, 2), (9, 3), (10, 3), (5, 5)])
    def test_merge_equals_single_host_run(self, n_trials, n_shards):
        full = run_monte_carlo(_metric_trial, n_trials, master_seed=3)
        shards = _run_all_shards(_metric_trial, n_trials, n_shards, master_seed=3)
        merged = merge_shards(shards)
        assert type(merged) is CampaignResult
        assert merged.records == full.records
        assert merged.aggregate() == full.aggregate()

    def test_merge_accepts_any_order(self):
        shards = _run_all_shards(_metric_trial, 9, 3)
        merged = merge_shards(list(reversed(shards)))
        assert [r.index for r in merged.records] == list(range(9))

    def test_merge_rejects_missing_shard(self):
        shards = _run_all_shards(_metric_trial, 9, 3)
        with pytest.raises(ValidationError, match="missing shard indices \\[1\\]"):
            merge_shards([shards[0], shards[2]])

    def test_merge_rejects_duplicate_shard(self):
        shards = _run_all_shards(_metric_trial, 9, 3)
        with pytest.raises(ValidationError):
            merge_shards([shards[0], shards[1], shards[1]])

    def test_merge_rejects_mismatched_partitions(self):
        a = _run_all_shards(_metric_trial, 9, 3, master_seed=1)
        b = _run_all_shards(_metric_trial, 9, 3, master_seed=2)
        with pytest.raises(ValidationError, match="master_seed"):
            merge_shards([a[0], b[1], a[2]])
        c = run_campaign_shard(
            _metric_trial, 12, shard=ShardSpec(index=2, n_shards=3), master_seed=1
        )
        with pytest.raises(ValidationError, match="campaign_trials"):
            merge_shards([a[0], a[1], c])

    def test_merge_rejects_empty(self):
        with pytest.raises(ValidationError):
            merge_shards([])


class TestShardPayload:
    def test_round_trip_exact(self):
        result = run_campaign_shard(
            _nan_trial, 10, shard=ShardSpec(index=1, n_shards=3), master_seed=5
        )
        payload = shard_to_payload(result, context={"scenario_id": "s"})
        assert payload["type"] == "campaign-shard"
        assert payload["context"] == {"scenario_id": "s"}
        rebuilt = shard_from_payload(payload)
        assert isinstance(rebuilt, ShardCampaignResult)
        assert rebuilt.shard == result.shard
        assert rebuilt.campaign_trials == result.campaign_trials
        # NaN-tolerant record comparison via the canonical aggregate.
        assert aggregates_equal(rebuilt, result)
        assert [r.index for r in rebuilt.records] == [
            r.index for r in result.records
        ]

    def test_non_shard_payload_rejected(self):
        with pytest.raises(ValidationError):
            shard_from_payload({"type": "campaign", "records": []})


class TestScenarioSharding:
    """Store-level acceptance: merged entries are byte-identical to the
    single-host entry for the same ``(spec, master_seed, n_trials)``."""

    @pytest.fixture
    def spec(self):
        return get_scenario("uniform-multilateration")

    def _entry_bytes(self, store, spec, master_seed, n_trials):
        key = store.key_for(
            scenario_run_key(spec, master_seed=master_seed, n_trials=n_trials)
        )
        return store.path_for(key).read_bytes()

    @pytest.mark.parametrize("n_trials,n_shards", [(4, 2), (6, 3), (7, 3)])
    def test_merged_entry_byte_identical_to_single_host(
        self, tmp_path, spec, n_trials, n_shards
    ):
        single = ResultStore(tmp_path / "single", code_version="t")
        sharded = ResultStore(tmp_path / "sharded", code_version="t")
        full = run_scenario(spec, master_seed=9, n_trials=n_trials, store=single)
        merged = None
        for k in range(n_shards):
            _, merged = run_scenario_shard(
                spec,
                ShardSpec(index=k, n_shards=n_shards),
                master_seed=9,
                n_trials=n_trials,
                store=sharded,
            )
        assert merged is not None, "auto-merge must fire on the last shard"
        assert merged.records == full.records
        assert merged.aggregate() == full.aggregate()
        assert self._entry_bytes(
            sharded, spec, 9, n_trials
        ) == self._entry_bytes(single, spec, 9, n_trials)

    def test_shard_keys_are_distinct_per_shard_and_from_base(self, tmp_path, spec):
        store = ResultStore(tmp_path, code_version="t")
        base = store.key_for(scenario_run_key(spec, master_seed=0, n_trials=6))
        shard_keys = [
            store.key_for(
                scenario_shard_key(
                    spec,
                    master_seed=0,
                    n_trials=6,
                    shard=ShardSpec(index=k, n_shards=3),
                )
            )
            for k in range(3)
        ]
        assert len({base, *shard_keys}) == 4

    def test_status_probe_tracks_published_shards(self, tmp_path, spec):
        store = ResultStore(tmp_path, code_version="t")
        status = scenario_shard_status(
            spec, master_seed=0, n_trials=6, n_shards=3, store=store
        )
        assert [present for _, present in status] == [False, False, False]
        run_scenario_shard(
            spec, ShardSpec(index=1, n_shards=3), n_trials=6, store=store
        )
        status = scenario_shard_status(
            spec, master_seed=0, n_trials=6, n_shards=3, store=store
        )
        assert [present for _, present in status] == [False, True, False]

    def test_merge_raises_naming_missing_shards(self, tmp_path, spec):
        store = ResultStore(tmp_path, code_version="t")
        run_scenario_shard(
            spec, ShardSpec(index=0, n_shards=3), n_trials=6, store=store
        )
        with pytest.raises(ValidationError, match="2/3, 3/3"):
            merge_scenario_shards(spec, n_trials=6, n_shards=3, store=store)

    def test_shard_cache_hit_skips_simulation(self, tmp_path, spec):
        store = ResultStore(tmp_path, code_version="t")
        shard = ShardSpec(index=0, n_shards=2)
        first, _ = run_scenario_shard(spec, shard, n_trials=4, store=store)
        again, _ = run_scenario_shard(spec, shard, n_trials=4, store=store)
        assert store.stats.hits >= 1
        assert again.aggregate() == first.aggregate()

    def test_rerun_after_merge_reads_canonical_without_republishing(
        self, tmp_path, spec
    ):
        store = ResultStore(tmp_path, code_version="t")
        for k in range(2):
            run_scenario_shard(
                spec, ShardSpec(index=k, n_shards=2), n_trials=4, store=store
            )
        # Fresh instance for clean stats: a re-run of one shard must be
        # two reads (shard entry + canonical entry), never a re-merge
        # that loads every shard payload and republishes.
        reopened = ResultStore(tmp_path, code_version="t")
        result, merged = run_scenario_shard(
            spec, ShardSpec(index=0, n_shards=2), n_trials=4, store=reopened
        )
        assert merged is not None and merged.n_trials == 4
        assert reopened.stats.puts == 0
        assert reopened.stats.hits == 2

    def test_list_shards_reports_context(self, tmp_path, spec):
        store = ResultStore(tmp_path, code_version="t")
        run_scenario_shard(
            spec, ShardSpec(index=1, n_shards=3), n_trials=6, store=store
        )
        # Non-shard entries (full campaigns, arbitrary payloads) must be
        # skipped by the scan, not misreported.
        run_scenario(spec, master_seed=5, n_trials=2, store=store)
        store.put(store.key_for("junk"), {"campaign_trials": 1, "type": "other"})
        listed = store.list_shards()
        assert len(listed) == 1
        assert listed[0]["shard"] == {"index": 1, "n_shards": 3}
        assert listed[0]["campaign_trials"] == 6
        assert listed[0]["context"]["scenario_id"] == spec.scenario_id
        assert listed[0]["context"]["spec_hash"] == spec.spec_hash()

    def test_sharding_rejects_adaptive(self, spec):
        with pytest.raises(ValidationError, match="adaptive"):
            run_scenario(
                spec,
                n_trials=8,
                shard=ShardSpec(index=0, n_shards=2),
                stopping=ConfidenceStop(),
            )


class TestShardMergeDeterminismProperty:
    """Satellite property test: for random campaign shapes, merging the
    shard runs yields a store entry byte-identical to the single-host
    entry and an identical ``aggregate()`` — NaN metrics included.

    Two independent partitions of the same campaign are drawn per case,
    so the test also pins that the entry bytes are independent of *how*
    the index space was split.  (``chunk_size`` is not a dimension of
    fixed-count sharding — it only parameterizes the adaptive scheduler,
    which sharding deliberately excludes.)
    """

    @settings(max_examples=25, deadline=None)
    @given(
        n_trials=st.integers(min_value=1, max_value=40),
        shards_a=st.integers(min_value=1, max_value=6),
        shards_b=st.integers(min_value=1, max_value=6),
        master_seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_merge_byte_identical_for_random_shapes(
        self, tmp_path_factory, n_trials, shards_a, shards_b, master_seed
    ):
        tmp_path = tmp_path_factory.mktemp("shard-prop")
        store = ResultStore(tmp_path, code_version="prop")
        full = run_monte_carlo(_nan_trial, n_trials, master_seed=master_seed)
        reference_key = store.key_for({"case": "single", "seed": master_seed})
        store.put(reference_key, campaign_to_payload(full))
        reference = store.path_for(reference_key).read_bytes()

        for label, n_shards in (("a", shards_a), ("b", shards_b)):
            n_shards = min(n_shards, n_trials)
            merged = merge_shards(
                _run_all_shards(_nan_trial, n_trials, n_shards, master_seed)
            )
            assert aggregates_equal(merged, full)
            key = store.key_for({"case": label, "seed": master_seed})
            path = store.put(key, campaign_to_payload(merged))
            assert path.read_bytes() == reference

    def test_gzip_bytes_decode_to_identical_json(self, tmp_path):
        """The byte identity is not a gzip artifact: decoded JSON match too."""
        store = ResultStore(tmp_path, code_version="t")
        full = run_monte_carlo(_nan_trial, 13, master_seed=1)
        merged = merge_shards(_run_all_shards(_nan_trial, 13, 4, 1))
        key_a = store.key_for("a")
        key_b = store.key_for("b")
        store.put(key_a, campaign_to_payload(full))
        store.put(key_b, campaign_to_payload(merged))
        with gzip.open(store.path_for(key_a), "rt") as fh_a:
            with gzip.open(store.path_for(key_b), "rt") as fh_b:
                assert fh_a.read() == fh_b.read()
