"""Tests for synthetic range generation (repro.ranging.synthetic)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.measurements import EdgeList, MeasurementSet
from repro.deploy import square_grid
from repro.errors import ValidationError
from repro.ranging.synthetic import (
    StatisticalErrorModel,
    augment_with_gaussian_ranges,
    eligible_pairs,
    gaussian_ranges,
    statistical_campaign,
)


@pytest.fixture(scope="module")
def grid():
    return square_grid(4, 4, spacing_m=10.0)


class TestEligiblePairs:
    def test_respects_range(self, grid):
        pairs = eligible_pairs(grid, 10.5)
        dists = np.hypot(*(grid[pairs[:, 0]] - grid[pairs[:, 1]]).T)
        assert dists.max() <= 10.5
        # Exactly the 24 nearest-neighbor edges of a 4x4 grid.
        assert len(pairs) == 24

    def test_ordering(self, grid):
        pairs = eligible_pairs(grid, 15.0)
        assert np.all(pairs[:, 0] < pairs[:, 1])

    def test_invalid_range(self, grid):
        with pytest.raises(ValidationError):
            eligible_pairs(grid, 0.0)


class TestGaussianRanges:
    def test_error_statistics(self, grid):
        ms = gaussian_ranges(grid, max_range_m=22.0, sigma_m=0.33, rng=0)
        errors = ms.signed_errors()
        assert abs(errors.mean()) < 0.15
        assert 0.2 < errors.std() < 0.5

    def test_zero_sigma_exact(self, grid):
        ms = gaussian_ranges(grid, max_range_m=22.0, sigma_m=0.0, rng=0)
        assert np.allclose(ms.signed_errors(), 0.0)

    def test_max_range_respected(self, grid):
        ms = gaussian_ranges(grid, max_range_m=10.5, rng=0)
        for m in ms:
            assert m.true_distance <= 10.5

    def test_explicit_pairs(self, grid):
        pairs = np.array([[0, 1], [0, 2]])
        ms = gaussian_ranges(grid, pairs=pairs, rng=0)
        assert len(ms) == 2

    def test_non_negative(self, grid):
        ms = gaussian_ranges(grid, max_range_m=22.0, sigma_m=10.0, rng=0)
        for m in ms:
            assert m.distance >= 0.0


class TestAugmentation:
    def test_fills_unmeasured_pairs(self, grid):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 10.0, true_distance=10.0)
        out = augment_with_gaussian_ranges(ms, grid, max_range_m=10.5, rng=0)
        assert len(out.undirected_pairs) == 24  # full NN edge set

    def test_does_not_duplicate_measured(self, grid):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 55.0)  # deliberately wrong; must survive
        out = augment_with_gaussian_ranges(ms, grid, max_range_m=10.5, rng=0)
        assert out.distances(0, 1)[0] == pytest.approx(55.0)

    def test_n_extra_subsample(self, grid):
        ms = MeasurementSet()
        out = augment_with_gaussian_ranges(ms, grid, max_range_m=10.5, n_extra=5, rng=0)
        assert len(out.undirected_pairs) == 5

    def test_n_extra_larger_than_pool(self, grid):
        ms = MeasurementSet()
        out = augment_with_gaussian_ranges(
            ms, grid, max_range_m=10.5, n_extra=10_000, rng=0
        )
        assert len(out.undirected_pairs) == 24

    def test_negative_n_extra(self, grid):
        with pytest.raises(ValidationError):
            augment_with_gaussian_ranges(MeasurementSet(), grid, n_extra=-1)

    def test_edge_list_form_preserves_weights(self, grid):
        measured = EdgeList(
            pairs=np.array([[0, 1]]),
            distances=np.array([10.0]),
            weights=np.array([0.4]),
        )
        out = augment_with_gaussian_ranges(
            measured, grid, max_range_m=10.5, synthetic_weight=0.9, rng=0
        )
        assert isinstance(out, EdgeList)
        assert out.weights[0] == 0.4
        assert np.all(out.weights[1:] == 0.9)
        assert len(out) == 24

    def test_invalid_type(self, grid):
        with pytest.raises(ValidationError):
            augment_with_gaussian_ranges([(0, 1, 5.0)], grid)


class TestStatisticalErrorModel:
    def test_detection_probability_monotone(self):
        model = StatisticalErrorModel()
        probs = [model.detection_probability(d) for d in (5.0, 15.0, 20.0, 25.0)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_detection_half_point(self):
        model = StatisticalErrorModel(detect_50_m=20.0)
        assert model.detection_probability(20.0) == pytest.approx(0.5)

    def test_sample_close_range_accuracy(self):
        model = StatisticalErrorModel()
        rng = np.random.default_rng(0)
        estimates = [model.sample(8.0, rng) for _ in range(300)]
        estimates = np.array([e for e in estimates if e is not None])
        errors = estimates - 8.0
        # Core behaviour: median error small.
        assert abs(np.median(errors)) < 0.1

    def test_sample_none_beyond_range(self):
        model = StatisticalErrorModel()
        rng = np.random.default_rng(1)
        results = [model.sample(35.0, rng) for _ in range(50)]
        assert sum(r is None for r in results) >= 45

    def test_outliers_exist(self):
        model = StatisticalErrorModel(outlier_probability=0.5)
        rng = np.random.default_rng(2)
        estimates = np.array(
            [e for e in (model.sample(15.0, rng) for _ in range(200)) if e is not None]
        )
        assert (np.abs(estimates - 15.0) > 2.0).mean() > 0.2

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            StatisticalErrorModel(outlier_probability=1.5)
        with pytest.raises(ValidationError):
            StatisticalErrorModel(detect_50_m=-1.0)


class TestStatisticalCampaign:
    def test_produces_measurement_set(self, grid):
        ms = statistical_campaign(grid, rounds=2, rng=0)
        assert len(ms) > 0
        rounds = {m.round_index for m in ms}
        assert rounds <= {0, 1}

    def test_invalid_rounds(self, grid):
        with pytest.raises(ValidationError):
            statistical_campaign(grid, rounds=0)

    def test_error_shape_matches_signal_level_service(self, grid):
        """Calibration check: the statistical abstraction's core error
        spread matches the signal-level simulator's (same order)."""
        from repro.acoustics import get_environment
        from repro.ranging.link import LinkRealization
        from repro.ranging.service import RangingService

        service = RangingService(environment=get_environment("grass")).calibrate(rng=0)
        rng = np.random.default_rng(3)
        link = LinkRealization()
        signal_errors = []
        for _ in range(60):
            est = service.measure(8.0, link=link, rng=rng)
            if est is not None:
                signal_errors.append(est - 8.0)
        model = StatisticalErrorModel()
        model_errors = []
        for _ in range(200):
            est = model.sample(8.0, rng)
            if est is not None:
                model_errors.append(est - 8.0)
        sig_core = np.percentile(np.abs(signal_errors), 75)
        mod_core = np.percentile(np.abs(model_errors), 75)
        assert mod_core < 5 * max(sig_core, 0.02)
        assert sig_core < 5 * max(mod_core, 0.02)


@given(sigma=st.floats(0.0, 2.0), seed=st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_gaussian_ranges_never_negative(sigma, seed):
    grid = square_grid(2, 2, spacing_m=3.0)
    ms = gaussian_ranges(grid, max_range_m=10.0, sigma_m=sigma, rng=seed)
    assert all(m.distance >= 0 for m in ms)
