"""Tests for the experiment-report renderers."""

import pytest

from repro.experiments.base import ExperimentResult, ShapeCheck
from repro.experiments.report import (
    format_value,
    render_markdown,
    render_text,
    summary_counts,
)


@pytest.fixture
def sample_results():
    passing = ExperimentResult(
        experiment_id="figX",
        title="A passing experiment",
        paper={"error_m": 1.0, "note": "yes"},
        measured={"error_m": 1.1},
        checks=[ShapeCheck("close enough", True, "1.1 vs 1.0")],
    )
    failing = ExperimentResult(
        experiment_id="figY",
        title="A failing experiment",
        paper={"error_m": 1.0},
        measured={"error_m": 9.0},
        checks=[
            ShapeCheck("close enough", False, "9.0 vs 1.0"),
            ShapeCheck("ran at all", True),
        ],
    )
    return {"figX": passing, "figY": failing}


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(1.23456) == "1.235"

    def test_string_passthrough(self):
        assert format_value("yes") == "yes"

    def test_int(self):
        assert format_value(3) == "3"


class TestSummaryCounts:
    def test_counts(self, sample_results):
        counts = summary_counts(sample_results)
        assert counts == {
            "experiments": 2,
            "experiments_passed": 1,
            "checks": 3,
            "checks_passed": 2,
        }

    def test_empty(self):
        counts = summary_counts({})
        assert counts["experiments"] == 0


class TestRenderMarkdown:
    def test_contains_tables_and_checks(self, sample_results):
        text = render_markdown(sample_results)
        assert "## figX — A passing experiment" in text
        assert "| error_m | 1.000 | 1.100 |" in text
        assert "✅ close enough — 1.1 vs 1.0" in text
        assert "❌ close enough — 9.0 vs 1.0" in text
        assert "1/2" in text

    def test_preamble(self, sample_results):
        text = render_markdown(
            sample_results, title="Custom", preamble=["intro line"]
        )
        assert text.startswith("# Custom")
        assert "intro line" in text

    def test_missing_metric_dash(self, sample_results):
        text = render_markdown(sample_results)
        assert "| note | yes | — |" in text


class TestRenderText:
    def test_contains_summaries(self, sample_results):
        text = render_text(sample_results)
        assert "[figX]" in text and "[figY]" in text
        assert "1/2 experiments" in text
        assert "(2/3 checks)" in text
