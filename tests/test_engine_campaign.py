"""Tests for the seeded Monte-Carlo campaign runner.

The load-bearing guarantee is scheduling-independence: a campaign's
per-trial metrics and aggregate statistics are a pure function of
``(master_seed, n_trials, trial_kwargs)`` — never of the worker count
or the order workers finish in.
"""

import numpy as np
import pytest

from repro.engine import CampaignResult, TrialRecord, run_monte_carlo
from repro.engine.trials import dv_hop_trial, lss_trial, multilateration_trial
from repro.errors import ValidationError

#: Small, fast trial configuration shared by the campaign tests.
SMALL_TRIAL = dict(n_nodes=16, n_anchors=6, width_m=40.0, height_m=40.0)


def _seed_echo_trial(rng):
    """Minimal deterministic trial: echoes its stream's first draws."""
    return {"draw": float(rng.random()), "gauss": float(rng.normal())}


class TestRunMonteCarlo:
    def test_records_ordered_and_complete(self):
        result = run_monte_carlo(_seed_echo_trial, 8, master_seed=42)
        assert result.n_trials == 8
        assert [r.index for r in result.records] == list(range(8))
        assert result.metric_names == ("draw", "gauss")
        assert np.isfinite(result.metric("draw")).all()

    def test_same_master_seed_reproduces(self):
        a = run_monte_carlo(_seed_echo_trial, 6, master_seed=1)
        b = run_monte_carlo(_seed_echo_trial, 6, master_seed=1)
        assert np.array_equal(a.metric("draw"), b.metric("draw"))
        assert a.aggregate() == b.aggregate()

    def test_different_master_seeds_differ(self):
        a = run_monte_carlo(_seed_echo_trial, 6, master_seed=1)
        b = run_monte_carlo(_seed_echo_trial, 6, master_seed=2)
        assert not np.array_equal(a.metric("draw"), b.metric("draw"))

    def test_trials_are_independent_streams(self):
        result = run_monte_carlo(_seed_echo_trial, 16, master_seed=0)
        draws = result.metric("draw")
        assert np.unique(draws).size == draws.size

    def test_validation(self):
        with pytest.raises(ValidationError):
            run_monte_carlo(_seed_echo_trial, 0)
        with pytest.raises(ValidationError):
            run_monte_carlo(_seed_echo_trial, 2, n_workers=0)

    def test_non_mapping_return_rejected(self):
        def bad_trial(rng):
            return 1.0

        with pytest.raises(ValidationError):
            run_monte_carlo(bad_trial, 1)


class TestWorkerDeterminism:
    @pytest.mark.slow
    def test_parallel_matches_serial(self):
        """n_workers=1 and n_workers=4 yield identical statistics."""
        serial = run_monte_carlo(
            multilateration_trial,
            8,
            master_seed=2005,
            n_workers=1,
            trial_kwargs=SMALL_TRIAL,
        )
        parallel = run_monte_carlo(
            multilateration_trial,
            8,
            master_seed=2005,
            n_workers=4,
            trial_kwargs=SMALL_TRIAL,
        )
        assert [r.index for r in parallel.records] == [r.index for r in serial.records]
        for name in serial.metric_names:
            assert np.array_equal(
                serial.metric(name), parallel.metric(name), equal_nan=True
            ), name
        assert serial.aggregate() == parallel.aggregate()


class TestAggregation:
    def test_aggregate_statistics(self):
        records = tuple(
            TrialRecord(index=i, metrics={"x": float(v)})
            for i, v in enumerate([1.0, 2.0, 3.0, 4.0])
        )
        result = CampaignResult(master_seed=0, records=records)
        stats = result.aggregate()["x"]
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["median"] == pytest.approx(2.5)
        assert stats["min"] == 1.0 and stats["max"] == 4.0
        assert stats["n"] == 4.0

    def test_nan_metrics_excluded_from_aggregates(self):
        records = (
            TrialRecord(index=0, metrics={"x": float("nan")}),
            TrialRecord(index=1, metrics={"x": 3.0}),
        )
        result = CampaignResult(master_seed=0, records=records)
        stats = result.aggregate()["x"]
        assert stats["n"] == 1.0
        assert stats["mean"] == pytest.approx(3.0)

    def test_all_nan_metric(self):
        records = (TrialRecord(index=0, metrics={"x": float("nan")}),)
        result = CampaignResult(master_seed=0, records=records)
        stats = result.aggregate()["x"]
        assert stats["n"] == 0.0 and np.isnan(stats["mean"])

    def test_missing_metric_becomes_nan(self):
        records = (
            TrialRecord(index=0, metrics={"x": 1.0, "y": 2.0}),
            TrialRecord(index=1, metrics={"x": 5.0}),
        )
        result = CampaignResult(master_seed=0, records=records)
        y = result.metric("y")
        assert y[0] == 2.0 and np.isnan(y[1])

    def test_summary_renders(self):
        result = run_monte_carlo(_seed_echo_trial, 3, master_seed=5)
        text = result.summary()
        assert "3 trials" in text and "draw" in text


class TestBuiltinTrials:
    def test_multilateration_trial_metrics(self):
        rng = np.random.default_rng(8)
        metrics = multilateration_trial(rng, **SMALL_TRIAL)
        assert set(metrics) == {
            "fraction_localized",
            "mean_error_m",
            "median_error_m",
            "average_anchors_per_node",
        }
        assert 0.0 <= metrics["fraction_localized"] <= 1.0

    def test_lss_trial_metrics(self):
        rng = np.random.default_rng(8)
        metrics = lss_trial(rng, n_nodes=12, restarts=2, max_epochs=300)
        assert metrics["mean_error_m"] >= 0.0
        assert metrics["epochs_run"] > 0

    def test_dv_hop_trial_metrics(self):
        rng = np.random.default_rng(8)
        metrics = dv_hop_trial(rng, n_nodes=20, n_anchors=6)
        assert 0.0 <= metrics["fraction_localized"] <= 1.0

    def test_all_anchor_trial_yields_nan_instead_of_crashing(self):
        # n_anchors == n_nodes is a degenerate draw: no non-anchors to
        # localize.  The trial must report nan metrics (excluded from
        # aggregates), not divide by zero and kill the campaign.
        rng = np.random.default_rng(8)
        metrics = multilateration_trial(rng, n_nodes=8, n_anchors=8, width_m=40.0, height_m=40.0)
        assert np.isnan(metrics["fraction_localized"])
        result = run_monte_carlo(
            multilateration_trial,
            2,
            master_seed=3,
            trial_kwargs=dict(n_nodes=8, n_anchors=8, width_m=40.0, height_m=40.0),
        )
        assert result.aggregate()["fraction_localized"]["n"] == 0.0

    @pytest.mark.slow
    def test_campaign_over_lss_trials(self):
        result = run_monte_carlo(
            lss_trial,
            4,
            master_seed=2005,
            trial_kwargs=dict(
                n_nodes=14,
                width_m=35.0,
                height_m=35.0,
                min_separation_m=5.0,
                restarts=3,
                max_epochs=400,
            ),
        )
        agg = result.aggregate()
        assert agg["mean_error_m"]["n"] == 4.0
        assert agg["mean_error_m"]["mean"] < 10.0
