"""Tests for internal validation helpers and the exception hierarchy."""

import numpy as np
import pytest

from repro._validation import (
    as_finite_array,
    as_positions,
    check_index_pairs,
    check_non_negative,
    check_positive,
    check_probability,
    ensure_rng,
)
from repro.errors import (
    CalibrationError,
    ConvergenceError,
    GraphDisconnectedError,
    InsufficientDataError,
    ReproError,
    ValidationError,
)


class TestAsPositions:
    def test_list_of_tuples(self):
        out = as_positions([(0, 0), (1, 2)])
        assert out.shape == (2, 2)
        assert out.dtype == float

    def test_single_point_flat(self):
        assert as_positions([1.0, 2.0]).shape == (1, 2)

    def test_empty_allowed(self):
        assert as_positions([], allow_empty=True).shape == (0, 2)

    def test_empty_rejected_by_default(self):
        with pytest.raises(ValidationError):
            as_positions([])

    def test_wrong_trailing_dim(self):
        with pytest.raises(ValidationError):
            as_positions(np.zeros((3, 3)))

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            as_positions([[np.nan, 0.0]])

    def test_name_in_message(self):
        with pytest.raises(ValidationError, match="anchor_positions"):
            as_positions(np.zeros((2, 5)), "anchor_positions")


class TestScalarChecks:
    def test_positive(self):
        assert check_positive(2.5, "x") == 2.5
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValidationError):
                check_positive(bad, "x")

    def test_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValidationError):
            check_non_negative(-0.1, "x")

    def test_probability(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        for bad in (-0.1, 1.1, float("nan")):
            with pytest.raises(ValidationError):
                check_probability(bad, "p")


class TestFiniteArray:
    def test_basic(self):
        out = as_finite_array([1, 2, 3])
        assert out.dtype == float

    def test_ndim_enforced(self):
        with pytest.raises(ValidationError):
            as_finite_array([[1.0]], ndim=1)

    def test_inf_rejected(self):
        with pytest.raises(ValidationError):
            as_finite_array([1.0, float("inf")])


class TestIndexPairs:
    def test_valid(self):
        out = check_index_pairs([(0, 1), (2, 3)], 4)
        assert out.dtype == np.int64

    def test_empty(self):
        assert check_index_pairs([], 4).shape == (0, 2)

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            check_index_pairs([(0, 4)], 4)

    def test_self_pair(self):
        with pytest.raises(ValidationError):
            check_index_pairs([(1, 1)], 4)
        assert check_index_pairs([(1, 1)], 4, allow_self=True).shape == (1, 2)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(7).random(3)
        b = ensure_rng(7).random(3)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_invalid_type(self):
        with pytest.raises(ValidationError):
            ensure_rng("seed")


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ValidationError,
            ConvergenceError,
            InsufficientDataError,
            GraphDisconnectedError,
            CalibrationError,
        ):
            assert issubclass(exc, ReproError)

    def test_validation_is_value_error(self):
        assert issubclass(ValidationError, ValueError)
        assert issubclass(InsufficientDataError, ValueError)

    def test_runtime_flavors(self):
        assert issubclass(ConvergenceError, RuntimeError)
        assert issubclass(GraphDisconnectedError, RuntimeError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise InsufficientDataError("not enough anchors")
