"""Tests for the pluggable store-backend subsystem.

The load-bearing guarantees: both shipped backends implement the same
protocol observably identically; payload bytes are **backend-invariant**
(the store encodes once, backends store verbatim, so a
filesystem → sqlite → filesystem migration reproduces byte-identical
entry files); the SQLite backend's indexed metadata answers
``list_shards``/``len`` without touching payload bytes; and concurrent
multi-process access never corrupts an entry on either backend.
"""

import multiprocessing
import random

import pytest

from repro.errors import ValidationError
from repro.store import (
    FilesystemBackend,
    ResultStore,
    SQLiteBackend,
    encode_payload,
    migrate,
    open_backend,
    shard_to_payload,
)
from repro.engine.sharding import ShardSpec
from repro.engine.campaign import TrialRecord
from repro.engine.sharding import ShardCampaignResult

BACKENDS = ("filesystem", "sqlite")


def make_store(tmp_path, backend, name="store", code_version="test-1"):
    root = tmp_path / (name if backend == "filesystem" else f"{name}.sqlite")
    return ResultStore(root, code_version=code_version)


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    return make_store(tmp_path, request.param)


def _shard_payload(index, n_shards=3, trials=6, context=True):
    start = index * (trials // n_shards)
    result = ShardCampaignResult(
        master_seed=3,
        records=tuple(
            TrialRecord(index=i, metrics={"err": 0.5 * i, "frac": 1.0})
            for i in range(start, start + trials // n_shards)
        ),
        campaign_trials=trials,
        shard=ShardSpec(index=index, n_shards=n_shards),
    )
    ctx = (
        {"scenario_id": "demo", "spec_hash": "ab" * 32, "code_version": "test-1"}
        if context
        else None
    )
    return shard_to_payload(result, context=ctx)


class TestBackendDetection:
    def test_directory_opens_filesystem(self, tmp_path):
        assert isinstance(open_backend(tmp_path / "store"), FilesystemBackend)

    @pytest.mark.parametrize("suffix", [".sqlite", ".sqlite3", ".db"])
    def test_sqlite_suffix_opens_sqlite(self, tmp_path, suffix):
        assert isinstance(open_backend(tmp_path / f"store{suffix}"), SQLiteBackend)

    def test_existing_regular_file_opens_sqlite(self, tmp_path):
        path = tmp_path / "store"  # no suffix, but it is a file
        ResultStore(tmp_path / "seed.sqlite").put(
            ResultStore(tmp_path / "seed.sqlite").key_for("x"), {"v": 1}
        )
        (tmp_path / "seed.sqlite").rename(path)
        assert isinstance(open_backend(path), SQLiteBackend)

    def test_result_store_exposes_backend_kind(self, tmp_path):
        assert ResultStore(tmp_path / "a").backend.kind == "filesystem"
        assert ResultStore(tmp_path / "a.sqlite").backend.kind == "sqlite"

    def test_non_sqlite_file_rejected_with_clean_error(self, tmp_path):
        """Pointing a store path at some other existing file must raise
        ValidationError up front, not sqlite3.DatabaseError mid-query."""
        bogus = tmp_path / "entry.json.gz"
        bogus.write_bytes(b"\x1f\x8b not a database")
        with pytest.raises(ValidationError, match="not a SQLite store"):
            open_backend(bogus)
        from repro.__main__ import main

        assert main(["store", "stats", "--store", str(bogus)]) == 2

    def test_damaged_sqlite_store_is_a_clean_cli_error(self, tmp_path):
        """A truncated copy can keep the magic header but fail at query
        time; the CLI must exit 2 with a diagnostic, not a traceback."""
        from repro.__main__ import main

        damaged = tmp_path / "damaged.sqlite"
        damaged.write_bytes(b"SQLite format 3\x00" + b"\x00" * 100)
        assert main(["store", "stats", "--store", str(damaged)]) == 2

    def test_directory_with_sqlite_suffix_is_a_clean_error(self, tmp_path):
        from repro.__main__ import main

        trap = tmp_path / "store.db"
        trap.mkdir()
        assert main(["store", "stats", "--store", str(trap)]) == 2

    def test_empty_existing_file_is_a_fresh_sqlite_store(self, tmp_path):
        path = tmp_path / "empty.db"
        path.touch()
        store = ResultStore(path, code_version="test-1")
        key = store.key_for("x")
        store.put(key, {"v": 1})
        assert store.get(key) == {"v": 1}


class TestProtocolParity:
    """Every observable store behavior must be identical across backends."""

    def test_roundtrip_and_stats(self, store):
        key = store.key_for({"workload": "x"})
        assert store.get(key) is None
        store.put(key, {"value": [1.5, 2.0]})
        assert store.get(key) == {"value": [1.5, 2.0]}
        assert store.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "puts": 1,
            "invalidations": 0,
        }

    def test_contains_invalidate_len_clear(self, store):
        keys = [store.key_for(i) for i in range(3)]
        for key in keys:
            store.put(key, {"i": 1})
        assert all(store.contains(k) for k in keys)
        assert len(store) == 3
        assert store.invalidate(keys[0]) is True
        assert store.invalidate(keys[0]) is False
        assert not store.contains(keys[0])
        assert sorted(store.iter_keys()) == sorted(keys[1:])
        assert store.clear() == 2
        assert len(store) == 0

    def test_bad_key_rejected(self, store):
        with pytest.raises(ValidationError):
            store.get("abc")
        with pytest.raises(ValidationError):
            store.put("abc", {})
        with pytest.raises(ValidationError):
            store.backend.read_bytes("../../etc/passwd")

    def test_entry_info_reports_stored_size(self, store):
        key = store.key_for("info")
        store.put(key, {"v": list(range(50))})
        info = store.entry_info(key)
        assert info.key == key
        assert info.size == len(store.get_bytes(key))
        assert store.total_bytes() == info.size
        assert store.entry_info(store.key_for("absent")) is None

    def test_corrupt_entry_is_a_self_healing_miss(self, store):
        key = store.key_for("corrupt")
        store.put(key, {"ok": True})
        store.backend.write_bytes(key, b"\x1f\x8b garbage")
        assert store.get(key) is None
        assert not store.contains(key)
        store.put(key, {"ok": True})
        assert store.get(key) == {"ok": True}

    def test_list_shards_identical_across_backends(self, tmp_path):
        fs = make_store(tmp_path, "filesystem")
        sq = make_store(tmp_path, "sqlite")
        for target in (fs, sq):
            for index in range(3):
                payload = _shard_payload(index)
                target.put(target.key_for(("shard", index)), payload)
            # A non-shard entry must never appear in the listing.
            target.put(
                target.key_for("plain"),
                {"type": "campaign", "master_seed": 0, "records": []},
            )
        assert fs.list_shards() == sq.list_shards()
        assert len(fs.list_shards()) == 3
        assert all(m["campaign_trials"] == 6 for m in fs.list_shards())

    def test_sqlite_shard_index_updates_on_invalidate(self, tmp_path):
        sq = make_store(tmp_path, "sqlite")
        key = sq.key_for("shard")
        sq.put(key, _shard_payload(0))
        assert len(sq.list_shards()) == 1
        sq.invalidate(key)
        assert sq.list_shards() == []

    def test_stray_files_in_shard_dirs_are_ignored(self, tmp_path):
        """A hand-dropped non-entry file must not surface as a malformed
        key that aborts clear()/sync/GC with a ValidationError."""
        from repro.store import collect, push

        fs = make_store(tmp_path, "filesystem")
        key = fs.key_for("real")
        fs.put(key, {"v": 1})
        stray = fs.root / key[:2] / "notes.json.gz"
        stray.write_bytes(b"not an entry")
        assert list(fs.iter_keys()) == [key]
        assert len(fs) == 1
        collect(fs, max_bytes=0)  # must not raise
        dst = make_store(tmp_path, "sqlite", name="stray-dst")
        push(fs, dst)  # must not raise (store already emptied by gc)
        assert fs.clear() == 0
        assert stray.exists(), "clear only removes entries it owns"

    def test_republish_replaces_shard_meta(self, store):
        key = store.key_for("entry")
        store.put(key, _shard_payload(1))
        store.put(key, {"type": "campaign", "master_seed": 0, "records": []})
        assert store.list_shards() == []


class TestByteInvariance:
    """The determinism guarantee the sync/migration services rest on."""

    def test_same_payload_same_bytes_everywhere(self, tmp_path):
        payload = {
            "type": "campaign",
            "master_seed": 7,
            "records": [
                {"index": 0, "metrics": {"err": 0.1 + 0.2, "bad": float("nan")}}
            ],
        }
        fs = make_store(tmp_path, "filesystem")
        sq = make_store(tmp_path, "sqlite")
        key = fs.key_for("x")
        fs.put(key, payload)
        sq.put(key, payload)
        assert (
            fs.get_bytes(key)
            == sq.get_bytes(key)
            == encode_payload(payload)
            == fs.path_for(key).read_bytes()
        )

    def test_migration_round_trip_is_byte_identical(self, tmp_path):
        """Satellite: filesystem → sqlite → filesystem reproduces
        byte-identical entry files and identical ``list_shards()``."""
        origin = make_store(tmp_path, "filesystem", name="origin")
        for index in range(3):
            origin.put(origin.key_for(("shard", index)), _shard_payload(index))
        origin.put(
            origin.key_for("campaign"),
            {"type": "campaign", "master_seed": 1, "records": []},
        )
        original = {key: origin.get_bytes(key) for key in origin.iter_keys()}

        middle = make_store(tmp_path, "sqlite", name="middle")
        migrate(origin, middle)
        final = make_store(tmp_path, "filesystem", name="final")
        migrate(middle, final)

        assert sorted(final.iter_keys()) == sorted(original)
        for key, data in original.items():
            assert final.get_bytes(key) == data
            assert final.path_for(key).read_bytes() == data
        assert final.list_shards() == origin.list_shards()

    def test_path_for_rejected_on_sqlite(self, tmp_path):
        sq = make_store(tmp_path, "sqlite")
        with pytest.raises(ValidationError):
            sq.path_for(sq.key_for("x"))
        with pytest.raises(ValidationError):
            list(sq.iter_entries())


def _payload_table():
    """Shared keys and their (fixed, NaN-free) payloads for the hammer."""
    table = {}
    for i in range(6):
        payload = {
            "type": "campaign",
            "master_seed": i,
            "records": [
                {"index": j, "metrics": {"err": 0.25 * j + i}} for j in range(40)
            ],
        }
        table[f"payload-{i}"] = payload
    return table


def _hammer_worker(args):
    """Race put/get/invalidate on shared keys; any torn read fails."""
    root, seed, rounds = args
    store = ResultStore(root, code_version="hammer")
    table = {store.key_for(name): payload for name, payload in _payload_table().items()}
    rng = random.Random(seed)
    keys = sorted(table)
    for _ in range(rounds):
        key = rng.choice(keys)
        dice = rng.random()
        if dice < 0.45:
            store.put(key, table[key])
        elif dice < 0.9:
            got = store.get(key)
            if got is not None and got != table[key]:
                return f"corrupt read for {key[:12]}"
        else:
            store.invalidate(key)
    return None


@pytest.mark.slow
@pytest.mark.parametrize("backend", BACKENDS)
def test_concurrent_process_access_never_corrupts(tmp_path, backend):
    """Satellite: hammer put/get/invalidate on the same keys from a
    process pool against both backends — no corrupt reads, and every
    surviving entry holds exactly the canonical payload bytes."""
    store = make_store(tmp_path, backend, name="hammer", code_version="hammer")
    table = {store.key_for(name): payload for name, payload in _payload_table().items()}
    for key, payload in table.items():
        store.put(key, payload)

    jobs = [(store.root, seed, 80) for seed in range(4)]
    with multiprocessing.Pool(processes=4) as pool:
        failures = [f for f in pool.map(_hammer_worker, jobs) if f]
    assert not failures

    for key, payload in table.items():
        data = store.get_bytes(key)
        if data is not None:  # survived the invalidation crossfire
            assert data == encode_payload(payload)
    if backend == "filesystem":
        assert not list(store.root.rglob("*.tmp"))
