"""Tests for campaign orchestration (repro.ranging.campaign)."""

import numpy as np
import pytest

from repro.acoustics import get_environment
from repro.acoustics.hardware import HardwarePopulation
from repro.network.radio import RadioModel
from repro.ranging.campaign import CampaignConfig, RangingCampaign, run_campaign
from repro.ranging.service import RangingService


@pytest.fixture(scope="module")
def service():
    return RangingService(environment=get_environment("grass")).calibrate(rng=0)


@pytest.fixture(scope="module")
def small_grid():
    xs, ys = np.meshgrid([0.0, 9.0, 18.0], [0.0, 9.0])
    return np.stack([xs.ravel(), ys.ravel()], axis=1)


class TestCampaignConfig:
    def test_defaults(self):
        config = CampaignConfig()
        assert config.rounds == 3
        assert config.attempt_range_m is None

    def test_invalid(self):
        with pytest.raises(ValueError):
            CampaignConfig(rounds=0)
        with pytest.raises(Exception):
            CampaignConfig(attempt_range_m=-5.0)


class TestRangingCampaign:
    def test_produces_measurements_with_truth(self, service, small_grid):
        measurements = run_campaign(small_grid, service, rounds=1, rng=1)
        assert len(measurements) > 0
        for m in measurements:
            assert m.true_distance is not None
            assert m.true_distance > 0

    def test_round_indices_recorded(self, service, small_grid):
        measurements = run_campaign(small_grid, service, rounds=3, rng=1)
        rounds = {m.round_index for m in measurements}
        assert rounds <= {0, 1, 2}
        assert len(rounds) >= 2

    def test_more_rounds_more_measurements(self, service, small_grid):
        one = run_campaign(small_grid, service, rounds=1, rng=1)
        three = run_campaign(small_grid, service, rounds=3, rng=1)
        assert len(three) > len(one)

    def test_close_pairs_nearly_always_measured(self, service, small_grid):
        measurements = run_campaign(small_grid, service, rounds=3, rng=2)
        # Adjacent nodes 9 m apart are well inside reliable range.
        assert measurements.has_bidirectional(0, 1)

    def test_out_of_range_pairs_skipped(self, service):
        positions = np.array([[0.0, 0.0], [500.0, 0.0]])
        campaign = RangingCampaign(positions, service, rng=0)
        measurements = campaign.run()
        assert len(measurements) == 0

    def test_persistent_links(self, service, small_grid):
        campaign = RangingCampaign(small_grid, service, rng=3)
        link_a = campaign.link_for(0, 1)
        link_b = campaign.link_for(1, 0)
        assert link_a is link_b  # undirected persistence

    def test_hardware_assigned_per_node(self, service, small_grid):
        campaign = RangingCampaign(small_grid, service, rng=3)
        assert set(campaign.hardware) == set(range(len(small_grid)))

    def test_radio_loss_reduces_measurements(self, service, small_grid):
        lossy = CampaignConfig(radio=RadioModel(delivery_probability=0.3))
        reliable = CampaignConfig(radio=RadioModel(delivery_probability=1.0))
        n_lossy = len(
            RangingCampaign(small_grid, service, config=lossy, rng=4).run()
        )
        n_reliable = len(
            RangingCampaign(small_grid, service, config=reliable, rng=4).run()
        )
        assert n_lossy < n_reliable

    def test_attempt_range_override(self, service, small_grid):
        tight = CampaignConfig(attempt_range_m=5.0)
        campaign = RangingCampaign(small_grid, service, config=tight, rng=5)
        assert len(campaign.run()) == 0  # closest pair is 9 m

    def test_faulty_population_produces_garbage(self, service, small_grid):
        all_faulty = HardwarePopulation(faulty_probability=1.0)
        measurements = run_campaign(
            small_grid, service, rounds=2, rng=6, hardware_population=all_faulty
        )
        errors = np.abs(measurements.signed_errors())
        assert errors.size == 0 or errors.max() > 1.0

    def test_deterministic(self, service, small_grid):
        a = run_campaign(small_grid, service, rounds=2, rng=7)
        b = run_campaign(small_grid, service, rounds=2, rng=7)
        assert len(a) == len(b)
        da = sorted(m.distance for m in a)
        db = sorted(m.distance for m in b)
        assert np.allclose(da, db)
