"""Tests for :mod:`repro.perf`: the bench-record schema, the bench
harness (store isolation + guarantee #10 byte identity), the perf
history store, the noise-aware regression checker, and the ``repro
bench`` CLI surface."""

import json
import os

import pytest

from repro.__main__ import main
from repro.errors import ValidationError
from repro.perf import (
    BENCH_SCHEMA_VERSION,
    Workload,
    append_record,
    bench_filename,
    compare_records,
    get_suite,
    history_filename,
    list_records,
    make_bench_record,
    make_workload_result,
    read_bench_record,
    run_suite,
    run_workload,
    write_bench_record,
)
from repro.perf.history import render_history
from repro.perf.suites import all_suites, register_suite
from repro.scenarios import get_scenario, run_scenario
from repro.store import ResultStore


def _result(workload_id="w", timings=(0.10, 0.11, 0.12), counters=None):
    return make_workload_result(
        workload_id=workload_id,
        kind="scenario",
        timings_s=list(timings),
        counters=counters or {},
    )


def _record(label="smoke-test", results=None, now=1000.0):
    return make_bench_record(label, results or [_result()], now=now)


# -- record schema -------------------------------------------------------


class TestBenchRecordSchema:
    def test_round_trip(self, tmp_path):
        record = _record()
        path = tmp_path / bench_filename(record["label"])
        write_bench_record(path, record)
        loaded = read_bench_record(path)
        assert loaded == record
        assert loaded["schema"] == BENCH_SCHEMA_VERSION
        assert loaded["manifest"]["created_unix"] == 1000.0
        for key in ("host", "python", "repro_version", "code_version"):
            assert key in loaded["manifest"]

    def test_summary_stats_derived_from_raw_timings(self):
        entry = _result(timings=[0.3, 0.1, 0.2])
        assert entry["repeats"] == 3
        assert entry["median_s"] == pytest.approx(0.2)
        assert entry["min_s"] == pytest.approx(0.1)

    def test_unsafe_label_rejected(self):
        with pytest.raises(ValidationError, match="label"):
            make_bench_record("../escape", [_result()])

    def test_bumped_schema_version_cleanly_rejected(self, tmp_path):
        record = _record()
        record["schema"] = BENCH_SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(record))
        with pytest.raises(ValidationError, match="this build reads version"):
            read_bench_record(path)

    def test_extra_keys_tolerated(self, tmp_path):
        # Forward-compatible minor additions must not break old readers.
        record = _record()
        record["future_field"] = {"anything": True}
        record["results"][0]["future_metric_note"] = "ok"
        path = tmp_path / "extra.json"
        path.write_text(json.dumps(record))
        assert read_bench_record(path)["future_field"] == {"anything": True}

    def test_duplicate_result_ids_rejected(self):
        with pytest.raises(ValidationError, match="duplicate result id"):
            make_bench_record("dup", [_result("same"), _result("same")])

    def test_nonpositive_timings_rejected(self):
        with pytest.raises(ValidationError, match="positive"):
            _result(timings=[0.1, 0.0])

    def test_repeats_must_match_timings(self, tmp_path):
        record = _record()
        record["results"][0]["repeats"] = 7
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(record))
        with pytest.raises(ValidationError, match="repeats"):
            read_bench_record(path)

    def test_malformed_json_named(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="malformed JSON"):
            read_bench_record(path)


# -- suites --------------------------------------------------------------


class TestSuites:
    def test_shipped_suites_registered(self):
        suites = all_suites()
        assert "smoke" in suites and "full" in suites
        smoke_ids = [w.workload_id for w in get_suite("smoke")]
        assert len(smoke_ids) == len(set(smoke_ids))
        # One figure driver rides along so experiment timing is covered.
        assert any(w.kind == "experiment" for w in get_suite("smoke"))

    def test_unknown_suite_names_alternatives(self):
        with pytest.raises(ValidationError, match="smoke"):
            get_suite("nope")

    def test_duplicate_suite_name_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_suite("smoke", get_suite("smoke"))

    def test_scenario_workload_needs_trials(self):
        with pytest.raises(ValidationError, match="n_trials"):
            Workload(workload_id="w", kind="scenario", target_id="x")

    def test_unknown_workload_kind_rejected(self):
        with pytest.raises(ValidationError, match="kind"):
            Workload(workload_id="w", kind="mystery", target_id="x")


# -- harness -------------------------------------------------------------

_TINY = Workload(
    workload_id="uniform-multilateration-2",
    kind="scenario",
    target_id="uniform-multilateration",
    seed=7,
    n_trials=2,
)


class TestRunWorkload:
    def test_result_shape_and_counters(self):
        entry = run_workload(_TINY, repeats=2)
        assert entry["id"] == _TINY.workload_id
        assert entry["repeats"] == 2
        assert all(t > 0 for t in entry["timings_s"])
        assert entry["counters"]["engine.campaign.trials"] == 2
        # Every repeat is store-isolated and cold: one put per repeat,
        # never a hit.
        assert entry["counters"]["store.filesystem.put"] == 1
        assert "store.filesystem.hit" not in entry["counters"]
        assert entry["metrics"]["trials_per_s"] > 0

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValidationError, match="repeats"):
            run_workload(_TINY, repeats=0)

    def test_store_env_restored(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", "/tmp/original-store")
        run_workload(_TINY, repeats=1)
        assert os.environ["REPRO_STORE_DIR"] == "/tmp/original-store"


class TestRunSuite:
    def test_smoke_suite_record(self):
        record = run_suite("smoke", repeats=1, now=1234.0)
        assert record["label"] == "smoke"
        manifest = record["manifest"]
        assert manifest["suite"] == "smoke"
        assert manifest["repeats"] == 1
        assert manifest["created_unix"] == 1234.0
        scenario_targets = {
            w.target_id for w in get_suite("smoke") if w.kind == "scenario"
        }
        assert set(manifest["spec_hashes"]) == scenario_targets
        for spec_hash in manifest["spec_hashes"].values():
            assert len(spec_hash) == 64
        assert [r["id"] for r in record["results"]] == [
            w.workload_id for w in get_suite("smoke")
        ]


class TestBenchByteIdentity:
    """Determinism guarantee #10: benching observes, never steers."""

    def test_benched_store_payloads_byte_identical(self, tmp_path):
        spec = get_scenario(_TINY.target_id)
        plain_store = ResultStore(tmp_path / "plain")
        run_scenario(
            spec, master_seed=_TINY.seed, n_trials=_TINY.n_trials, store=plain_store
        )

        benched_store = ResultStore(tmp_path / "benched")
        run_workload(_TINY, repeats=2, store=benched_store)

        keys_plain = sorted(plain_store.iter_keys())
        keys_benched = sorted(benched_store.iter_keys())
        assert keys_plain == keys_benched and len(keys_plain) == 1
        for key in keys_plain:
            assert plain_store.get_bytes(key) == benched_store.get_bytes(key)


# -- history -------------------------------------------------------------


class TestHistory:
    def test_append_is_idempotent(self, tmp_path):
        record = _record(now=100.0)
        path1, appended1 = append_record(tmp_path / "hist", record)
        path2, appended2 = append_record(tmp_path / "hist", record)
        assert appended1 and not appended2
        assert path1 == path2
        assert path1.name == history_filename(record)
        assert path1.name.startswith("BENCH_smoke-test_100_")

    def test_list_orders_by_created_stamp(self, tmp_path):
        newer = _record(now=200.0)
        older = _record(now=100.0, results=[_result(timings=[0.2, 0.2, 0.2])])
        append_record(tmp_path / "hist", newer)
        append_record(tmp_path / "hist", older)
        entries = list_records(tmp_path / "hist")
        stamps = [rec["manifest"]["created_unix"] for _, rec in entries]
        assert stamps == [100.0, 200.0]
        rendered = render_history(entries)
        assert "history: 2 records" in rendered
        assert "w" in rendered

    def test_missing_directory_fails(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            list_records(tmp_path / "nope")

    def test_corrupt_history_file_fails_loudly(self, tmp_path):
        append_record(tmp_path / "hist", _record(now=100.0))
        (tmp_path / "hist" / "BENCH_evil_1_0000000000.json").write_text("{}")
        with pytest.raises(ValidationError):
            list_records(tmp_path / "hist")


# -- regression checker --------------------------------------------------


def _timed_record(label, medians, noise=0.0, now=100.0):
    """One record per mapping of workload id -> median seconds."""
    results = [
        _result(
            workload_id,
            timings=[median, median * (1 + noise), median * (1 - noise / 2)],
            counters={"engine.campaign.trials": 8},
        )
        for workload_id, median in medians.items()
    ]
    return make_bench_record(label, results, now=now)


class TestCompareRecords:
    def test_identical_records_pass(self):
        record = _timed_record("base", {"a": 0.1, "b": 0.2})
        comparison = compare_records(record, record)
        assert comparison.exit_code == 0
        assert comparison.compared == 2
        assert comparison.regressions == []

    def test_2x_slowdown_flagged(self):
        baseline = _timed_record("base", {"a": 0.1, "b": 0.2})
        current = _timed_record("curr", {"a": 0.1, "b": 0.4})
        comparison = compare_records(baseline, current)
        assert comparison.exit_code == 1
        (finding,) = comparison.regressions
        assert finding.workload_id == "b"
        assert "+100%" in finding.detail
        assert "FAIL" in comparison.render()

    def test_speedup_is_informational(self):
        baseline = _timed_record("base", {"a": 0.4})
        current = _timed_record("curr", {"a": 0.1})
        comparison = compare_records(baseline, current)
        assert comparison.exit_code == 0
        (finding,) = comparison.findings
        assert finding.kind == "improvement" and not finding.gating

    def test_noise_widens_tolerance(self):
        # Spread (max-min)/median ≈ 1.5 on both sides -> allowed slowdown
        # becomes noise_mult * spread >> the 2x ratio, so no gate.
        baseline = _timed_record("base", {"a": 0.1}, noise=1.0)
        current = _timed_record("curr", {"a": 0.2}, noise=1.0)
        assert compare_records(baseline, current).exit_code == 0
        # The same 2x on stable timings gates.
        assert (
            compare_records(
                _timed_record("base", {"a": 0.1}),
                _timed_record("curr", {"a": 0.2}),
            ).exit_code
            == 1
        )

    def test_disjoint_workloads_incomparable(self):
        baseline = _timed_record("base", {"a": 0.1})
        current = _timed_record("curr", {"b": 0.1})
        comparison = compare_records(baseline, current)
        assert comparison.compared == 0
        assert comparison.exit_code == 2
        kinds = {f.kind for f in comparison.findings}
        assert kinds == {"coverage"}
        assert "nothing to compare" in comparison.render()

    def test_counter_drift_reported_not_gating(self):
        baseline = _timed_record("base", {"a": 0.1})
        current = _timed_record("curr", {"a": 0.1})
        current["results"][0]["counters"]["engine.campaign.trials"] = 16
        comparison = compare_records(baseline, current)
        assert comparison.exit_code == 0
        (finding,) = comparison.findings
        assert finding.kind == "counter-drift"
        assert "8 -> 16" in finding.detail


# -- CLI -----------------------------------------------------------------


class TestBenchCli:
    def test_bench_run_smoke_writes_valid_record(self, tmp_path, capsys):
        out = tmp_path / "BENCH_smoke.json"
        history = tmp_path / "hist"
        code = main(
            [
                "bench",
                "run",
                "--suite",
                "smoke",
                "--repeats",
                "1",
                "--out",
                str(out),
                "--history",
                str(history),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "bench suite 'smoke'" in printed
        assert f"-> {out}" in printed
        record = read_bench_record(out)  # validates schema
        assert record["label"] == "smoke"
        (history_file,) = list(history.glob("BENCH_smoke_*.json"))
        assert read_bench_record(history_file) == record

    def test_bench_run_unknown_suite_exits_2(self, capsys):
        assert main(["bench", "run", "--suite", "nope"]) == 2
        assert "unknown bench suite" in capsys.readouterr().err

    def test_bench_history_add_idempotent(self, tmp_path, capsys):
        record_path = tmp_path / "r.json"
        write_bench_record(record_path, _record(now=100.0))
        hist = str(tmp_path / "hist")
        assert main(["bench", "history", "--dir", hist, "--add", str(record_path)]) == 0
        assert "appended" in capsys.readouterr().out
        assert main(["bench", "history", "--dir", hist, "--add", str(record_path)]) == 0
        out = capsys.readouterr().out
        assert "already present" in out
        assert "history: 1 records" in out

    def test_bench_check_pass_and_fail(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        slow = tmp_path / "slow.json"
        write_bench_record(base, _timed_record("base", {"a": 0.1, "b": 0.2}))
        write_bench_record(slow, _timed_record("curr", {"a": 0.1, "b": 0.4}))

        assert main(["bench", "check", str(base), "--baseline", str(base)]) == 0
        assert "no regressions" in capsys.readouterr().out

        assert main(["bench", "check", str(slow), "--baseline", str(base)]) == 1
        assert "[FAIL] b:" in capsys.readouterr().out

    def test_bench_check_incomparable_exits_2(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        other = tmp_path / "other.json"
        write_bench_record(base, _timed_record("base", {"a": 0.1}))
        write_bench_record(other, _timed_record("curr", {"b": 0.1}))
        assert main(["bench", "check", str(other), "--baseline", str(base)]) == 2
        assert "share no workload ids" in capsys.readouterr().out

    def test_bench_check_missing_baseline_exits_2(self, tmp_path, capsys):
        current = tmp_path / "c.json"
        write_bench_record(current, _record())
        code = main(
            ["bench", "check", str(current), "--baseline", str(tmp_path / "no.json")]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err
