"""Tests for TDoA arithmetic (repro.ranging.tdoa)."""

import pytest

from repro.errors import ValidationError
from repro.ranging.tdoa import TdoaConfig, tdoa_distance


class TestTdoaConfig:
    def test_meters_per_sample(self):
        config = TdoaConfig(sampling_rate_hz=16_000.0, speed_of_sound=340.0)
        assert config.meters_per_sample == pytest.approx(0.02125)

    def test_index_distance_roundtrip(self):
        config = TdoaConfig()
        for d in (0.0, 1.0, 9.14, 21.99):
            idx = config.index_from_distance(d)
            back = config.distance_from_index(idx)
            assert back == pytest.approx(d, abs=config.meters_per_sample)

    def test_calibration_offset_subtracted(self):
        config = TdoaConfig(calibration_offset_m=0.5)
        idx = TdoaConfig().index_from_distance(10.0)
        assert config.distance_from_index(idx) == pytest.approx(9.5, abs=0.03)

    def test_distance_clamped_at_zero(self):
        config = TdoaConfig(calibration_offset_m=5.0)
        assert config.distance_from_index(0) == 0.0

    def test_buffer_length_covers_max_range(self):
        config = TdoaConfig(max_range_m=22.0, buffer_margin_samples=192)
        assert config.buffer_length >= config.index_from_distance(22.0) + 192

    def test_with_calibration_copies(self):
        base = TdoaConfig()
        calibrated = base.with_calibration(0.15)
        assert calibrated.calibration_offset_m == 0.15
        assert base.calibration_offset_m == 0.0
        assert calibrated.max_range_m == base.max_range_m

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            TdoaConfig().distance_from_index(-1)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValidationError):
            TdoaConfig().index_from_distance(-2.0)

    def test_invalid_config_values(self):
        with pytest.raises(ValidationError):
            TdoaConfig(sampling_rate_hz=0.0)
        with pytest.raises(ValidationError):
            TdoaConfig(speed_of_sound=-1.0)
        with pytest.raises(ValidationError):
            TdoaConfig(max_range_m=0.0)


class TestTdoaDistanceFormula:
    def test_paper_formula(self):
        # Sound flight time for 17 m at 340 m/s is 50 ms.  With zero
        # hardware delay and delta_const, t_detect - t_recv = 0.05 s.
        d = tdoa_distance(t_detect=1.05, t_recv=1.0, delta_xmit=0.0, delta_const=0.0)
        assert d == pytest.approx(17.0)

    def test_delta_const_accounted(self):
        d = tdoa_distance(t_detect=1.07, t_recv=1.0, delta_xmit=0.0, delta_const=0.02)
        assert d == pytest.approx(17.0)

    def test_delta_xmit_accounted(self):
        # The radio message arrived late by delta_xmit; adding it back
        # recovers the true send time.
        d = tdoa_distance(t_detect=1.05, t_recv=1.002, delta_xmit=0.002, delta_const=0.0)
        assert d == pytest.approx(17.0)

    def test_negative_clamped(self):
        assert tdoa_distance(1.0, 1.1, 0.0, 0.0) == 0.0

    def test_bad_speed(self):
        with pytest.raises(ValidationError):
            tdoa_distance(1.0, 1.0, 0.0, 0.0, speed_of_sound=0.0)
