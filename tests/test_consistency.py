"""Tests for cross-node consistency checks (repro.ranging.consistency)."""

import numpy as np
import pytest

from repro.core.measurements import MeasurementSet
from repro.errors import ValidationError
from repro.ranging.consistency import (
    bidirectional_filter,
    consistency_pipeline,
    triangle_filter,
)


def triangle_set(d01=10.0, d02=10.0, d12=10.0):
    ms = MeasurementSet()
    ms.add_distance(0, 1, d01)
    ms.add_distance(0, 2, d02)
    ms.add_distance(1, 2, d12)
    return ms


class TestBidirectionalFilter:
    def test_consistent_pair_kept(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 10.0)
        ms.add_distance(1, 0, 10.4)
        out = bidirectional_filter(ms, tolerance_m=1.0)
        assert (0, 1) in out and (1, 0) in out

    def test_inconsistent_pair_dropped(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 10.0)
        ms.add_distance(1, 0, 13.0)
        out = bidirectional_filter(ms, tolerance_m=1.0)
        assert len(out) == 0

    def test_unpaired_kept_by_default(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 10.0)
        out = bidirectional_filter(ms)
        assert len(out) == 1

    def test_unpaired_dropped_when_requested(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 10.0)
        out = bidirectional_filter(ms, keep_unpaired=False)
        assert len(out) == 0

    def test_multiround_uses_median(self):
        ms = MeasurementSet()
        for d in (10.0, 10.1, 30.0):  # median 10.1
            ms.add_distance(0, 1, d)
        ms.add_distance(1, 0, 10.3)
        out = bidirectional_filter(ms, tolerance_m=1.0)
        assert len(out) == 2  # both direction medians kept

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValidationError):
            bidirectional_filter(MeasurementSet(), tolerance_m=-1.0)


class TestTriangleFilter:
    def test_valid_triangle_untouched(self):
        ms = triangle_set()
        out = triangle_filter(ms)
        assert len(out) == 3

    def test_underestimated_edge_dropped_greedy(self):
        # d12 underestimated: 10 + 2 < ... no wait, make 0-1 the culprit:
        # true triangle 10/10/10, but d01 reported as 0.5.
        # Violation: 0.5 + 10 >= 10 holds... need the SHORT edge to break
        # a triangle: a+b < c means shortest two sum below longest.
        # 0.5 (bad) + 10 = 10.5 >= 10 -> no violation in a single
        # triangle; underestimates are caught via larger structures.
        # Use an overestimated edge instead: d12 = 25.
        ms = triangle_set(d12=25.0)
        out = triangle_filter(ms, slack_m=1.0)
        assert (1, 2) not in out and (2, 1) not in out
        assert (0, 1) in out and (0, 2) in out

    def test_underestimate_caught_with_two_triangles(self):
        # Nodes 0-3; edge (0,1) underestimated badly.  It participates
        # in two violating triangles, while each innocent edge is in
        # only one -> greedy removes (0,1).
        ms = MeasurementSet()
        ms.add_distance(0, 1, 1.0)  # true ~10, garbage underestimate
        ms.add_distance(0, 2, 10.0)
        ms.add_distance(1, 2, 13.0)
        ms.add_distance(0, 3, 10.0)
        ms.add_distance(1, 3, 13.0)
        ms.add_distance(2, 3, 9.0)
        out = triangle_filter(ms, slack_m=1.0, drop_policy="greedy")
        assert (0, 1) not in out
        assert (0, 2) in out and (2, 3) in out

    def test_suspect_policy_drops_longest(self):
        ms = triangle_set(d12=25.0)
        out = triangle_filter(ms, drop_policy="suspect")
        assert (1, 2) not in out

    def test_all_policy_drops_everything(self):
        ms = triangle_set(d12=25.0)
        out = triangle_filter(ms, drop_policy="all")
        assert len(out) == 0

    def test_slack_tolerates_noise(self):
        ms = triangle_set(d12=20.5)  # 10 + 10 + 1.0 >= 20.5
        out = triangle_filter(ms, slack_m=1.0)
        assert len(out) == 3

    def test_edges_without_triangles_untouched(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 5.0)
        ms.add_distance(2, 3, 500.0)
        out = triangle_filter(ms)
        assert len(out) == 2

    def test_invalid_policy(self):
        with pytest.raises(ValidationError):
            triangle_filter(MeasurementSet(), drop_policy="random")

    def test_invalid_slack(self):
        with pytest.raises(ValidationError):
            triangle_filter(MeasurementSet(), slack_m=-1.0)


class TestConsistencyPipeline:
    def test_combined(self):
        ms = MeasurementSet()
        # Good bidirectional pair.
        ms.add_distance(0, 1, 10.0)
        ms.add_distance(1, 0, 10.2)
        # Inconsistent bidirectional pair.
        ms.add_distance(2, 3, 8.0)
        ms.add_distance(3, 2, 12.0)
        out = consistency_pipeline(ms)
        assert (0, 1) in out
        assert (2, 3) not in out and (3, 2) not in out

    def test_triangle_applied_after_bidirectional(self):
        ms = triangle_set(d12=25.0)
        out = consistency_pipeline(ms)
        assert (1, 2) not in out

    def test_empty(self):
        assert len(consistency_pipeline(MeasurementSet())) == 0
