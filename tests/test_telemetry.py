"""Tests for the repro.telemetry subsystem.

The three design rules from ``repro/telemetry/__init__.py`` each get a
pinning test here:

1. off-by-default — the process-wide recorder is the null object and
   module helpers are no-ops until ``recording()`` installs a tracer;
2. telemetry never influences results — a traced scenario run publishes
   **byte-identical** store payloads to an untraced one (determinism
   guarantee #8 in ``docs/architecture.md``);
3. multiprocessing-deterministic — merging worker snapshots in
   trial-index order makes traces worker-count independent.
"""

import json
import math

import pytest

from repro import telemetry
from repro.engine import ConfidenceStop, run_adaptive, run_monte_carlo
from repro.engine.campaign import CampaignResult, TrialRecord
from repro.errors import ValidationError
from repro.scenarios import (
    AnchorSpec,
    DeploymentSpec,
    RangingSpec,
    ScenarioSpec,
    SolverSpec,
    run_scenario,
)
from repro.store import ResultStore
from repro.telemetry import (
    NULL_RECORDER,
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    read_trace,
    validate_trace,
)
from repro.telemetry.schema import validate_record


def _echo_trial(rng):
    """Minimal deterministic trial; must be module-level (picklable)."""
    return {"draw": float(rng.random())}


def _tight_trial(rng):
    """Low-variance metric: converges quickly under ConfidenceStop."""
    return {"x": float(rng.normal(5.0, 0.01))}


def _tiny_spec() -> ScenarioSpec:
    return ScenarioSpec(
        scenario_id="telemetry-tiny",
        deployment=DeploymentSpec(
            kind="uniform", n_nodes=12, width_m=40.0, height_m=40.0
        ),
        anchors=AnchorSpec(strategy="random", count=5),
        ranging=RangingSpec(model="gaussian", max_range_m=20.0, sigma_m=0.33),
        solver=SolverSpec(algorithm="multilateration"),
        n_trials=2,
    )


class TestNullDefault:
    def test_default_recorder_is_null(self):
        assert telemetry.current() is NULL_RECORDER
        assert not telemetry.enabled()

    def test_helpers_are_noops_when_disabled(self):
        # None of these may raise or leak state while tracing is off.
        telemetry.count("x", 3)
        telemetry.observe("y", 1.5)
        telemetry.gauge("z", 2.0)
        telemetry.event("e", detail="ignored")
        telemetry.set_manifest(run="ignored")
        telemetry.add_span("s", 0.1, 0.1)
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        assert telemetry.current() is NULL_RECORDER
        assert NULL_RECORDER.current_path() == ""

    def test_recording_installs_and_restores(self):
        with telemetry.recording() as rec:
            assert telemetry.current() is rec
            assert telemetry.enabled()
            assert rec.active
        assert telemetry.current() is NULL_RECORDER

    def test_recording_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with telemetry.recording():
                raise RuntimeError("boom")
        assert telemetry.current() is NULL_RECORDER

    def test_recording_nests(self):
        with telemetry.recording() as outer:
            with telemetry.recording() as inner:
                assert telemetry.current() is inner
            assert telemetry.current() is outer
        assert telemetry.current() is NULL_RECORDER


class TestTraceRecorder:
    def test_span_paths_nest(self):
        rec = TraceRecorder()
        with rec.span("a"):
            with rec.span("b", kind="leaf"):
                assert rec.current_path() == "a/b"
        paths = [s["path"] for s in rec.spans]
        assert paths == ["a/b", "a"]  # inner closes (and records) first
        assert rec.spans[0]["attrs"] == {"kind": "leaf"}
        assert all(s["wall_s"] >= 0 and s["cpu_s"] >= 0 for s in rec.spans)

    def test_add_span_under_override(self):
        rec = TraceRecorder()
        rec.add_span("chunk", 0.25, 0.20, under="campaign", index=1)
        (span,) = rec.spans
        assert span["path"] == "campaign/chunk"
        assert span["wall_s"] == 0.25
        assert span["attrs"] == {"index": 1}

    def test_counters_sum_gauges_latest_histograms_collect(self):
        rec = TraceRecorder()
        rec.count("c")
        rec.count("c", 4)
        rec.gauge("g", 1.0)
        rec.gauge("g", 7.0)
        rec.observe("h", 1.0)
        rec.observe("h", 3.0)
        assert rec.counters["c"] == 5
        assert rec.gauges["g"] == 7.0
        assert rec.histograms["h"] == [1.0, 3.0]

    def test_events_carry_current_path(self):
        rec = TraceRecorder()
        with rec.span("campaign"):
            rec.event("scheduler.boundary", chunk=1, satisfied=False)
        (event,) = rec.events
        assert event["path"] == "campaign"
        assert event["fields"] == {"chunk": 1, "satisfied": False}

    def test_instrumentation_calls_counted(self):
        rec = TraceRecorder()
        with rec.span("a"):
            rec.count("c")
            rec.observe("h", 1.0)
        rec.gauge("g", 1.0)
        rec.event("e")
        assert rec.instrumentation_calls == 5

    def test_merge_worker_reroots_and_sums(self):
        worker = TraceRecorder()
        with worker.span("solve", trial=3):
            worker.count("engine.batch.gd_solves", 2)
            worker.event("probe")
        data = worker.worker_data()
        assert data["busy_s"] == pytest.approx(worker.spans[0]["wall_s"])

        parent = TraceRecorder()
        parent.count("engine.batch.gd_solves", 1)
        with parent.span("campaign"):
            parent.merge_worker(data)
        assert parent.counters["engine.batch.gd_solves"] == 3
        merged_span = [s for s in parent.spans if s["name"] == "solve"]
        assert [s["path"] for s in merged_span] == ["campaign/solve"]
        (event,) = parent.events
        assert event["path"] == "campaign/solve"


class TestWorkerCountInvariance:
    def _traced_run(self, n_workers):
        with telemetry.recording() as rec:
            result = run_monte_carlo(
                _echo_trial, 6, master_seed=11, n_workers=n_workers
            )
        return result, rec

    @pytest.mark.slow
    def test_fixed_campaign_trace_is_worker_count_independent(self):
        res1, rec1 = self._traced_run(1)
        res2, rec2 = self._traced_run(2)
        assert [r.metrics for r in res1.records] == [
            r.metrics for r in res2.records
        ]
        assert rec1.counters == rec2.counters
        assert sorted(s["path"] for s in rec1.spans) == sorted(
            s["path"] for s in rec2.spans
        )

    @pytest.mark.slow
    def test_adaptive_campaign_trace_is_worker_count_independent(self):
        def run(n_workers):
            with telemetry.recording() as rec:
                result = run_adaptive(
                    _tight_trial,
                    12,
                    stopping=ConfidenceStop(
                        metric="x", tolerance=0.5, min_trials=4
                    ),
                    master_seed=5,
                    n_workers=n_workers,
                    chunk_size=4,
                )
            return result, rec

        res1, rec1 = run(1)
        res2, rec2 = run(2)
        assert [r.metrics for r in res1.records] == [
            r.metrics for r in res2.records
        ]
        assert rec1.counters == rec2.counters
        boundaries1 = [e for e in rec1.events if e["name"] == "scheduler.boundary"]
        boundaries2 = [e for e in rec2.events if e["name"] == "scheduler.boundary"]
        assert [b["fields"] for b in boundaries1] == [
            b["fields"] for b in boundaries2
        ]


class TestEngineInstrumentation:
    def test_fixed_campaign_spans_and_counters(self):
        with telemetry.recording() as rec:
            run_monte_carlo(_echo_trial, 3, master_seed=0)
        paths = [s["path"] for s in rec.spans]
        assert paths.count("campaign") == 1
        assert paths.count("campaign/solve") == 3
        assert rec.counters["engine.campaign.trials"] == 3
        assert rec.gauges["engine.campaign.n_workers"] == 1.0
        assert 0.0 < rec.gauges["engine.campaign.utilization"] <= 1.0
        assert len(rec.histograms["engine.campaign.trial_wall_s"]) == 3

    def test_adaptive_scheduler_events_and_savings(self):
        with telemetry.recording() as rec:
            result = run_adaptive(
                _tight_trial,
                40,
                stopping=ConfidenceStop(metric="x", tolerance=0.5, min_trials=4),
                master_seed=5,
                chunk_size=4,
            )
        assert result.converged
        boundaries = [e for e in rec.events if e["name"] == "scheduler.boundary"]
        assert boundaries, "expected at least one boundary event"
        assert boundaries[-1]["fields"]["satisfied"] is True
        (stop,) = [e for e in rec.events if e["name"] == "scheduler.stop"]
        assert stop["fields"]["converged"] is True
        assert rec.counters["scheduler.trials_saved"] == result.trials_saved
        assert rec.counters["scheduler.trials_committed"] == result.n_trials
        chunk_paths = [s["path"] for s in rec.spans if s["name"] == "chunk"]
        assert chunk_paths == ["campaign/chunk"] * len(boundaries)
        solve_paths = [s["path"] for s in rec.spans if s["name"] == "solve"]
        assert solve_paths == ["campaign/chunk/solve"] * result.n_trials

    def test_batch_kernel_counters_flow_through_trials(self):
        spec = _tiny_spec()
        with telemetry.recording() as rec:
            run_scenario(spec, master_seed=3, store=None)
        assert rec.counters["engine.campaign.trials"] == 2
        # The multilateration solver runs the batch GD kernel per trial.
        assert rec.counters["engine.batch.gd_solves"] >= 2
        assert rec.counters["engine.batch.gd_iterations"] > 0


class TestStoreInstrumentation:
    def test_hit_miss_put_counters(self, tmp_path):
        spec = _tiny_spec()
        store = ResultStore(tmp_path)
        with telemetry.recording() as cold:
            run_scenario(spec, master_seed=3, store=store)
        assert cold.counters["store.filesystem.miss"] == 1
        assert cold.counters["store.filesystem.put"] == 1
        assert "store.filesystem.hit" not in cold.counters
        assert cold.histograms["store.filesystem.get_ms"]
        assert cold.histograms["store.filesystem.put_ms"]

        with telemetry.recording() as warm:
            run_scenario(spec, master_seed=3, store=store)
        assert warm.counters["store.filesystem.hit"] == 1
        assert "store.filesystem.miss" not in warm.counters
        assert "store.filesystem.put" not in warm.counters


class TestTraceInvariance:
    """Determinism guarantee #8: tracing never changes stored bytes."""

    def test_traced_and_untraced_payloads_byte_identical(self, tmp_path):
        spec = _tiny_spec()

        untraced_store = ResultStore(tmp_path / "untraced")
        run_scenario(spec, master_seed=7, store=untraced_store)

        traced_store = ResultStore(tmp_path / "traced")
        with telemetry.recording():
            run_scenario(spec, master_seed=7, store=traced_store)

        keys_a = sorted(untraced_store.iter_keys())
        keys_b = sorted(traced_store.iter_keys())
        assert keys_a == keys_b and len(keys_a) == 1
        for key in keys_a:
            assert untraced_store.get_bytes(key) == traced_store.get_bytes(key)


class TestTraceSerialization:
    def _sample_recorder(self):
        rec = TraceRecorder()
        rec.set_manifest(scenario_id="telemetry-tiny", master_seed=7)
        with rec.span("campaign", mode="fixed"):
            rec.count("engine.campaign.trials", 2)
            rec.observe("engine.campaign.trial_wall_s", 0.5)
            rec.observe("engine.campaign.trial_wall_s", 1.5)
            rec.gauge("engine.campaign.n_workers", 1)
            rec.event("scheduler.stop", reason="budget")
        return rec

    def test_round_trip(self, tmp_path):
        rec = self._sample_recorder()
        path = tmp_path / "trace.jsonl"
        n = rec.write(path)
        manifest, records = read_trace(path)
        assert n == 1 + len(records)
        assert manifest["schema"] == TRACE_SCHEMA_VERSION
        assert manifest["scenario_id"] == "telemetry-tiny"
        assert manifest["master_seed"] == 7
        for key in ("created_unix", "host", "repro_version", "python"):
            assert key in manifest
        by_type = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record)
        assert [s["path"] for s in by_type["span"]] == ["campaign"]
        (counter,) = by_type["counter"]
        assert counter == {
            "type": "counter",
            "name": "engine.campaign.trials",
            "value": 2,
        }
        (hist,) = by_type["histogram"]
        assert hist["count"] == 2
        assert hist["mean"] == pytest.approx(1.0)
        (event,) = by_type["event"]
        assert event["fields"] == {"reason": "budget"}

    def test_infinite_half_width_round_trips(self, tmp_path):
        rec = TraceRecorder()
        with rec.span("campaign"):
            rec.event("scheduler.boundary", half_width=float("inf"))
        path = tmp_path / "inf.jsonl"
        rec.write(path)
        _, records = read_trace(path)
        (event,) = [r for r in records if r["type"] == "event"]
        assert math.isinf(event["fields"]["half_width"])

    def test_numpy_attrs_are_scrubbed(self, tmp_path):
        np = pytest.importorskip("numpy")
        rec = TraceRecorder()
        rec.add_span("s", np.float64(0.5), np.float64(0.25), n=np.int64(3))
        rec.count("c", np.int64(2))
        path = tmp_path / "np.jsonl"
        rec.write(path)
        _, records = read_trace(path)  # would raise on non-JSON types
        (span,) = [r for r in records if r["type"] == "span"]
        assert span["attrs"] == {"n": 3}


class TestSchemaValidation:
    def _write_lines(self, path, records):
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")

    def _valid_records(self):
        rec = TraceRecorder()
        rec.count("c", 1)
        return rec.records()

    def test_unsupported_schema_version_rejected(self, tmp_path):
        records = self._valid_records()
        records[0]["schema"] = TRACE_SCHEMA_VERSION + 1
        path = tmp_path / "future.jsonl"
        self._write_lines(path, records)
        with pytest.raises(ValidationError, match="schema version"):
            read_trace(path)

    def test_manifest_must_come_first(self):
        records = self._valid_records()
        with pytest.raises(ValidationError, match="manifest"):
            validate_trace(records[1:] + records[:1])

    def test_duplicate_manifest_rejected(self):
        records = self._valid_records()
        with pytest.raises(ValidationError, match="more than one manifest"):
            validate_trace(records + [records[0]])

    def test_empty_trace_rejected(self):
        with pytest.raises(ValidationError, match="empty"):
            validate_trace([])

    def test_unknown_record_type_rejected(self):
        with pytest.raises(ValidationError, match="unknown record type"):
            validate_record({"type": "flamegraph"}, line_no=3)

    def test_span_path_must_end_with_name(self):
        with pytest.raises(ValidationError, match="end with its name"):
            validate_record(
                {
                    "type": "span",
                    "name": "solve",
                    "path": "campaign/chunk",
                    "wall_s": 0.1,
                    "cpu_s": 0.1,
                    "seq": 0,
                    "attrs": {},
                }
            )

    def test_negative_wall_rejected(self):
        with pytest.raises(ValidationError, match="wall_s"):
            validate_record(
                {
                    "type": "span",
                    "name": "a",
                    "path": "a",
                    "wall_s": -0.1,
                    "cpu_s": 0.0,
                    "seq": 0,
                    "attrs": {},
                }
            )

    def test_bool_not_accepted_as_number(self):
        with pytest.raises(ValidationError, match="must not be a bool"):
            validate_record({"type": "counter", "name": "c", "value": True})

    def test_malformed_json_names_the_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        records = self._valid_records()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(records[0]) + "\n")
            fh.write("{not json\n")
        with pytest.raises(ValidationError, match="line 2"):
            read_trace(path)

    def test_missing_file_raises_validation_error(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            read_trace(tmp_path / "absent.jsonl")


class TestNanTrialAccounting:
    def test_n_nan_trials_counts_non_finite(self):
        records = (
            TrialRecord(index=0, metrics={"x": 1.0}),
            TrialRecord(index=1, metrics={"x": float("nan")}),
            TrialRecord(index=2, metrics={"x": 2.0}),
        )
        result = CampaignResult(master_seed=0, records=records)
        assert result.n_nan_trials == 1

    def test_n_nan_trials_zero_when_clean(self):
        records = (
            TrialRecord(index=0, metrics={"x": 1.0}),
            TrialRecord(index=1, metrics={"x": 2.0}),
        )
        result = CampaignResult(master_seed=0, records=records)
        assert result.n_nan_trials == 0

    def test_cli_warns_on_nan_trials(self, capsys):
        from repro.__main__ import _print_nan_warning

        records = (
            TrialRecord(index=0, metrics={"x": 1.0}),
            TrialRecord(index=1, metrics={"x": float("nan")}),
        )
        _print_nan_warning(CampaignResult(master_seed=0, records=records))
        out = capsys.readouterr().out
        assert "warning: 1 of 2 trials" in out
        assert "non-finite" in out

    def test_cli_silent_when_clean(self, capsys):
        from repro.__main__ import _print_nan_warning

        records = (TrialRecord(index=0, metrics={"x": 1.0}),)
        _print_nan_warning(CampaignResult(master_seed=0, records=records))
        assert capsys.readouterr().out == ""


class TestManifestNowSeam:
    """``base_manifest(now=)`` pins ``created_unix`` so manifest-writing
    tests are not time-dependent (the ``store/gc.py`` seam idiom)."""

    def test_base_manifest_accepts_injected_now(self):
        from repro.telemetry.manifest import base_manifest

        assert base_manifest(now=123.5)["created_unix"] == 123.5

    def test_base_manifest_defaults_to_the_real_clock(self):
        import time

        from repro.telemetry.manifest import base_manifest

        before = time.time()
        stamp = base_manifest()["created_unix"]
        after = time.time()
        assert before <= stamp <= after

    def test_recorder_records_threads_now_to_manifest(self):
        recorder = TraceRecorder()
        recorder.count("demo", 1)
        manifest = recorder.records(now=42.0)[0]
        assert manifest["type"] == "manifest"
        assert manifest["created_unix"] == 42.0

    def test_recorder_write_threads_now_to_manifest(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder()
        recorder.count("demo", 1)
        recorder.write(path, now=7.25)
        manifest = read_trace(path)[0]
        assert manifest["created_unix"] == 7.25

    def test_two_records_calls_with_same_now_agree_on_created_unix(self):
        recorder = TraceRecorder()
        recorder.count("demo", 1)
        first = recorder.records(now=5.0)[0]["created_unix"]
        second = recorder.records(now=5.0)[0]["created_unix"]
        assert first == second == 5.0
