"""Shared test configuration.

Test runs must be hermetic with respect to the content-addressed result
store: reading the user's persistent ``~/.cache/repro/store`` could mask
a regression behind a stale entry written by different code under the
same version string, and writing there pollutes the developer's real
cache.  Point the default store at a per-session temporary directory
instead; individual tests that exercise store behavior still override
``REPRO_STORE_DIR`` themselves via ``monkeypatch``.
"""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("repro-store")
    saved = os.environ.get("REPRO_STORE_DIR")
    os.environ["REPRO_STORE_DIR"] = str(root)
    # A REPRO_TRACE inherited from the developer's shell would make
    # every CLI-invoking test write (and announce) a trace file.
    saved_trace = os.environ.pop("REPRO_TRACE", None)
    yield
    if saved is None:
        os.environ.pop("REPRO_STORE_DIR", None)
    else:
        os.environ["REPRO_STORE_DIR"] = saved
    if saved_trace is not None:
        os.environ["REPRO_TRACE"] = saved_trace
