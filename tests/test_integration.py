"""Cross-module integration tests: full pipelines through the public API."""

import numpy as np
import pytest

from repro import (
    LssConfig,
    RangingService,
    distributed_localize,
    evaluate_localization,
    gaussian_ranges,
    localize_network,
    lss_localize,
    run_campaign,
)
from repro.acoustics import get_environment
from repro.core import DistributedConfig, align_to_reference, mds_map
from repro.deploy import paper_grid, random_anchors, square_grid
from repro.ranging import consistency_pipeline
from repro.ranging.filtering import confidence_weighted_edges


@pytest.fixture(scope="module")
def field_data():
    """A small but complete field campaign: grid + calibrated service."""
    from repro.deploy import offset_grid

    positions = offset_grid(columns=5, rows=5)  # compact 45x40 m patch
    service = RangingService(environment=get_environment("grass")).calibrate(rng=0)
    raw = run_campaign(positions, service, rounds=3, rng=2)
    return positions, raw


class TestRangingToLocalizationPipeline:
    def test_campaign_to_lss(self, field_data):
        positions, raw = field_data
        from repro.core import lss_localize_robust

        edges = confidence_weighted_edges(raw)
        result = lss_localize_robust(
            edges, len(positions), config=LssConfig(min_spacing_m=9.0), rng=4
        )
        report = evaluate_localization(result.positions, positions, align=True)
        assert report.n_localized == len(positions)
        assert report.average_error < 5.0

    def test_campaign_to_multilateration(self, field_data):
        positions, raw = field_data
        filtered = consistency_pipeline(raw)
        anchors_idx = random_anchors(len(positions), 8, rng=5)
        anchor_positions = {int(i): positions[i] for i in anchors_idx}
        result = localize_network(filtered, anchor_positions, len(positions))
        localized = result.localized & ~result.is_anchor
        if localized.sum():
            report = evaluate_localization(
                result.positions[localized], positions[localized]
            )
            assert report.average_error < 6.0

    def test_campaign_to_distributed(self, field_data):
        positions, raw = field_data
        edges = confidence_weighted_edges(raw)
        config = DistributedConfig(min_spacing_m=9.0)
        result = distributed_localize(edges, len(positions), root=12, config=config, rng=6)
        assert result.localized.sum() >= len(positions) // 2


class TestAlgorithmComparison:
    """The paper's comparative claims, on one shared clean scenario."""

    @pytest.fixture(scope="class")
    def scenario(self):
        positions = square_grid(5, 5, spacing_m=10.0)
        ranges = gaussian_ranges(positions, max_range_m=16.0, sigma_m=0.33, rng=7)
        return positions, ranges

    def test_lss_beats_mds_map_on_sparse_data(self, scenario):
        positions, ranges = scenario
        n = len(positions)
        lss = lss_localize(ranges, n, config=LssConfig(min_spacing_m=10.0), rng=8)
        lss_report = evaluate_localization(lss.positions, positions, align=True)
        mds_coords = mds_map(ranges.to_edge_list(), n)
        mds_report = evaluate_localization(mds_coords, positions, align=True)
        # Shortest-path completion overestimates long distances, so
        # LSS refinement should beat raw MDS-MAP.
        assert lss_report.average_error <= mds_report.average_error + 0.05

    def test_lss_without_anchors_comparable_to_anchored_multilateration(self, scenario):
        positions, _ = scenario
        # Denser ranges so the anchored baseline can localize at all.
        ranges = gaussian_ranges(positions, max_range_m=23.0, sigma_m=0.33, rng=7)
        n = len(positions)
        anchors_idx = [0, 4, 20, 24, 12]
        anchor_positions = {i: positions[i] for i in anchors_idx}
        multilat = localize_network(ranges, anchor_positions, n)
        loc = multilat.localized & ~multilat.is_anchor
        multilat_report = evaluate_localization(
            multilat.positions[loc], positions[loc]
        )
        lss = lss_localize(ranges, n, config=LssConfig(min_spacing_m=10.0), rng=9)
        lss_report = evaluate_localization(lss.positions, positions, align=True)
        assert lss_report.n_localized == n
        assert lss_report.average_error < max(2.0 * multilat_report.average_error, 1.0)

    def test_mds_init_accelerates_lss(self, scenario):
        positions, ranges = scenario
        n = len(positions)
        edges = ranges.to_edge_list()
        init = mds_map(edges, n)
        seeded = lss_localize(
            ranges,
            n,
            config=LssConfig(min_spacing_m=10.0, restarts=1, max_epochs=500),
            initial=init,
            rng=10,
        )
        report = evaluate_localization(seeded.positions, positions, align=True)
        assert report.average_error < 1.0


class TestEndToEndDeterminism:
    def test_full_pipeline_reproducible(self):
        positions = paper_grid(20, rng=3)[:20]
        service = RangingService(environment=get_environment("grass")).calibrate(rng=0)

        def pipeline(seed):
            raw = run_campaign(positions, service, rounds=2, rng=seed)
            edges = confidence_weighted_edges(raw)
            result = lss_localize(
                edges, len(positions), config=LssConfig(min_spacing_m=9.0), rng=seed
            )
            return result.positions

        a = pipeline(11)
        b = pipeline(11)
        assert np.allclose(a, b)
