"""Cross-backend differential harness for the engine's ``xp`` seam.

Two complementary locks on :mod:`repro.engine.backend`:

1. **Byte identity** — the default ``"numpy"`` backend must take the
   exact pre-seam code path.  Every public kernel's output on the
   seeded fixture stacks (``tests/_backend_fixtures.py``) is hashed and
   compared against SHA-256 pins frozen *before* the seam landed; any
   drift in the native path, however small, fails here.
2. **Tolerance parity** — every other available backend (the always-on
   ``numpy-generic`` twin locally; ``array-api-strict`` / ``cupy`` /
   ``jax`` when importable) must agree with the native path to
   floating-point reduction tolerance, with identical boolean
   decisions (solved/converged masks, argmin selections).

Backends whose library is not installed are *skipped*, never failed —
the harness degrades to the numpy/numpy-generic pair on a bare machine.

One deliberate exception: transform problems with exactly two
correspondences are degenerate — the rotation and reflection branches
reach the *same* residual error, and the strict ``<`` tie-break winner
flips with summation order.  Those problems are compared by error and
by the transform's action on the valid points, not by matrix bytes.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _backend_fixtures import (
    local_lss_config,
    local_map_stack,
    multilateration_problems,
    padded_problem_stack,
    shared_edge_problem,
    sha256_bytes,
    transform_stacks,
)
from repro.core.measurements import EdgeList
from repro.core.transforms import (
    estimate_transform_minimize,
    estimate_transforms_closed_form_batch,
    estimate_transforms_minimize_batch,
)
from repro.engine import (
    available_backends,
    batch_lss_descend,
    batch_lss_descend_padded,
    batch_lss_error,
    batch_lss_error_padded,
    batch_lss_gradient,
    batch_lss_gradient_padded,
    get_backend,
    solve_local_lss_stack,
    solve_multilateration_batch,
    use_backend,
)
from repro.engine import lss_localize_multistart
from repro.engine.localmaps import LocalLssProblem
from repro.errors import ValidationError

#: Pre-seam SHA-256 pins of every public kernel's output on the seeded
#: fixture stacks.  Frozen from the commit before the backend seam was
#: introduced; the native numpy path must reproduce them byte-for-byte.
GOLDEN_PINS = {
    "solve_multilateration_batch": "dc6ac928c2665b073a5cbcbda3b3669bff8aa0d83acaf9c4e98b2b20cb179410",
    "batch_lss_error": "0d60c673a5fa6682b060bdbbb9bd10b239ea58d60a7e5b9bb2c42161e211b23c",
    "batch_lss_gradient": "5a59e8d691bcaa653d5778752a1334903f10c39ba88a808428db28986cb08af8",
    "batch_lss_descend": "bca7202ccac7fc6b027646e3145f9b56ca28c02a92e09884d4b121040bebaa40",
    "batch_lss_error_padded": "64911a43bd5f65ff91b76b64a33d46faa5fa0384a66d6514e047f18c93ae1dd6",
    "batch_lss_gradient_padded": "69df36262dc245c209a3cb583c8ecd808e85b80b396be6b22b7fe698da2fc027",
    "batch_lss_descend_padded": "2217390fc11f4d46e35c0086ae817c108ce1312f8791733e55794ecff1e8156c",
    "solve_local_lss_stack": "a9fdead66118b355d4043e8287bf8feb62c90ae06c6c2c31ba6c199f348451d1",
    "estimate_transforms_closed_form_batch": "0fa251e18f70e9d6de1c7a0da5dd1e666cec96266586c0c436005c23a49eb6e5",
}

_AVAILABLE = available_backends()

#: Every non-native backend, present ones as live params and absent
#: optional ones as clean skips (the harness must *say* it skipped
#: cupy/jax, not silently shrink).
ALT_BACKENDS = [
    pytest.param(name)
    if name in _AVAILABLE
    else pytest.param(name, marks=pytest.mark.skip(reason=f"{name} not installed"))
    for name in ("numpy-generic", "array-api-strict", "cupy", "jax")
]


# -- fixture invocations (shared verbatim by pins and parity) ----------


def _run_multilateration(backend=None):
    anchors, dists, weights = multilateration_problems()
    return solve_multilateration_batch(anchors, dists, weights, backend=backend)


def _run_shared_edge(backend=None):
    edges, configs, free_mask = shared_edge_problem()
    error = batch_lss_error(configs, edges, backend=backend)
    grad = batch_lss_gradient(configs, edges, backend=backend)
    pts, err, conv = batch_lss_descend(
        configs,
        edges,
        None,
        min_spacing_m=None,
        constraint_weight=10.0,
        step_size=0.02,
        max_epochs=200,
        tolerance=1e-7,
        free_mask=free_mask,
        backend=backend,
    )
    return error, grad, pts, err, conv


def _run_padded(backend=None):
    problem = padded_problem_stack()
    stacks = (problem["configs"], problem["pairs"], problem["dists"], problem["weights"])
    kwargs = dict(
        constraint_pairs=problem["constraint_pairs"],
        constraint_valid=problem["constraint_valid"],
        min_spacing_m=problem["min_spacing_m"],
    )
    error = batch_lss_error_padded(*stacks, backend=backend, **kwargs)
    grad = batch_lss_gradient_padded(*stacks, backend=backend, **kwargs)
    pts, err, conv = batch_lss_descend_padded(
        *stacks,
        step_size=0.02,
        max_epochs=200,
        tolerance=1e-7,
        backend=backend,
        **kwargs,
    )
    return error, grad, pts, err, conv


def _local_problems():
    return [
        LocalLssProblem(
            n_nodes=p["n_nodes"],
            edges=EdgeList(
                pairs=p["pairs"], distances=p["distances"], weights=p["weights"]
            ),
            initial=p["initial"],
        )
        for p in local_map_stack()
    ]


def _run_localmaps(backend=None):
    return solve_local_lss_stack(
        _local_problems(),
        config=local_lss_config(),
        rng=np.random.default_rng(7),
        backend=backend,
    )


def _localmaps_hash(solutions) -> str:
    return sha256_bytes(
        np.concatenate([s.positions.ravel() for s in solutions]),
        np.array([s.error for s in solutions]),
        np.array([s.stress for s in solutions]),
        np.array([s.converged for s in solutions]),
    )


def _transform_action(estimate, source, valid_row):
    """Valid source points mapped through the homogeneous estimate."""
    pts = source[valid_row]
    return pts @ estimate.matrix[:2, :2] + estimate.matrix[2, :2]


# -- byte identity: numpy is the pre-seam path -------------------------


class TestGoldenPins:
    """The native path must reproduce the pre-seam bytes, both when the
    backend is left to default resolution and when named explicitly."""

    @pytest.mark.parametrize("backend", [None, "numpy"])
    def test_multilateration_pin(self, backend):
        pos, solved, residuals = _run_multilateration(backend)
        assert (
            sha256_bytes(pos, solved, residuals)
            == GOLDEN_PINS["solve_multilateration_batch"]
        )

    @pytest.mark.parametrize("backend", [None, "numpy"])
    def test_shared_edge_pins(self, backend):
        error, grad, pts, err, conv = _run_shared_edge(backend)
        assert sha256_bytes(error) == GOLDEN_PINS["batch_lss_error"]
        assert sha256_bytes(grad) == GOLDEN_PINS["batch_lss_gradient"]
        assert sha256_bytes(pts, err, conv) == GOLDEN_PINS["batch_lss_descend"]

    @pytest.mark.parametrize("backend", [None, "numpy"])
    def test_padded_pins(self, backend):
        error, grad, pts, err, conv = _run_padded(backend)
        assert sha256_bytes(error) == GOLDEN_PINS["batch_lss_error_padded"]
        assert sha256_bytes(grad) == GOLDEN_PINS["batch_lss_gradient_padded"]
        assert sha256_bytes(pts, err, conv) == GOLDEN_PINS["batch_lss_descend_padded"]

    @pytest.mark.parametrize("backend", [None, "numpy"])
    def test_localmaps_pin(self, backend):
        assert (
            _localmaps_hash(_run_localmaps(backend))
            == GOLDEN_PINS["solve_local_lss_stack"]
        )

    @pytest.mark.parametrize("backend", [None, "numpy"])
    def test_transforms_pin(self, backend):
        sources, targets, valid = transform_stacks()
        estimates = estimate_transforms_closed_form_batch(
            sources, targets, valid, backend=backend
        )
        digest = sha256_bytes(
            np.stack([e.matrix for e in estimates]),
            np.array([e.error for e in estimates]),
        )
        assert digest == GOLDEN_PINS["estimate_transforms_closed_form_batch"]

    def test_use_backend_scope_is_still_byte_exact(self):
        with use_backend("numpy"):
            pos, solved, residuals = _run_multilateration(None)
        assert (
            sha256_bytes(pos, solved, residuals)
            == GOLDEN_PINS["solve_multilateration_batch"]
        )


# -- tolerance parity: every other backend vs the native path ----------


@pytest.mark.parametrize("name", ALT_BACKENDS)
class TestBackendParity:
    def test_multilateration(self, name):
        ref_pos, ref_solved, ref_res = _run_multilateration("numpy")
        pos, solved, res = _run_multilateration(name)
        # The solved decision must be identical, not merely close.
        np.testing.assert_array_equal(solved, ref_solved)
        # The native straggler fast-path finishes near-converged
        # problems with a slightly different scalar reduction order, so
        # positions agree to descent tolerance, residuals tightly.
        np.testing.assert_allclose(pos, ref_pos, atol=1e-6)
        np.testing.assert_allclose(res, ref_res, atol=1e-9)

    def test_shared_edge_kernels(self, name):
        ref = _run_shared_edge("numpy")
        out = _run_shared_edge(name)
        np.testing.assert_allclose(out[0], ref[0], rtol=1e-12, atol=1e-12)  # error
        np.testing.assert_allclose(out[1], ref[1], rtol=1e-12, atol=1e-12)  # gradient
        np.testing.assert_allclose(out[2], ref[2], atol=1e-9)  # descent points
        np.testing.assert_allclose(out[3], ref[3], rtol=1e-9, atol=1e-12)
        np.testing.assert_array_equal(out[4], ref[4])  # converged mask

    def test_padded_kernels(self, name):
        ref = _run_padded("numpy")
        out = _run_padded(name)
        np.testing.assert_allclose(out[0], ref[0], rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(out[1], ref[1], rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(out[2], ref[2], atol=1e-9)
        np.testing.assert_allclose(out[3], ref[3], rtol=1e-9, atol=1e-12)
        np.testing.assert_array_equal(out[4], ref[4])

    def test_localmaps(self, name):
        ref = _run_localmaps("numpy")
        out = _run_localmaps(name)
        assert [s.converged for s in out] == [s.converged for s in ref]
        for sol, ref_sol in zip(out, ref):
            np.testing.assert_allclose(sol.positions, ref_sol.positions, atol=1e-9)
            assert sol.error == pytest.approx(ref_sol.error, rel=1e-9, abs=1e-12)
            assert sol.stress == pytest.approx(ref_sol.stress, rel=1e-9, abs=1e-12)

    def test_transforms_closed_form(self, name):
        sources, targets, valid = transform_stacks()
        ref = estimate_transforms_closed_form_batch(
            sources, targets, valid, backend="numpy"
        )
        out = estimate_transforms_closed_form_batch(
            sources, targets, valid, backend=name
        )
        for p, (est, ref_est) in enumerate(zip(out, ref)):
            assert est.error == pytest.approx(ref_est.error, rel=1e-9, abs=1e-12)
            n_valid = int(valid[p].sum())
            if n_valid >= 3:
                np.testing.assert_allclose(est.matrix, ref_est.matrix, atol=1e-9)
            else:
                # n=2 is the degenerate branch tie (module docstring):
                # compare the transforms' action on the valid points.
                np.testing.assert_allclose(
                    _transform_action(est, sources[p], valid[p]),
                    _transform_action(ref_est, sources[p], valid[p]),
                    atol=1e-6,
                )

    def test_transforms_minimize(self, name):
        sources, targets, valid = transform_stacks()
        out = estimate_transforms_minimize_batch(
            sources, targets, valid, backend=name
        )
        ref = estimate_transforms_minimize_batch(
            sources, targets, valid, backend="numpy"
        )
        for est, ref_est in zip(out, ref):
            assert est.error == pytest.approx(ref_est.error, rel=1e-9, abs=1e-12)


class TestMinimizeBatchMatchesScalar:
    """The batched analytic-argmin minimizer must agree with the scalar
    Nelder-Mead path it replaces (the per-pair ``scipy.optimize`` call),
    on every backend."""

    @pytest.mark.parametrize(
        "name", [pytest.param("numpy"), *ALT_BACKENDS]
    )
    def test_against_scalar_minimize(self, name):
        sources, targets, valid = transform_stacks()
        batch = estimate_transforms_minimize_batch(
            sources, targets, valid, backend=name
        )
        for p, est in enumerate(batch):
            pts = valid[p]
            scalar = estimate_transform_minimize(sources[p][pts], targets[p][pts])
            assert est.error == pytest.approx(scalar.error, rel=1e-7, abs=1e-9)
            if int(pts.sum()) >= 3:
                np.testing.assert_allclose(est.matrix, scalar.matrix, atol=1e-6)


# -- backend resolution behavior ---------------------------------------


class TestResolution:
    def test_auto_falls_back_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend = get_backend("auto")
        assert backend.name in ("cupy", "jax", "numpy")
        if not any(n in _AVAILABLE for n in ("cupy", "jax")):
            assert backend.name == "numpy"
            assert backend.is_native_numpy

    def test_unknown_name_raises_validation_error(self):
        with pytest.raises(ValidationError, match="unknown array backend"):
            get_backend("tensorflow")

    def test_numpy_and_generic_always_available(self):
        assert "numpy" in _AVAILABLE
        assert "numpy-generic" in _AVAILABLE
        assert not get_backend("numpy-generic").is_native_numpy

    def test_env_var_drives_default(self, monkeypatch):
        from repro.engine.backend import ARRAY_BACKEND_ENV_VAR, default_backend_name

        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "numpy-generic")
        assert default_backend_name() == "numpy-generic"
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "")
        assert default_backend_name() == "numpy"

    def test_use_backend_nests_and_restores(self):
        from repro.engine.backend import default_backend_name

        assert default_backend_name() == "numpy"
        with use_backend("numpy-generic"):
            assert default_backend_name() == "numpy-generic"
            with use_backend(None):  # None = passthrough, not reset
                assert default_backend_name() == "numpy-generic"
        assert default_backend_name() == "numpy"


# -- property invariants (hypothesis) ----------------------------------


class TestBackendPropertyInvariance:
    """Randomized stacks: the backend knob must never change a boolean
    decision (converged masks, which multistart wins) and the numpy
    path must be byte-identical however the backend gets resolved."""

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=12, deadline=None)
    def test_converged_masks_survive_backend_choice(self, seed):
        problem = padded_problem_stack(seed=seed)
        results = {}
        for name in ("numpy", "numpy-generic"):
            _, _, conv = batch_lss_descend_padded(
                problem["configs"],
                problem["pairs"],
                problem["dists"],
                problem["weights"],
                constraint_pairs=problem["constraint_pairs"],
                constraint_valid=problem["constraint_valid"],
                min_spacing_m=problem["min_spacing_m"],
                max_epochs=120,
                backend=name,
            )
            results[name] = conv
        np.testing.assert_array_equal(
            results["numpy-generic"], results["numpy"]
        )

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=12, deadline=None)
    def test_numpy_path_byte_identical_across_resolution_routes(self, seed):
        edges, configs, free_mask = shared_edge_problem(seed=seed)

        def run():
            return batch_lss_descend(
                configs,
                edges,
                None,
                min_spacing_m=None,
                constraint_weight=10.0,
                step_size=0.02,
                max_epochs=120,
                tolerance=1e-7,
                free_mask=free_mask,
            )

        implicit = sha256_bytes(*run())
        with use_backend("numpy"):
            scoped = sha256_bytes(*run())
        explicit = sha256_bytes(
            *batch_lss_descend(
                configs,
                edges,
                None,
                min_spacing_m=None,
                constraint_weight=10.0,
                step_size=0.02,
                max_epochs=120,
                tolerance=1e-7,
                free_mask=free_mask,
                backend="numpy",
            )
        )
        assert implicit == scoped == explicit

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None)
    def test_multistart_argmin_selection_survives_backend_choice(self, seed):
        from repro.core.lss import LssConfig

        edges, _, _ = shared_edge_problem(seed=seed, n_nodes=7)
        config = LssConfig(restarts=2, max_epochs=100, min_spacing_m=1.5)
        per_backend = {}
        for name in ("numpy", "numpy-generic"):
            results = lss_localize_multistart(
                edges, 7, config=config, seeds=[seed, seed + 1, seed + 2],
                backend=name,
            )
            per_backend[name] = results
        ref, out = per_backend["numpy"], per_backend["numpy-generic"]
        assert [r.converged for r in out] == [r.converged for r in ref]
        errors_ref = np.array([r.error for r in ref])
        errors_out = np.array([r.error for r in out])
        # The backends differ only in reduction/accumulation order, but a
        # 100-epoch descent amplifies that to ~1e-7 relative on the final
        # error — tolerance must cover the compounded drift, not a single op.
        np.testing.assert_allclose(errors_out, errors_ref, rtol=1e-6, atol=1e-9)
        ranked = np.sort(errors_ref)
        if len(ranked) > 1 and ranked[1] - ranked[0] > 1e-6 * max(ranked[1], 1e-9):
            assert int(np.argmin(errors_out)) == int(np.argmin(errors_ref))


# -- spec/store invariance ---------------------------------------------


class TestStoreInvariance:
    """``solver.array_backend`` is an execution knob: it must not move
    the scenario hash, and the campaign a backend-pinned spec produces
    must be byte-identical to the default's store entry (cache hit)."""

    def test_spec_hash_excludes_array_backend(self):
        from dataclasses import replace

        from repro.scenarios import get_scenario

        spec = get_scenario("uniform-multilateration")
        pinned = replace(spec, solver=replace(spec.solver, array_backend="numpy"))
        assert pinned.spec_hash() == spec.spec_hash()
        assert "array_backend" not in str(spec.canonical())

    def test_backend_pinned_run_hits_default_cache(self, tmp_path):
        from dataclasses import replace

        from repro.scenarios import get_scenario, run_scenario
        from repro.store import ResultStore

        spec = get_scenario("uniform-multilateration")
        pinned = replace(spec, solver=replace(spec.solver, array_backend="numpy"))
        store = ResultStore(tmp_path / "store")
        ref = run_scenario(spec, master_seed=11, n_trials=2, store=store)
        out = run_scenario(pinned, master_seed=11, n_trials=2, store=store)
        assert store.stats.hits == 1 and store.stats.puts == 1
        assert out.records == ref.records
