"""Tests for repro.core.evaluation."""

import math

import numpy as np
import pytest

from repro.core.evaluation import (
    align_to_reference,
    error_histogram,
    evaluate_localization,
    localization_errors,
    trimmed_mean_error,
)
from repro.core.geometry import apply_transform, rigid_transform_matrix
from repro.errors import ValidationError


@pytest.fixture
def square():
    return np.array([[0.0, 0.0], [10.0, 0.0], [10.0, 10.0], [0.0, 10.0]])


class TestAlignToReference:
    def test_undoes_rigid_transform(self, square):
        t = rigid_transform_matrix(1.2, 30.0, -4.0)
        moved = apply_transform(square, t)
        aligned = align_to_reference(moved, square)
        assert np.allclose(aligned, square, atol=1e-6)

    def test_undoes_reflection(self, square):
        t = rigid_transform_matrix(0.0, 0.0, 0.0, reflect=True)
        moved = apply_transform(square, t)
        aligned = align_to_reference(moved, square)
        assert np.allclose(aligned, square, atol=1e-6)

    def test_does_not_rescale(self, square):
        # Scaled configurations must NOT align perfectly: rigid only.
        aligned = align_to_reference(square * 2.0, square)
        errors = localization_errors(aligned, square)
        assert errors.mean() > 1.0

    def test_minimize_method(self, square):
        t = rigid_transform_matrix(-0.4, 2.0, 2.0)
        moved = apply_transform(square, t)
        aligned = align_to_reference(moved, square, method="minimize")
        assert np.allclose(aligned, square, atol=1e-4)

    def test_shape_mismatch(self, square):
        with pytest.raises(ValidationError):
            align_to_reference(square, square[:3])


class TestLocalizationErrors:
    def test_zero_for_identical(self, square):
        assert np.allclose(localization_errors(square, square), 0.0)

    def test_known_offsets(self):
        est = np.array([[1.0, 0.0], [0.0, 2.0]])
        act = np.zeros((2, 2))
        assert localization_errors(est, act) == pytest.approx([1.0, 2.0])

    def test_empty(self):
        assert localization_errors(np.zeros((0, 2)), np.zeros((0, 2))).size == 0


class TestEvaluateLocalization:
    def test_all_localized(self, square):
        report = evaluate_localization(square + [0.5, 0.0], square)
        assert report.n_total == 4
        assert report.n_localized == 4
        assert report.average_error == pytest.approx(0.5)
        assert report.median_error == pytest.approx(0.5)
        assert report.max_error == pytest.approx(0.5)
        assert report.localized_fraction == 1.0

    def test_nan_rows_excluded(self, square):
        est = square.copy()
        est[2] = np.nan
        report = evaluate_localization(est, square)
        assert report.n_localized == 3

    def test_explicit_mask(self, square):
        mask = [True, True, False, False]
        report = evaluate_localization(square, square, localized_mask=mask)
        assert report.n_localized == 2

    def test_mask_intersects_nan(self, square):
        est = square.copy()
        est[0] = np.nan
        report = evaluate_localization(
            est, square, localized_mask=[True, True, True, True]
        )
        assert report.n_localized == 3

    def test_nothing_localized(self, square):
        est = np.full_like(square, np.nan)
        report = evaluate_localization(est, square)
        assert report.n_localized == 0
        assert math.isnan(report.average_error)
        assert report.localized_fraction == 0.0

    def test_align_flag(self, square):
        t = rigid_transform_matrix(0.7, 5.0, 5.0)
        moved = apply_transform(square, t)
        unaligned = evaluate_localization(moved, square)
        aligned = evaluate_localization(moved, square, align=True)
        assert aligned.average_error < 1e-6
        assert unaligned.average_error > 1.0

    def test_shape_mismatch(self, square):
        with pytest.raises(ValidationError):
            evaluate_localization(square[:2], square)

    def test_bad_mask_shape(self, square):
        with pytest.raises(ValidationError):
            evaluate_localization(square, square, localized_mask=[True])


class TestErrorHistogram:
    def test_symmetric_bins_centered(self):
        errors = [-0.25, 0.0, 0.25]
        edges, counts = error_histogram(errors, bin_width=0.1)
        assert counts.sum() == 3
        # Zero must be inside one bin, not on an edge.
        zero_bin = np.searchsorted(edges, 0.0) - 1
        assert edges[zero_bin] < 0.0 < edges[zero_bin + 1]

    def test_empty_input(self):
        edges, counts = error_histogram([], bin_width=0.5)
        assert counts.sum() == 0

    def test_nan_filtered(self):
        edges, counts = error_histogram([0.1, np.nan, -0.1])
        assert counts.sum() == 2

    def test_bad_bin_width(self):
        with pytest.raises(ValidationError):
            error_histogram([0.0], bin_width=0.0)

    def test_asymmetric_mode(self):
        edges, counts = error_histogram([1.0, 2.0, 3.0], bin_width=1.0, symmetric=False)
        assert counts.sum() == 3


class TestTrimmedMean:
    def test_no_trim(self):
        assert trimmed_mean_error([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_drop_worst(self):
        assert trimmed_mean_error([1.0, 2.0, 30.0], drop_worst=1) == pytest.approx(1.5)

    def test_drop_all_returns_nan(self):
        assert math.isnan(trimmed_mean_error([1.0], drop_worst=1))

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            trimmed_mean_error([1.0], drop_worst=-1)

    def test_paper_usage(self):
        # "2.2 m average, 1.5 m without the largest 5" style computation.
        errors = [0.5] * 42 + [10.0] * 5
        full = float(np.mean(errors))
        trimmed = trimmed_mean_error(errors, drop_worst=5)
        assert trimmed < full
        assert trimmed == pytest.approx(0.5)
