"""Tests for the declarative scenario layer.

Covers spec validation, canonical hashing (stability, id-exclusion,
physics-sensitivity), sweep expansion, the registry, the picklable
scenario trial, and the store-backed runner — including the acceptance
contract that a repeated cached campaign does *zero* simulation work.
"""

import dataclasses
import pickle

import numpy as np
import pytest

import repro.scenarios.runner as runner_module
from repro.engine import ConfidenceStop
from repro.errors import ValidationError
from repro.scenarios import (
    AnchorSpec,
    DeploymentSpec,
    RangingSpec,
    ScenarioSpec,
    SolverSpec,
    all_scenarios,
    draw_deployment,
    expand_grid,
    get_scenario,
    register_scenario,
    run_scenario,
    run_scenario_by_id,
    scenario_trial,
)
from repro.store import ResultStore


def _base_spec(**overrides) -> ScenarioSpec:
    spec = ScenarioSpec(
        scenario_id="test-base",
        deployment=DeploymentSpec(kind="uniform", n_nodes=14, width_m=40.0, height_m=40.0),
        anchors=AnchorSpec(strategy="random", fraction=None, count=6),
        ranging=RangingSpec(model="gaussian", max_range_m=20.0, sigma_m=0.33),
        solver=SolverSpec(algorithm="multilateration"),
        n_trials=3,
    )
    return spec.with_overrides(**overrides) if overrides else spec


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            DeploymentSpec(kind="mars")

    def test_grid_requires_square_count(self):
        with pytest.raises(ValidationError):
            DeploymentSpec(kind="grid", n_nodes=15)
        DeploymentSpec(kind="grid", n_nodes=16)

    def test_anchor_spec_exclusive_fields(self):
        with pytest.raises(ValidationError):
            AnchorSpec(strategy="random", fraction=0.2, count=5)
        with pytest.raises(ValidationError):
            AnchorSpec(strategy="random", fraction=None, count=None)
        with pytest.raises(ValidationError):
            AnchorSpec(strategy="none", fraction=0.2)

    def test_anchor_count_resolution(self):
        assert AnchorSpec(strategy="random", fraction=0.25).n_anchors(36) == 9
        assert AnchorSpec(strategy="random", count=50).n_anchors(36) == 36
        assert AnchorSpec(strategy="none").n_anchors(36) == 0

    def test_anchor_count_only_constructor(self):
        spec = AnchorSpec(count=10)
        assert spec.fraction is None and spec.n_anchors(36) == 10

    def test_dv_hop_backend_normalized_into_hash(self):
        default = SolverSpec(algorithm="dv-hop")
        explicit = SolverSpec(algorithm="dv-hop", backend="lm")
        assert default == explicit  # same physics, same hash

    def test_lss_must_be_anchor_free(self):
        with pytest.raises(ValidationError):
            _base_spec(**{"solver.algorithm": "lss"})
        ScenarioSpec(
            scenario_id="ok",
            anchors=AnchorSpec(strategy="none", fraction=None, count=None),
            solver=SolverSpec(algorithm="lss"),
        )

    def test_anchored_algorithms_need_anchors(self):
        with pytest.raises(ValidationError):
            ScenarioSpec(
                scenario_id="bad",
                anchors=AnchorSpec(strategy="none", fraction=None, count=None),
                solver=SolverSpec(algorithm="multilateration"),
            )


class TestSpecHashing:
    def test_hash_is_stable_and_hex(self):
        a, b = _base_spec(), _base_spec()
        assert a.spec_hash() == b.spec_hash()
        assert len(a.spec_hash()) == 64

    def test_hash_ignores_cosmetic_id(self):
        spec = _base_spec()
        renamed = dataclasses.replace(spec, scenario_id="renamed")
        assert renamed.spec_hash() == spec.spec_hash()

    @pytest.mark.parametrize(
        "path,value",
        [
            ("deployment.n_nodes", 15),
            ("deployment.width_m", 41.0),
            ("anchors.count", 7),
            ("ranging.sigma_m", 0.34),
            ("ranging.max_range_m", 21.0),
            ("solver.backend", "scalar"),
            ("n_trials", 4),
            ("target_metric", "median_error_m"),
        ],
    )
    def test_every_physical_field_changes_hash(self, path, value):
        assert _base_spec(**{path: value}).spec_hash() != _base_spec().spec_hash()

    def test_canonical_json_sorted_and_compact(self):
        text = _base_spec().canonical_json()
        assert " " not in text
        assert text.index('"anchors"') < text.index('"deployment"')
        assert "scenario_id" not in text


class TestOverridesAndGrid:
    def test_with_overrides_dotted_paths(self):
        spec = _base_spec(**{"ranging.sigma_m": 0.1, "n_trials": 9})
        assert spec.ranging.sigma_m == 0.1
        assert spec.n_trials == 9
        # original untouched (frozen)
        assert _base_spec().ranging.sigma_m == 0.33

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError):
            _base_spec(**{"ranging.flux_capacitor": 1.21})
        with pytest.raises(ValidationError):
            _base_spec(nonexistent=1)

    def test_grid_cross_product(self):
        specs = _base_spec().grid(
            {"deployment.n_nodes": [9, 16], "ranging.sigma_m": [0.1, 0.2, 0.3]}
        )
        assert len(specs) == 6
        assert len({s.scenario_id for s in specs}) == 6
        assert len({s.spec_hash() for s in specs}) == 6
        assert all("n_nodes=" in s.scenario_id for s in specs)
        # axis order: first axis varies slowest
        assert specs[0].deployment.n_nodes == 9
        assert specs[-1].deployment.n_nodes == 16

    def test_grid_empty_axes_returns_base(self):
        spec = _base_spec()
        assert expand_grid(spec, {}) == (spec,)

    def test_grid_rejects_empty_axis(self):
        with pytest.raises(ValidationError):
            _base_spec().grid({"n_trials": []})


class TestRegistry:
    def test_builtins_present_and_valid(self):
        scenarios = all_scenarios()
        assert len(scenarios) >= 8
        for scenario_id, spec in scenarios.items():
            assert spec.scenario_id == scenario_id
            assert len(spec.spec_hash()) == 64

    def test_get_unknown_lists_known(self):
        with pytest.raises(KeyError, match="town-multilateration"):
            get_scenario("fig99")

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("town-multilateration")
        with pytest.raises(ValidationError):
            register_scenario(spec)


class TestScenarioTrial:
    def test_deterministic_given_seed(self):
        spec = _base_spec()
        a = scenario_trial(np.random.default_rng(4), spec=spec)
        b = scenario_trial(np.random.default_rng(4), spec=spec)
        assert a == b

    def test_metrics_contract(self):
        metrics = scenario_trial(np.random.default_rng(4), spec=_base_spec())
        assert {"fraction_localized", "mean_error_m", "median_error_m"} <= set(metrics)
        assert 0.0 <= metrics["fraction_localized"] <= 1.0

    def test_spec_and_trial_are_picklable(self):
        spec = _base_spec()
        assert pickle.loads(pickle.dumps(spec)) == spec
        fn = pickle.loads(pickle.dumps(scenario_trial))
        assert fn is scenario_trial

    def test_degenerate_all_anchor_draw_yields_nan(self):
        spec = _base_spec(**{"anchors.count": 14})
        metrics = scenario_trial(np.random.default_rng(4), spec=spec)
        assert np.isnan(metrics["fraction_localized"])

    def test_lss_trial_path(self):
        spec = ScenarioSpec(
            scenario_id="lss-small",
            deployment=DeploymentSpec(
                kind="uniform", n_nodes=10, width_m=35.0, height_m=35.0,
                min_separation_m=5.0,
            ),
            anchors=AnchorSpec(strategy="none", fraction=None, count=None),
            ranging=RangingSpec(model="gaussian", max_range_m=22.0, sigma_m=0.2),
            solver=SolverSpec(
                algorithm="lss", min_spacing_m=5.0, restarts=2, max_epochs=300
            ),
            n_trials=1,
        )
        metrics = scenario_trial(np.random.default_rng(4), spec=spec)
        assert metrics["fraction_localized"] == 1.0
        assert metrics["epochs_run"] > 0

    def test_distributed_lss_trial_path(self):
        spec = ScenarioSpec(
            scenario_id="dlss-small",
            deployment=DeploymentSpec(kind="grid", n_nodes=16, spacing_m=10.0),
            anchors=AnchorSpec(strategy="none", fraction=None, count=None),
            ranging=RangingSpec(model="gaussian", max_range_m=16.0, sigma_m=0.2),
            solver=SolverSpec(
                algorithm="distributed-lss", min_spacing_m=10.0, restarts=2,
                max_epochs=300,
            ),
            n_trials=1,
        )
        metrics = scenario_trial(np.random.default_rng(4), spec=spec)
        assert metrics["fraction_localized"] == 1.0
        assert metrics["n_local_maps"] == 16.0
        assert metrics["mean_error_m"] < 2.0

    def test_distributed_lss_backend_normalized(self):
        spec = SolverSpec(algorithm="distributed-lss")
        assert spec.backend == "batched"
        scalar = SolverSpec(algorithm="distributed-lss", backend="scalar")
        assert scalar.backend == "scalar"
        with pytest.raises(ValidationError):
            SolverSpec(algorithm="distributed-lss", backend="lm")

    def test_distributed_lss_degenerate_draw_yields_nan(self):
        # Too sparse to build any local map at the root: nan metrics,
        # no crash (the campaign aggregation contract).
        spec = ScenarioSpec(
            scenario_id="dlss-degenerate",
            deployment=DeploymentSpec(
                kind="uniform", n_nodes=6, width_m=200.0, height_m=200.0,
                min_separation_m=40.0,
            ),
            anchors=AnchorSpec(strategy="none", fraction=None, count=None),
            ranging=RangingSpec(model="gaussian", max_range_m=10.0, sigma_m=0.2),
            solver=SolverSpec(algorithm="distributed-lss"),
            n_trials=1,
        )
        metrics = scenario_trial(np.random.default_rng(0), spec=spec)
        assert np.isnan(metrics["mean_error_m"])

    def test_deployment_kinds_produce_expected_counts(self):
        rng = np.random.default_rng(0)
        for kind, n in [("uniform", 9), ("grid", 9), ("paper-grid", 47), ("town", 12)]:
            spec = DeploymentSpec(kind=kind, n_nodes=n, width_m=50.0, height_m=50.0,
                                  min_separation_m=3.0)
            assert draw_deployment(spec, rng).shape == (n, 2)


class TestRunScenario:
    def test_cache_hit_is_bit_identical_to_cold_run(self, tmp_path):
        store = ResultStore(tmp_path, code_version="v1")
        spec = _base_spec()
        cold = run_scenario(spec, master_seed=3, store=store)
        warm = run_scenario(spec, master_seed=3, store=store)
        assert store.stats.hits == 1 and store.stats.misses == 1
        assert warm.records == cold.records
        assert warm.aggregate() == cold.aggregate()

    def test_cache_hit_does_zero_simulation_work(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path, code_version="v1")
        spec = _base_spec()
        run_scenario(spec, master_seed=3, store=store)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("simulation ran despite cache hit")

        monkeypatch.setattr(runner_module, "run_monte_carlo", boom)
        monkeypatch.setattr(runner_module, "run_adaptive", boom)
        warm = run_scenario(spec, master_seed=3, store=store)
        assert warm.n_trials == spec.n_trials

    def test_spec_change_invalidates(self, tmp_path):
        store = ResultStore(tmp_path, code_version="v1")
        run_scenario(_base_spec(), master_seed=3, store=store)
        run_scenario(
            _base_spec(**{"ranging.sigma_m": 0.5}), master_seed=3, store=store
        )
        assert store.stats.hits == 0 and store.stats.misses == 2

    def test_seed_change_invalidates(self, tmp_path):
        store = ResultStore(tmp_path, code_version="v1")
        run_scenario(_base_spec(), master_seed=3, store=store)
        run_scenario(_base_spec(), master_seed=4, store=store)
        assert store.stats.hits == 0 and store.stats.misses == 2

    def test_code_version_bump_invalidates(self, tmp_path):
        spec = _base_spec()
        old = ResultStore(tmp_path, code_version="v1")
        cold = run_scenario(spec, master_seed=3, store=old)
        bumped = ResultStore(tmp_path, code_version="v2")
        recomputed = run_scenario(spec, master_seed=3, store=bumped)
        assert bumped.stats.hits == 0 and bumped.stats.misses == 1
        # same physics, so same results — but via a fresh simulation
        assert recomputed.records == cold.records

    def test_no_cache_recomputes_and_republished(self, tmp_path):
        store = ResultStore(tmp_path, code_version="v1")
        spec = _base_spec()
        run_scenario(spec, master_seed=3, store=store)
        forced = run_scenario(spec, master_seed=3, store=store, use_cache=False)
        assert store.stats.hits == 0
        assert store.stats.puts == 2
        assert forced.n_trials == spec.n_trials

    def test_adaptive_and_fixed_are_cached_separately(self, tmp_path):
        store = ResultStore(tmp_path, code_version="v1")
        spec = _base_spec(n_trials=12)
        stopping = ConfidenceStop(
            metric="mean_error_m", tolerance=1e9, min_trials=2
        )
        fixed = run_scenario(spec, master_seed=3, store=store)
        adaptive = run_scenario(spec, master_seed=3, store=store, stopping=stopping)
        assert store.stats.misses == 2  # distinct keys
        assert adaptive.converged
        # the trivially-satisfied rule stops at the first chunk boundary,
        # and the committed records are a prefix of the fixed run's
        assert adaptive.records == fixed.records[: adaptive.n_trials]
        warm = run_scenario(spec, master_seed=3, store=store, stopping=stopping)
        assert warm == adaptive

    def test_run_by_id(self, tmp_path):
        store = ResultStore(tmp_path, code_version="v1")
        result = run_scenario_by_id(
            "uniform-multilateration", master_seed=1, n_trials=2, store=store
        )
        assert result.n_trials == 2


class TestExperimentIntegration:
    def test_repeated_ext_campaign_does_zero_simulation_work(
        self, tmp_path, monkeypatch
    ):
        """Acceptance criterion: with the store enabled, a repeated
        ext-campaign run is served entirely from the cache."""
        from repro.experiments.extension_experiments import ext_campaign_statistics

        store = ResultStore(tmp_path, code_version="v1")
        first = ext_campaign_statistics(2005, store=store)
        assert first.passed

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("simulation ran despite warm store")

        monkeypatch.setattr(runner_module, "run_monte_carlo", boom)
        monkeypatch.setattr(runner_module, "run_adaptive", boom)
        second = ext_campaign_statistics(2005, store=store)
        assert second.passed
        assert second.measured["mean_error_m"] == first.measured["mean_error_m"]
        assert store.stats.hits >= 2

    def test_grass_campaign_memoized_in_store(self, tmp_path, monkeypatch):
        """The figure drivers' shared field campaign is served from the
        content-addressed store on re-runs, bit-identically."""
        import repro.experiments.common as common

        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        common._campaign_cached.cache_clear()
        raw_cold, edges_cold = common.grass_campaign_edges(n_nodes=12, seed=77)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("campaign re-simulated despite warm store")

        monkeypatch.setattr(common, "_simulate_grass_campaign", boom)
        common._campaign_cached.cache_clear()
        raw_warm, edges_warm = common.grass_campaign_edges(n_nodes=12, seed=77)
        assert len(raw_warm) == len(raw_cold)
        assert np.array_equal(edges_warm.pairs, edges_cold.pairs)
        assert np.array_equal(edges_warm.distances, edges_cold.distances)
        assert np.array_equal(edges_warm.weights, edges_cold.weights)
        common._campaign_cached.cache_clear()

    def test_grass_campaign_store_can_be_disabled(self, tmp_path, monkeypatch):
        import repro.experiments.common as common

        monkeypatch.setenv("REPRO_STORE_DIR", "off")
        common._campaign_cached.cache_clear()
        raw, edges = common.grass_campaign_edges(n_nodes=12, seed=77)
        assert len(edges) > 0
        assert not any(tmp_path.iterdir())
        common._campaign_cached.cache_clear()
