"""Tests for repro.core.mds (classical MDS / MDS-MAP baselines)."""

import numpy as np
import pytest

from repro.core.evaluation import align_to_reference, localization_errors
from repro.core.geometry import pairwise_distances
from repro.core.mds import classical_mds, complete_distances, mds_map
from repro.core.measurements import EdgeList, MeasurementSet
from repro.errors import (
    GraphDisconnectedError,
    InsufficientDataError,
    ValidationError,
)


@pytest.fixture
def config_points():
    rng = np.random.default_rng(7)
    return rng.uniform(0, 30, (8, 2))


class TestClassicalMds:
    def test_recovers_configuration(self, config_points):
        dist = pairwise_distances(config_points)
        coords = classical_mds(dist)
        aligned = align_to_reference(coords, config_points)
        assert localization_errors(aligned, config_points).max() < 1e-6

    def test_output_centered(self, config_points):
        coords = classical_mds(pairwise_distances(config_points))
        assert np.allclose(coords.mean(axis=0), 0.0, atol=1e-8)

    def test_one_component(self):
        # Points on a line embed perfectly in 1-D.
        line = np.stack([np.arange(5) * 3.0, np.zeros(5)], axis=1)
        coords = classical_mds(pairwise_distances(line), n_components=1)
        recovered = np.abs(coords[:, 0] - coords[0, 0])
        assert np.allclose(sorted(recovered), np.arange(5) * 3.0, atol=1e-8)

    def test_asymmetric_rejected(self):
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValidationError):
            classical_mds(bad)

    def test_nonzero_diagonal_rejected(self):
        bad = np.eye(3)
        with pytest.raises(ValidationError):
            classical_mds(bad)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValidationError):
            classical_mds(np.zeros((2, 3)))

    def test_bad_component_count(self, config_points):
        dist = pairwise_distances(config_points)
        with pytest.raises(ValidationError):
            classical_mds(dist, n_components=0)
        with pytest.raises(ValidationError):
            classical_mds(dist, n_components=99)

    def test_noisy_distances_still_close(self, config_points):
        rng = np.random.default_rng(1)
        dist = pairwise_distances(config_points)
        noise = rng.normal(0, 0.1, dist.shape)
        noisy = np.abs(dist + (noise + noise.T) / 2)
        np.fill_diagonal(noisy, 0.0)
        coords = classical_mds(noisy)
        aligned = align_to_reference(coords, config_points)
        assert localization_errors(aligned, config_points).mean() < 1.0


class TestCompleteDistances:
    def test_full_graph_passthrough(self, config_points):
        dist = pairwise_distances(config_points)
        n = len(config_points)
        pairs = np.array([(i, j) for i in range(n) for j in range(i + 1, n)])
        edges = EdgeList(
            pairs=pairs,
            distances=np.array([dist[i, j] for i, j in pairs]),
            weights=np.ones(len(pairs)),
        )
        full = complete_distances(edges, n)
        assert np.allclose(full, dist, atol=1e-9)

    def test_path_completion(self):
        # Chain 0-1-2: missing (0,2) filled with the path sum.
        edges = EdgeList(
            pairs=np.array([[0, 1], [1, 2]]),
            distances=np.array([3.0, 4.0]),
            weights=np.ones(2),
        )
        full = complete_distances(edges, 3)
        assert full[0, 2] == pytest.approx(7.0)

    def test_shortest_path_chosen(self):
        # Two routes 0->2: direct 10 or 0-1-2 = 3+4.
        edges = EdgeList(
            pairs=np.array([[0, 1], [1, 2], [0, 2]]),
            distances=np.array([3.0, 4.0, 10.0]),
            weights=np.ones(3),
        )
        full = complete_distances(edges, 3)
        assert full[0, 2] == pytest.approx(7.0)

    def test_disconnected_raises(self):
        edges = EdgeList(
            pairs=np.array([[0, 1]]),
            distances=np.array([1.0]),
            weights=np.ones(1),
        )
        with pytest.raises(GraphDisconnectedError):
            complete_distances(edges, 3)

    def test_empty_raises(self):
        empty = EdgeList(
            pairs=np.zeros((0, 2), dtype=np.int64),
            distances=np.zeros(0),
            weights=np.zeros(0),
        )
        with pytest.raises(InsufficientDataError):
            complete_distances(empty, 3)

    def test_measurement_set_input(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 2.0)
        ms.add_distance(1, 2, 2.0)
        full = complete_distances(ms, 3)
        assert full[0, 2] == pytest.approx(4.0)

    def test_invalid_type(self):
        with pytest.raises(ValidationError):
            complete_distances([(0, 1, 2.0)], 3)


class TestMdsMap:
    def test_dense_graph_accurate(self, config_points):
        dist = pairwise_distances(config_points)
        n = len(config_points)
        pairs = []
        for i in range(n):
            for j in range(i + 1, n):
                if dist[i, j] < 25.0:
                    pairs.append((i, j))
        pairs = np.asarray(pairs)
        edges = EdgeList(
            pairs=pairs,
            distances=np.array([dist[i, j] for i, j in pairs]),
            weights=np.ones(len(pairs)),
        )
        coords = mds_map(edges, n)
        aligned = align_to_reference(coords, config_points)
        assert localization_errors(aligned, config_points).mean() < 3.0

    def test_returns_requested_shape(self, config_points):
        dist = pairwise_distances(config_points)
        n = len(config_points)
        pairs = np.array([(i, j) for i in range(n) for j in range(i + 1, n)])
        edges = EdgeList(
            pairs=pairs,
            distances=np.array([dist[i, j] for i, j in pairs]),
            weights=np.ones(len(pairs)),
        )
        assert mds_map(edges, n).shape == (n, 2)
        assert mds_map(edges, n, n_components=3).shape == (n, 3)
