"""Property-style invariance tests on randomized seeded inputs.

Invariants the localization stack must honor regardless of input
presentation:

* the intersection consistency filter depends on the anchor *set*, not
  the order anchors are listed in (permutation equivariance);
* ``lss_localize_robust`` depends on the network, not on how nodes are
  numbered — relabeling nodes relabels the solution;
* the evaluation error metrics are invariant under rigid motion of an
  aligned (anchor-free) estimate, since the paper's protocol aligns
  before measuring.
"""

import numpy as np
import pytest

from repro.core import evaluate_localization, lss_localize_robust, LssConfig
from repro.core.geometry import apply_transform, rigid_transform_matrix
from repro.core.measurements import EdgeList
from repro.core.multilateration import intersection_consistency_filter
from repro.deploy import uniform_random_layout
from repro.engine.batch import consistency_filter_fast
from repro.ranging import gaussian_ranges


def _anchor_problem(seed):
    rng = np.random.default_rng(seed)
    k = int(rng.integers(4, 8))
    anchors = rng.uniform(0, 30, (k, 2))
    target = rng.uniform(5, 25, 2)
    dists = np.abs(np.hypot(*(anchors - target).T) + rng.normal(0, 0.3, k))
    if rng.random() < 0.5:
        dists[int(rng.integers(k))] *= 1.4
    return rng, anchors, dists


class TestConsistencyFilterPermutationInvariance:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize(
        "filter_fn", [intersection_consistency_filter, consistency_filter_fast]
    )
    def test_kept_set_is_permutation_equivariant(self, seed, filter_fn):
        rng, anchors, dists = _anchor_problem(seed)
        kept = filter_fn(anchors, dists)
        perm = rng.permutation(anchors.shape[0])
        kept_perm = filter_fn(anchors[perm], dists[perm])
        # Map permuted indices back to original labels.
        assert sorted(perm[kept_perm]) == sorted(kept)


def _lss_problem(seed, n_nodes=14):
    rng = np.random.default_rng(seed)
    positions = uniform_random_layout(
        n_nodes, width_m=40.0, height_m=40.0, min_separation_m=4.0, rng=rng
    )
    ranges = gaussian_ranges(positions, max_range_m=20.0, sigma_m=0.3, rng=rng)
    edges = ranges.to_edge_list()
    initial = positions + rng.normal(0, 2.0, positions.shape)
    return positions, edges, initial


def _relabel_edges(edges, perm):
    """Relabel edge endpoints by node permutation, keeping row order."""
    pairs = perm[edges.pairs]
    pairs = np.sort(pairs, axis=1)
    return EdgeList(pairs=pairs, distances=edges.distances, weights=edges.weights)


class TestLssRobustNodeOrderInvariance:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_relabeling_nodes_relabels_solution(self, seed):
        positions, edges, initial = _lss_problem(seed)
        n = positions.shape[0]
        config = LssConfig(min_spacing_m=4.0, restarts=1, max_epochs=400)
        base = lss_localize_robust(edges, n, config=config, initial=initial, rng=0)

        rng = np.random.default_rng(seed + 100)
        perm = rng.permutation(n)  # old label i -> new label perm[i]
        permuted_initial = np.empty_like(initial)
        permuted_initial[perm] = initial
        permuted = lss_localize_robust(
            _relabel_edges(edges, perm),
            n,
            config=config,
            initial=permuted_initial,
            rng=0,
        )
        assert permuted.positions[perm] == pytest.approx(base.positions, abs=1e-6)
        assert permuted.error == pytest.approx(base.error, rel=1e-9)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_error_metrics_invariant_under_relabeling(self, seed):
        positions, edges, initial = _lss_problem(seed)
        n = positions.shape[0]
        config = LssConfig(min_spacing_m=4.0, restarts=1, max_epochs=400)
        base = lss_localize_robust(edges, n, config=config, initial=initial, rng=0)
        report = evaluate_localization(base.positions, positions, align=True)

        rng = np.random.default_rng(seed + 200)
        perm = rng.permutation(n)
        # Permuting estimate and truth together (relabeling the nodes)
        # leaves every statistic unchanged.
        shuffled = evaluate_localization(
            base.positions[perm], positions[perm], align=True
        )
        assert shuffled.average_error == pytest.approx(report.average_error, rel=1e-9)
        assert shuffled.median_error == pytest.approx(report.median_error, rel=1e-9)
        assert shuffled.max_error == pytest.approx(report.max_error, rel=1e-9)


class TestErrorMetricRigidMotionInvariance:
    @pytest.mark.parametrize("seed", range(6))
    def test_aligned_error_invariant_under_rigid_motion(self, seed):
        """Translating/rotating/reflecting an anchor-free estimate must
        not change the post-alignment error statistics."""
        positions, edges, initial = _lss_problem(seed)
        n = positions.shape[0]
        config = LssConfig(min_spacing_m=4.0, restarts=1, max_epochs=300)
        result = lss_localize_robust(edges, n, config=config, initial=initial, rng=0)
        report = evaluate_localization(result.positions, positions, align=True)

        rng = np.random.default_rng(seed + 300)
        transform = rigid_transform_matrix(
            theta=float(rng.uniform(-np.pi, np.pi)),
            tx=float(rng.uniform(-50, 50)),
            ty=float(rng.uniform(-50, 50)),
            reflect=bool(rng.random() < 0.5),
        )
        moved = apply_transform(result.positions, transform)
        moved_report = evaluate_localization(moved, positions, align=True)
        assert moved_report.average_error == pytest.approx(
            report.average_error, rel=1e-6, abs=1e-9
        )
        assert moved_report.median_error == pytest.approx(
            report.median_error, rel=1e-6, abs=1e-9
        )
        assert moved_report.max_error == pytest.approx(
            report.max_error, rel=1e-6, abs=1e-9
        )
