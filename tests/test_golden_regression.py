"""Golden regression pins for the paper's headline configurations.

These tests freeze the *measured* numbers of the Fig. 14 (sparse field
measurements; paper reports 1.47 anchors/node) and Fig. 16 (synthetic
extension; paper reports 3.84 anchors/node) multilateration
configurations at the default seed, so engine refactors cannot silently
drift accuracy: any change to the solvers that moves localization error
by more than float-reduction noise fails here and must be justified
explicitly by updating the pins.

Anchor counts are exact (integer-counting, solver-independent); error
statistics get a small absolute tolerance to absorb BLAS/platform
reduction differences, far below any algorithmic drift.
"""

import numpy as np
import pytest

from repro.core import evaluate_localization, trimmed_mean_error
from repro.experiments import DEFAULT_SEED, run_experiment
from repro.experiments.common import grid_positions

#: Error-statistic tolerance: generous against platform reduction
#: differences, tight against real accuracy drift (the worst historical
#: solver regressions move these numbers by tenths of meters).
ERROR_TOL = 1e-3


def _report(experiment_id):
    result = run_experiment(experiment_id, DEFAULT_SEED)
    network = result.extras["result"]
    truth = np.asarray(grid_positions(46))
    localized = network.localized & ~network.is_anchor
    report = evaluate_localization(network.positions[localized], truth[localized])
    return result, network, report


class TestFig14Golden:
    """Sparse field measurements, 13 anchors / 46 nodes, seed 2005."""

    def test_average_anchors_per_node(self):
        _, network, _ = _report("fig14")
        # Paper: 1.47.  Our simulated campaign at the default seed
        # yields a denser graph; the pin is the measured value.
        assert network.average_anchors_per_node == pytest.approx(
            2.393939393939394, abs=1e-9
        )

    def test_coverage(self):
        _, network, report = _report("fig14")
        assert report.n_localized == 16
        assert int((~network.is_anchor).sum()) == 33

    def test_error_statistics(self):
        _, _, report = _report("fig14")
        assert report.average_error == pytest.approx(5.272560913031, abs=ERROR_TOL)
        assert report.median_error == pytest.approx(0.913342517555, abs=ERROR_TOL)


class TestFig16Golden:
    """Synthetically extended measurements, same deployment, seed 2005."""

    def test_average_anchors_per_node(self):
        _, network, _ = _report("fig16")
        # Paper: 3.84; the measured value lands on the same density.
        assert network.average_anchors_per_node == pytest.approx(
            3.878787878787879, abs=1e-9
        )

    def test_coverage(self):
        _, _, report = _report("fig16")
        assert report.n_localized == 29

    def test_error_statistics(self):
        _, _, report = _report("fig16")
        assert report.average_error == pytest.approx(3.278568236725, abs=ERROR_TOL)
        assert report.median_error == pytest.approx(0.347675797130, abs=ERROR_TOL)
        assert trimmed_mean_error(report.errors, drop_worst=3) == pytest.approx(
            1.300269178746, abs=ERROR_TOL
        )

    def test_batched_and_scalar_paths_agree_on_golden_config(self):
        """The pinned numbers hold on both engine paths."""
        from repro._validation import ensure_rng
        from repro.core import localize_network
        from repro.deploy import random_anchors
        from repro.experiments.localization_experiments import _grid_setup
        from repro.ranging import augment_with_gaussian_ranges

        positions, _, edges = _grid_setup(DEFAULT_SEED)
        rng = ensure_rng(DEFAULT_SEED)
        n = len(positions)
        anchor_idx = random_anchors(n, 13, rng=rng)
        anchors = {int(i): positions[i] for i in anchor_idx}
        extended = augment_with_gaussian_ranges(
            edges, positions, max_range_m=22.0, sigma_m=0.33, rng=rng
        )
        scalar = localize_network(extended, anchors, n, solver="scalar")
        localized = scalar.localized & ~scalar.is_anchor
        report = evaluate_localization(
            scalar.positions[localized], positions[localized]
        )
        assert report.average_error == pytest.approx(3.278568236725, abs=ERROR_TOL)
