"""Tests for the sliding-DFT software tone detector (Figure 9)."""

import math

import numpy as np
import pytest

from repro.acoustics.signal import synthesize_waveform
from repro.errors import ValidationError
from repro.ranging.dft import SlidingToneFilter, filter_waveform, tone_detect_waveform


def tone(freq_fraction, n=400, amplitude=100.0, phase=0.0):
    """Pure tone at freq = freq_fraction * sampling_rate."""
    t = np.arange(n)
    return amplitude * np.sin(2 * math.pi * freq_fraction * t + phase)


class TestSlidingToneFilter:
    def test_zero_input_zero_output(self):
        filt = SlidingToneFilter()
        for _ in range(100):
            quarter, sixth = filt.update(0.0)
        assert quarter == 0.0 and sixth == 0.0

    def test_quarter_band_responds_to_fs4(self):
        wave = tone(0.25)
        energies = filter_waveform(wave)
        steady = energies[72:]
        assert steady[:, 0].mean() > 10 * max(steady[:, 1].mean(), 1.0)

    def test_sixth_band_responds_to_fs6(self):
        wave = tone(1.0 / 6.0)
        energies = filter_waveform(wave)
        steady = energies[72:]
        assert steady[:, 1].mean() > 10 * max(steady[:, 0].mean(), 1.0)

    def test_dc_rejected(self):
        wave = np.full(300, 50.0)
        energies = filter_waveform(wave)
        steady = energies[72:]
        assert steady.max() < 1e-6

    def test_off_band_tone_attenuated(self):
        on_band = filter_waveform(tone(0.25))[72:, 0].mean()
        off_band = filter_waveform(tone(0.05))[72:, 0].mean()
        assert on_band > 10 * off_band

    def test_sliding_window_matches_direct_dft(self):
        # After the window fills, the accumulators equal the windowed
        # sums of sample * coefficient for the last 36 samples.
        rng = np.random.default_rng(0)
        wave = rng.normal(0, 100, 200)
        filt = SlidingToneFilter()
        for i, sample in enumerate(wave):
            quarter, sixth = filt.update(sample)
        # Direct computation over the final 36 samples with the same
        # coefficient schedule (phase = global index mod 4 / mod 6).
        start = len(wave) - 36
        re4 = im4 = 0.0
        for idx in range(start, len(wave)):
            phase = idx % 4
            if phase == 0:
                re4 += wave[idx]
            elif phase == 1:
                im4 += wave[idx]
            elif phase == 2:
                re4 -= wave[idx]
            else:
                im4 -= wave[idx]
        assert quarter == pytest.approx(re4**2 + im4**2, rel=1e-9)

    def test_reset(self):
        filt = SlidingToneFilter()
        for sample in tone(0.25, n=50):
            filt.update(sample)
        filt.reset()
        assert filt.update(0.0) == (0.0, 0.0)


class TestFilterWaveform:
    def test_shape(self):
        out = filter_waveform(np.zeros(100))
        assert out.shape == (100, 2)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            filter_waveform(np.zeros((10, 2)))


class TestToneDetectWaveform:
    def test_clean_chirps_detected(self):
        wave = synthesize_waveform(num_chirps=4, frequency_hz=4000.0)
        onsets, energies = tone_detect_waveform(wave)
        assert len(onsets) == 4

    def test_noisy_detection_majority(self):
        wave = synthesize_waveform(
            num_chirps=4, frequency_hz=4000.0, noise_std=300.0, rng=5
        )
        onsets, _ = tone_detect_waveform(wave)
        assert len(onsets) >= 3

    def test_silence_no_detection(self):
        rng = np.random.default_rng(2)
        wave = rng.normal(0, 10.0, 2000)
        onsets, _ = tone_detect_waveform(wave, threshold_factor=12.0)
        # Pure noise: sporadic energy spikes may cross the threshold,
        # but real chirp-like detections should be rare.
        assert len(onsets) <= 4

    def test_band_selection(self):
        # A 4 kHz tone at 16 kHz sampling sits in band 0 (fs/4), not
        # band 1 (fs/6 ~ 2.67 kHz).
        wave = synthesize_waveform(num_chirps=3, frequency_hz=4000.0)
        onsets0, _ = tone_detect_waveform(wave, band=0)
        assert len(onsets0) == 3

    def test_invalid_band(self):
        with pytest.raises(ValidationError):
            tone_detect_waveform(np.zeros(100), band=2)

    def test_invalid_threshold(self):
        with pytest.raises(ValidationError):
            tone_detect_waveform(np.zeros(100), threshold_factor=0.0)

    def test_min_gap_merges_adjacent(self):
        wave = synthesize_waveform(num_chirps=2, frequency_hz=4000.0)
        few, _ = tone_detect_waveform(wave, min_gap=10_000)
        assert len(few) == 1
