"""The invariant linter: every rule fires on a minimal bad fixture and
stays quiet on the matching good one, discharges (suppressions,
allowlist) are visible rather than silent, the real ``repro`` tree
lints clean, and the JSON report round-trips for downstream tooling.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.errors import ValidationError
from repro.lint import (
    DEFAULT_ALLOWLIST,
    LINT_SCHEMA_VERSION,
    RULES,
    AllowEntry,
    LintConfig,
    LintReport,
    lint_paths,
    lint_source,
    scope_matches,
    suppressions_for,
)

#: Config with no allowlist: fixture tests must see raw rule behavior.
STRICT = LintConfig(allowlist=())


def codes(report):
    return [finding.code for finding in report.findings]


def check(source, relpath="module.py", config=STRICT):
    return lint_source(source, relpath, config=config)


class TestRegistry:
    def test_ships_the_eight_documented_rules(self):
        assert sorted(RULES) == [f"RPL00{i}" for i in range(1, 9)]

    def test_every_rule_has_name_and_summary(self):
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.name
            assert rule.summary


class TestRPL001GlobalRNG:
    def test_flags_np_random_module_function(self):
        bad = "import numpy as np\nx = np.random.normal(0.0, 1.0)\n"
        assert codes(check(bad)) == ["RPL001"]

    def test_flags_np_random_seed(self):
        bad = "import numpy as np\nnp.random.seed(7)\n"
        assert codes(check(bad)) == ["RPL001"]

    def test_flags_stdlib_random_import(self):
        assert codes(check("import random\n")) == ["RPL001"]
        assert codes(check("from random import shuffle\n")) == ["RPL001"]

    def test_flags_from_numpy_random_import_of_banned_name(self):
        bad = "from numpy.random import normal\n"
        assert codes(check(bad)) == ["RPL001"]

    def test_allows_generator_seedsequence_surface(self):
        good = (
            "import numpy as np\n"
            "from numpy.random import SeedSequence, default_rng\n"
            "rng = np.random.default_rng(np.random.SeedSequence(7))\n"
            "gen = np.random.Generator(np.random.PCG64(3))\n"
        )
        assert codes(check(good)) == []

    def test_resolves_import_alias(self):
        bad = "import numpy\nx = numpy.random.uniform()\n"
        assert codes(check(bad)) == ["RPL001"]


class TestRPL002XpKernelPurity:
    RELPATH = "engine/xp_kernels.py"

    def test_flags_numpy_import_in_kernels_module(self):
        assert codes(check("import numpy as np\n", self.RELPATH)) == ["RPL002"]
        assert codes(check("from numpy import hypot\n", self.RELPATH)) == ["RPL002"]

    def test_flags_inplace_augassign_on_xp_array(self):
        bad = (
            "def kernel(xp, a):\n"
            "    pos = xp.zeros((4, 2))\n"
            "    pos += a\n"
            "    return pos\n"
        )
        assert codes(check(bad, self.RELPATH)) == ["RPL002"]

    def test_flags_subscript_assignment_on_xp_array(self):
        bad = (
            "def kernel(xp):\n"
            "    pos = xp.zeros((4, 2))\n"
            "    pos[0] = 1.0\n"
            "    return pos\n"
        )
        assert codes(check(bad, self.RELPATH)) == ["RPL002"]

    def test_taint_propagates_through_rebinding(self):
        bad = (
            "def kernel(xp):\n"
            "    a = xp.ones((3,))\n"
            "    b = a * 2.0\n"
            "    b += 1.0\n"
            "    return b\n"
        )
        assert codes(check(bad, self.RELPATH)) == ["RPL002"]

    def test_host_side_dict_and_scalar_work_is_clean(self):
        good = (
            "def kernel(xp, backend):\n"
            "    state = {}\n"
            "    state['ci'] = backend.asarray([1.0])\n"
            "    host = backend.to_host(state['ci'])\n"
            "    host += 1.0\n"
            "    count = 0\n"
            "    count += 1\n"
            "    return state, host, count\n"
        )
        assert codes(check(good, self.RELPATH)) == []

    def test_rule_is_scoped_to_the_kernels_module(self):
        source = "import numpy as np\n"
        assert codes(check(source, "engine/batch.py")) == []


class TestRPL003WallClockEntropy:
    @pytest.mark.parametrize(
        "call",
        [
            "import time\nt = time.time()\n",
            "import time\nt = time.time_ns()\n",
            "import datetime\nd = datetime.datetime.now()\n",
            "import datetime\nd = datetime.date.today()\n",
            "import uuid\nu = uuid.uuid4()\n",
            "import os\nb = os.urandom(8)\n",
            "import secrets\ns = secrets.token_hex(4)\n",
        ],
    )
    def test_flags_wall_clock_and_entropy_calls(self, call):
        assert codes(check(call)) == ["RPL003"]

    def test_perf_counter_durations_stay_legal(self):
        good = (
            "import time\n"
            "t0 = time.perf_counter()\n"
            "t1 = time.process_time()\n"
        )
        assert codes(check(good)) == []

    def test_resolves_from_import_alias(self):
        bad = "from time import time\nt = time()\n"
        assert codes(check(bad)) == ["RPL003"]


class TestRPL004SortedFsIteration:
    def test_flags_unsorted_iterdir_in_store(self):
        bad = (
            "from pathlib import Path\n"
            "def walk(root: Path):\n"
            "    for p in root.iterdir():\n"
            "        yield p\n"
        )
        assert codes(check(bad, "store/backends.py")) == ["RPL004"]

    @pytest.mark.parametrize("call", ["root.glob('*.json')", "root.rglob('*')"])
    def test_flags_unsorted_glob_variants(self, call):
        bad = f"def walk(root):\n    return list({call})\n"
        assert codes(check(bad, "store/x.py")) == ["RPL004"]

    def test_flags_os_listdir(self):
        bad = "import os\nnames = os.listdir('.')\n"
        assert codes(check(bad, "store/x.py")) == ["RPL004"]

    def test_sorted_wrapped_iteration_is_clean(self):
        good = (
            "import os\n"
            "def walk(root):\n"
            "    a = sorted(root.iterdir())\n"
            "    b = sorted(root.glob('*.json'))\n"
            "    c = sorted(os.listdir('.'))\n"
            "    return a, b, c\n"
        )
        assert codes(check(good, "store/x.py")) == []

    def test_rule_is_scoped_to_store(self):
        assert codes(check("x = list(root.iterdir())\n", "engine/x.py")) == []


class TestRPL005PicklablePoolCallables:
    def test_flags_lambda_handed_to_pool_map(self):
        bad = (
            "def run(pool, items):\n"
            "    return pool.map(lambda x: x + 1, items)\n"
        )
        assert codes(check(bad)) == ["RPL005"]

    def test_flags_lambda_bound_name(self):
        bad = (
            "f = lambda x: x + 1\n"
            "def run(pool, items):\n"
            "    return pool.imap(f, items)\n"
        )
        assert codes(check(bad)) == ["RPL005"]

    def test_flags_nested_def_handed_to_dispatch(self):
        bad = (
            "def run(spec):\n"
            "    def trial(i):\n"
            "        return i\n"
            "    return run_monte_carlo(trial, spec)\n"
        )
        assert codes(check(bad)) == ["RPL005"]

    def test_flags_lambda_trial_fn_keyword(self):
        bad = "r = run_adaptive(spec, trial_fn=lambda i: i)\n"
        assert codes(check(bad)) == ["RPL005"]

    def test_module_level_function_is_clean(self):
        good = (
            "def trial(i):\n"
            "    return i\n"
            "def run(pool, items):\n"
            "    return pool.map(trial, items)\n"
        )
        assert codes(check(good)) == []

    def test_ifexp_selecting_module_level_functions_is_clean(self):
        # The scheduler's `mapper = _traced if traced else _plain` idiom.
        good = (
            "def _plain(i):\n"
            "    return i\n"
            "def _traced(i):\n"
            "    return i\n"
            "def run(pool, items, traced):\n"
            "    mapper = _traced if traced else _plain\n"
            "    return pool.imap(mapper, items)\n"
        )
        assert codes(check(good)) == []


class TestRPL006HashExclusionRegistry:
    GOOD = (
        "import dataclasses\n"
        "HASH_EXCLUDED_FIELDS = ('scenario_id', 'solver.array_backend')\n"
        "class ScenarioSpec:\n"
        "    def canonical(self):\n"
        "        payload = dataclasses.asdict(self)\n"
        "        payload.pop('scenario_id')\n"
        "        payload['solver'].pop('array_backend')\n"
        "        return payload\n"
    )

    def test_matching_registry_is_clean(self):
        assert codes(check(self.GOOD, "scenarios/spec.py")) == []

    def test_flags_missing_registry(self):
        bad = self.GOOD.replace(
            "HASH_EXCLUDED_FIELDS = ('scenario_id', 'solver.array_backend')\n", ""
        )
        assert codes(check(bad, "scenarios/spec.py")) == ["RPL006"]

    def test_flags_undeclared_pop(self):
        bad = self.GOOD.replace(
            "HASH_EXCLUDED_FIELDS = ('scenario_id', 'solver.array_backend')",
            "HASH_EXCLUDED_FIELDS = ('scenario_id',)",
        )
        report = check(bad, "scenarios/spec.py")
        assert codes(report) == ["RPL006"]
        assert "solver.array_backend" in report.findings[0].message

    def test_flags_stale_registry_entry(self):
        bad = self.GOOD.replace(
            "        payload['solver'].pop('array_backend')\n", ""
        )
        report = check(bad, "scenarios/spec.py")
        assert codes(report) == ["RPL006"]
        assert "never pops" in report.findings[0].message

    def test_flags_non_literal_pop(self):
        bad = self.GOOD.replace(
            "payload.pop('scenario_id')", "payload.pop(FIELD)"
        )
        report = check(bad, "scenarios/spec.py")
        assert "RPL006" in codes(report)

    def test_other_classes_are_ignored(self):
        other = (
            "class Config:\n"
            "    def canonical(self):\n"
            "        d = {}\n"
            "        d.pop('x')\n"
            "        return d\n"
        )
        assert codes(check(other, "scenarios/spec.py")) == []


class TestRPL007AtomicStoreWrites:
    def test_flags_direct_write_mode_open(self):
        bad = "def put(path, data):\n    open(path, 'w').write(data)\n"
        assert codes(check(bad, "store/x.py")) == ["RPL007"]

    def test_flags_path_write_bytes(self):
        bad = "def put(path, data):\n    path.write_bytes(data)\n"
        assert codes(check(bad, "store/x.py")) == ["RPL007"]

    def test_flags_path_open_write_mode(self):
        bad = "def put(path, data):\n    path.open('w').write(data)\n"
        assert codes(check(bad, "store/x.py")) == ["RPL007"]

    def test_staging_target_then_replace_is_clean(self):
        good = (
            "import os\n"
            "def put(path, tmp, data):\n"
            "    tmp.write_bytes(data)\n"
            "    os.replace(tmp, path)\n"
        )
        assert codes(check(good, "store/x.py")) == []

    def test_backend_dispatch_seam_is_clean(self):
        good = (
            "def put(self, key, data):\n"
            "    return self.backend.write_bytes(key, data)\n"
        )
        assert codes(check(good, "store/x.py")) == []

    def test_read_mode_open_is_clean(self):
        good = "def get(path):\n    return open(path).read()\n"
        assert codes(check(good, "store/x.py")) == []

    def test_rule_is_scoped_to_store(self):
        source = "def put(path, data):\n    path.write_bytes(data)\n"
        assert codes(check(source, "telemetry/x.py")) == []


class TestRPL008EagerTelemetryFormat:
    def test_flags_fstring_metric_name(self):
        bad = (
            "from repro import telemetry\n"
            "def solve(name):\n"
            "    telemetry.count(f'engine.{name}_solves', 1)\n"
        )
        assert codes(check(bad, "engine/batch.py")) == ["RPL008"]

    def test_flags_format_call_and_percent(self):
        bad = (
            "from repro import telemetry\n"
            "def solve(name):\n"
            "    telemetry.observe('engine.{}'.format(name), 1.0)\n"
            "    telemetry.count('engine.%s' % name, 1)\n"
        )
        assert codes(check(bad, "engine/x.py")) == ["RPL008", "RPL008"]

    def test_constant_and_precomputed_names_are_clean(self):
        good = (
            "from repro import telemetry\n"
            "def solve(names):\n"
            "    telemetry.count('engine.batch.gd_solves', 1)\n"
            "    solves, _ = names\n"
            "    telemetry.count(solves, 1)\n"
        )
        assert codes(check(good, "engine/batch.py")) == []

    def test_rule_is_scoped_to_engine(self):
        source = (
            "from repro import telemetry\n"
            "def f(kind):\n"
            "    telemetry.count(f'store.{kind}.hit', 1)\n"
        )
        assert codes(check(source, "store/result_store.py")) == []


class TestSuppressionsAndAllowlist:
    def test_inline_suppression_moves_finding_to_suppressed(self):
        source = "import random  # repro-lint: disable=RPL001\n"
        report = check(source)
        assert report.clean
        assert [finding.code for finding in report.suppressed] == ["RPL001"]

    def test_suppression_is_line_scoped(self):
        source = (
            "import random  # repro-lint: disable=RPL001\n"
            "from random import shuffle\n"
        )
        report = check(source)
        assert codes(report) == ["RPL001"]
        assert report.findings[0].line == 2

    def test_suppression_comment_parses_multiple_codes(self):
        got = suppressions_for("x = 1  # repro-lint: disable=RPL001, RPL007\n")
        assert got == {1: {"RPL001", "RPL007"}}

    def test_suppressing_one_code_leaves_others(self):
        source = "import time\nt = time.time()  # repro-lint: disable=RPL001\n"
        assert codes(check(source)) == ["RPL003"]

    def test_allowlist_entry_discharges_with_justification(self):
        config = LintConfig(
            allowlist=(
                AllowEntry("RPL003", "store/gc.py", "grace window uses real clock"),
            )
        )
        source = "import time\nt = time.time()\n"
        report = check(source, "store/gc.py", config=config)
        assert report.clean
        assert [finding.code for finding in report.allowed] == ["RPL003"]
        assert report.allowed[0].justification == "grace window uses real clock"

    def test_allowlist_is_scoped_by_path(self):
        config = LintConfig(
            allowlist=(AllowEntry("RPL003", "store/gc.py", "clock"),)
        )
        source = "import time\nt = time.time()\n"
        assert codes(check(source, "store/other.py", config=config)) == ["RPL003"]

    def test_allowlist_is_scoped_by_code(self):
        config = LintConfig(
            allowlist=(AllowEntry("RPL003", "store/gc.py", "clock"),)
        )
        source = "import random\n"
        assert codes(check(source, "store/gc.py", config=config)) == ["RPL001"]

    def test_directory_scope_matches_anywhere_in_path(self):
        assert scope_matches("store/", "store/gc.py")
        assert scope_matches("store/", "src/repro/store/gc.py")
        assert not scope_matches("store/", "engine/store_adjacent.py")

    def test_file_scope_is_a_suffix_match(self):
        assert scope_matches("telemetry/manifest.py", "telemetry/manifest.py")
        assert scope_matches(
            "telemetry/manifest.py", "src/repro/telemetry/manifest.py"
        )
        assert not scope_matches("telemetry/manifest.py", "store/manifest.py")

    def test_every_default_allowlist_entry_has_a_justification(self):
        for entry in DEFAULT_ALLOWLIST:
            assert entry.justification, f"{entry.code} {entry.scope} lacks a reason"


class TestRealTree:
    def test_the_shipped_repro_tree_lints_clean(self):
        package_dir = Path(repro.__file__).resolve().parent
        report = lint_paths([package_dir])
        assert report.clean, "\n".join(
            finding.render() for finding in report.findings
        )
        assert report.files_scanned > 50

    def test_the_tree_report_is_deterministic(self):
        package_dir = Path(repro.__file__).resolve().parent
        assert lint_paths([package_dir]) == lint_paths([package_dir])

    def test_known_discharges_are_visible_not_silent(self):
        package_dir = Path(repro.__file__).resolve().parent
        report = lint_paths([package_dir])
        suppressed = {(f.path, f.code) for f in report.suppressed}
        assert ("engine/xp_kernels.py", "RPL002") in suppressed
        allowed = {(f.path, f.code) for f in report.allowed}
        assert ("telemetry/manifest.py", "RPL003") in allowed
        assert ("store/gc.py", "RPL003") in allowed
        for finding in report.allowed:
            assert finding.justification

    def test_syntax_error_raises_validation_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n", encoding="utf-8")
        with pytest.raises(ValidationError, match="cannot lint"):
            lint_paths([bad])

    def test_missing_path_raises_validation_error(self, tmp_path):
        with pytest.raises(ValidationError, match="no such file"):
            lint_paths([tmp_path / "nope.py"])


class TestJsonReport:
    def test_json_report_round_trips(self):
        source = (
            "import random\n"
            "import time  # repro-lint: disable=RPL001\n"
            "t = time.time()\n"
        )
        config = LintConfig(
            allowlist=(AllowEntry("RPL003", "module.py", "declared stamp"),)
        )
        report = check(source, config=config)
        parsed = LintReport.from_json(report.to_json())
        assert parsed == report

    def test_json_carries_schema_and_counts(self):
        report = check("import random\n")
        payload = json.loads(report.to_json())
        assert payload["schema"] == LINT_SCHEMA_VERSION
        assert payload["counts"] == {"findings": 1, "suppressed": 0, "allowed": 0}
        assert payload["files_scanned"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "col", "code", "message"}

    def test_unknown_schema_version_is_rejected(self):
        payload = json.loads(check("x = 1\n").to_json())
        payload["schema"] = LINT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="unsupported lint report schema"):
            LintReport.from_json(json.dumps(payload))


class TestCli:
    def run_cli(self, argv, capsys):
        from repro.__main__ import main

        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_lint_default_tree_exits_zero(self, capsys):
        code, out, _ = self.run_cli(["lint"], capsys)
        assert code == 0
        assert "repro-lint: 0 finding(s)" in out
        assert "allowlisted" in out

    def test_lint_json_is_parseable_and_clean(self, capsys):
        code, out, _ = self.run_cli(["lint", "--json"], capsys)
        assert code == 0
        report = LintReport.from_json(out)
        assert report.clean
        assert report.files_scanned > 50

    def test_lint_finds_violations_in_explicit_path(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n", encoding="utf-8")
        code, out, _ = self.run_cli(["lint", str(bad)], capsys)
        assert code == 1
        assert "RPL001" in out

    def test_lint_syntax_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n", encoding="utf-8")
        code, _, err = self.run_cli(["lint", str(bad)], capsys)
        assert code == 2
        assert "cannot lint" in err

    def test_list_rules_prints_registry(self, capsys):
        code, out, _ = self.run_cli(["lint", "--list-rules"], capsys)
        assert code == 0
        for rule_code in RULES:
            assert rule_code in out
