"""Seeded equivalence tests: batched engine vs scalar reference paths.

The engine's parity contract (see ``repro/engine/__init__.py``) says a
batched solve and the scalar reference solve of the same problem follow
identical per-problem update rules, so their results may differ only by
floating-point reduction error.  These tests pin that contract on
fixed-seed networks across grid, random, and sparse layouts for
multilateration (``localize_network``), LSS (``lss_localize`` /
``lss_localize_multistart``), and the APS baselines.
"""

import numpy as np
import pytest

from repro.core import LssConfig, dv_distance_localize, dv_hop_localize, localize_network, lss_localize
from repro.core.multilateration import intersection_consistency_filter
from repro.deploy import random_anchors, square_grid, uniform_random_layout
from repro.engine.batch import (
    batch_gradient_descent,
    batch_lss_error,
    batch_lss_gradient,
    consistency_filter_fast,
    lss_localize_multistart,
    solve_multilateration_batch,
)
from repro.errors import ValidationError
from repro.ranging import gaussian_ranges


def _layout(kind: str, rng):
    """Fixed-seed network layouts spanning the paper's regimes."""
    if kind == "grid":
        positions = square_grid(6, 6, spacing_m=10.0)
        max_range = 16.0
    elif kind == "random":
        positions = uniform_random_layout(
            32, width_m=60.0, height_m=60.0, min_separation_m=4.0, rng=rng
        )
        max_range = 22.0
    elif kind == "sparse":
        positions = uniform_random_layout(
            30, width_m=70.0, height_m=70.0, min_separation_m=5.0, rng=rng
        )
        max_range = 15.0
    else:  # pragma: no cover - test-internal
        raise AssertionError(kind)
    ranges = gaussian_ranges(positions, max_range_m=max_range, sigma_m=0.33, rng=rng)
    return positions, ranges


LAYOUTS = ["grid", "random", "sparse"]


class TestLocalizeNetworkParity:
    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_batched_matches_scalar(self, layout, seed):
        rng = np.random.default_rng(seed)
        positions, ranges = _layout(layout, rng)
        n = len(positions)
        anchor_idx = random_anchors(n, max(3, n // 4), rng=rng)
        anchors = {int(i): positions[i] for i in anchor_idx}
        batched = localize_network(ranges, anchors, n)
        scalar = localize_network(ranges, anchors, n, solver="scalar")
        assert np.array_equal(batched.localized, scalar.localized)
        assert np.array_equal(batched.anchors_per_node, scalar.anchors_per_node)
        mask = batched.localized & ~batched.is_anchor
        assert batched.positions[mask] == pytest.approx(
            scalar.positions[mask], abs=1e-5
        )

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_progressive_coverage_matches_scalar(self, layout):
        # Jacobi (batched, round-wise) vs Gauss-Seidel (scalar, in-round)
        # promotion: intermediate estimates legitimately differ, but both
        # must extend the plain coverage and land on (nearly) the same
        # localized set within the round budget.
        rng = np.random.default_rng(3)
        positions, ranges = _layout(layout, rng)
        n = len(positions)
        anchor_idx = random_anchors(n, 5, rng=rng)
        anchors = {int(i): positions[i] for i in anchor_idx}
        plain = localize_network(ranges, anchors, n)
        batched = localize_network(ranges, anchors, n, progressive=True)
        scalar = localize_network(ranges, anchors, n, progressive=True, solver="scalar")
        assert np.all(batched.localized[plain.localized])
        assert np.all(scalar.localized[plain.localized])
        assert int((batched.localized != scalar.localized).sum()) <= 2

    def test_unknown_solver_rejected(self):
        rng = np.random.default_rng(0)
        positions, ranges = _layout("grid", rng)
        with pytest.raises(ValidationError):
            localize_network(ranges, {0: positions[0]}, len(positions), solver="sgd")

    @pytest.mark.parametrize("solver", ["gradient", "scalar", "lm"])
    def test_min_anchors_below_three_rejected(self, solver):
        # The batched path must enforce the same planar-solvability
        # floor as the scalar path (a 2-anchor fix is ambiguous).
        rng = np.random.default_rng(0)
        positions, ranges = _layout("grid", rng)
        with pytest.raises(ValidationError):
            localize_network(
                ranges, {0: positions[0]}, len(positions),
                solver=solver, min_anchors=2,
            )


class TestBatchKernelParity:
    def test_batch_descent_matches_scalar_solver(self):
        from repro.core.multilateration import _gradient_descent_solve

        rng = np.random.default_rng(5)
        n_problems, max_k = 12, 7
        anchor_counts = rng.integers(3, max_k + 1, size=n_problems)
        anchors = np.zeros((n_problems, max_k, 2))
        dists = np.zeros((n_problems, max_k))
        weights = np.zeros((n_problems, max_k))
        valid = np.zeros((n_problems, max_k), dtype=bool)
        initial = np.zeros((n_problems, 2))
        expected = []
        for b in range(n_problems):
            k = int(anchor_counts[b])
            a = rng.uniform(0, 40, (k, 2))
            target = rng.uniform(5, 35, 2)
            d = np.hypot(*(a - target).T) + rng.normal(0, 0.2, k)
            d = np.abs(d)
            w = rng.uniform(0.5, 1.5, k)
            start = a.mean(axis=0)
            anchors[b, :k] = a
            dists[b, :k] = d
            weights[b, :k] = w
            valid[b, :k] = True
            initial[b] = start
            expected.append(_gradient_descent_solve(a, d, w, start))
        pos, res = batch_gradient_descent(anchors, dists, weights, valid, initial)
        for b in range(n_problems):
            assert pos[b] == pytest.approx(expected[b][0], abs=1e-6)
            assert res[b] == pytest.approx(expected[b][1], rel=1e-6, abs=1e-9)

    def test_solve_batch_flags_degenerate_problems(self):
        line = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]])
        good = np.array([[0.0, 0.0], [20.0, 0.0], [0.0, 20.0], [20.0, 20.0]])
        target = np.array([7.0, 11.0])
        good_d = np.hypot(*(good - target).T)
        pos, solved, res = solve_multilateration_batch(
            [line, good],
            [np.array([5.0, 5.0, 15.0]), good_d],
            [np.ones(3), np.ones(4)],
            consistency_check=False,
        )
        assert not solved[0] and np.isnan(pos[0]).all()
        assert solved[1] and pos[1] == pytest.approx(target, abs=1e-4)
        assert np.isfinite(res[1])


class TestConsistencyFilterParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_fast_filter_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(3, 8))
        anchors = rng.uniform(0, 30, (k, 2))
        target = rng.uniform(5, 25, 2)
        dists = np.hypot(*(anchors - target).T) + rng.normal(0, 0.3, k)
        dists = np.abs(dists)
        if rng.random() < 0.5:
            dists[int(rng.integers(k))] *= 1.5  # plant an outlier range
        reference = intersection_consistency_filter(anchors, dists)
        fast = consistency_filter_fast(anchors, dists)
        assert list(fast) == list(reference)


class TestLssParity:
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_gd_backend_matches_gd_scalar(self, layout):
        rng = np.random.default_rng(2)
        positions, ranges = _layout(layout, rng)
        n = len(positions)
        batched_cfg = LssConfig(min_spacing_m=8.0, restarts=2, max_epochs=400)
        scalar_cfg = LssConfig(
            min_spacing_m=8.0, restarts=2, max_epochs=400, backend="gd-scalar"
        )
        batched = lss_localize(ranges, n, config=batched_cfg, rng=11)
        scalar = lss_localize(ranges, n, config=scalar_cfg, rng=11)
        assert batched.error == pytest.approx(scalar.error, rel=1e-9)
        assert batched.positions == pytest.approx(scalar.positions, abs=1e-7)
        assert batched.epochs_run == scalar.epochs_run
        assert np.asarray(batched.error_trace) == pytest.approx(
            np.asarray(scalar.error_trace), rel=1e-9
        )

    def test_batch_objective_and_gradient_match_scalar(self):
        from repro.core.lss import _constraint_pairs, lss_error, lss_gradient

        rng = np.random.default_rng(9)
        positions, ranges = _layout("random", rng)
        n = len(positions)
        edges = ranges.to_edge_list()
        pairs = _constraint_pairs(n, edges.pairs)
        configs = rng.uniform(0, 60, (4, n, 2))
        errors = batch_lss_error(
            configs, edges, constraint_pairs=pairs, min_spacing_m=6.0
        )
        grads = batch_lss_gradient(
            configs, edges, constraint_pairs=pairs, min_spacing_m=6.0
        )
        for b in range(4):
            assert errors[b] == pytest.approx(
                lss_error(configs[b], edges, constraint_pairs=pairs, min_spacing_m=6.0),
                rel=1e-12,
            )
            assert grads[b] == pytest.approx(
                lss_gradient(
                    configs[b], edges, constraint_pairs=pairs, min_spacing_m=6.0
                ),
                rel=1e-9,
                abs=1e-9,
            )

    def test_multistart_matches_sequential_runs(self):
        rng = np.random.default_rng(4)
        positions, ranges = _layout("grid", rng)
        n = len(positions)
        config = LssConfig(min_spacing_m=8.0, restarts=3, max_epochs=300)
        seeds = [21, 22, 23]
        stacked = lss_localize_multistart(ranges, n, config=config, seeds=seeds)
        for result, seed in zip(stacked, seeds):
            reference = lss_localize(ranges, n, config=config, rng=seed)
            assert result.error == pytest.approx(reference.error, rel=1e-9)
            assert result.positions == pytest.approx(reference.positions, abs=1e-6)
            assert result.round_boundaries == reference.round_boundaries
            assert result.epochs_run == reference.epochs_run

    def test_multistart_validates_inputs(self):
        rng = np.random.default_rng(4)
        positions, ranges = _layout("grid", rng)
        n = len(positions)
        with pytest.raises(ValidationError):
            lss_localize_multistart(ranges, n, seeds=[])
        with pytest.raises(ValidationError):
            lss_localize_multistart(
                ranges, n, config=LssConfig(backend="lbfgs"), seeds=[1]
            )

    def test_multistart_respects_pins(self):
        rng = np.random.default_rng(4)
        positions, ranges = _layout("grid", rng)
        n = len(positions)
        config = LssConfig(min_spacing_m=8.0, restarts=2, max_epochs=200)
        fixed = {0: positions[0], 1: positions[1]}
        results = lss_localize_multistart(
            ranges, n, config=config, seeds=[5, 6], fixed_positions=fixed
        )
        for result in results:
            assert np.allclose(result.positions[0], positions[0])
            assert np.allclose(result.positions[1], positions[1])


class TestApsParity:
    @pytest.mark.parametrize("localizer", [dv_hop_localize, dv_distance_localize])
    @pytest.mark.parametrize("layout", ["grid", "random"])
    def test_batched_gradient_matches_scalar(self, localizer, layout):
        rng = np.random.default_rng(13)
        positions, ranges = _layout(layout, rng)
        n = len(positions)
        anchor_idx = random_anchors(n, 6, rng=rng)
        anchors = {int(i): positions[i] for i in anchor_idx}
        batched = localizer(ranges, anchors, n, solver="gradient")
        scalar = localizer(ranges, anchors, n, solver="scalar")
        assert np.array_equal(batched.localized, scalar.localized)
        assert np.array_equal(batched.anchors_per_node, scalar.anchors_per_node)
        mask = batched.localized & ~batched.is_anchor
        assert batched.positions[mask] == pytest.approx(
            scalar.positions[mask], abs=1e-5
        )

    def test_unknown_solver_rejected(self):
        rng = np.random.default_rng(13)
        positions, ranges = _layout("grid", rng)
        n = len(positions)
        anchor_idx = random_anchors(n, 6, rng=rng)
        anchors = {int(i): positions[i] for i in anchor_idx}
        with pytest.raises(ValidationError):
            dv_hop_localize(ranges, anchors, n, solver="sgd")

    def test_min_anchors_below_three_rejected(self):
        rng = np.random.default_rng(13)
        positions, ranges = _layout("grid", rng)
        n = len(positions)
        anchor_idx = random_anchors(n, 6, rng=rng)
        anchors = {int(i): positions[i] for i in anchor_idx}
        with pytest.raises(ValidationError):
            dv_hop_localize(ranges, anchors, n, min_anchors=2)


class TestPaddedLssKernels:
    """Heterogeneous padded kernels vs the scalar LSS reference."""

    @staticmethod
    def _random_problems(rng, n_problems=5):
        from repro.core.measurements import EdgeList

        problems = []
        for _ in range(n_problems):
            n = int(rng.integers(4, 9))
            positions = rng.uniform(0.0, 20.0, size=(n, 2))
            iu = np.triu_indices(n, k=1)
            pairs = np.stack(iu, axis=1)
            keep = rng.random(pairs.shape[0]) < 0.7
            if keep.sum() < 3:
                keep[:3] = True
            pairs = pairs[keep]
            diff = positions[pairs[:, 0]] - positions[pairs[:, 1]]
            dists = np.hypot(diff[:, 0], diff[:, 1]) + rng.normal(0, 0.1, len(pairs))
            weights = rng.choice([0.5, 1.0], size=len(pairs))
            edges = EdgeList(
                pairs=pairs.astype(np.int64), distances=dists, weights=weights
            )
            problems.append((n, edges, rng.uniform(0.0, 20.0, size=(n, 2))))
        return problems

    @staticmethod
    def _pad(problems, min_spacing_m=None):
        from repro.core.lss import _constraint_pairs

        B = len(problems)
        N = max(p[0] for p in problems)
        E = max(len(p[1]) for p in problems)
        pts = np.zeros((B, N, 2))
        pairs = np.zeros((B, E, 2), dtype=np.int64)
        dists = np.zeros((B, E))
        weights = np.zeros((B, E))
        cpairs = cvalid = None
        if min_spacing_m is not None:
            constraints = [_constraint_pairs(n, e.pairs) for n, e, _ in problems]
            C = max(c.shape[0] for c in constraints)
            cpairs = np.zeros((B, C, 2), dtype=np.int64)
            cvalid = np.zeros((B, C), dtype=bool)
            for b, c in enumerate(constraints):
                cpairs[b, : c.shape[0]] = c
                cvalid[b, : c.shape[0]] = True
        for b, (n, edges, initial) in enumerate(problems):
            pts[b, :n] = initial
            pairs[b, : len(edges)] = edges.pairs
            dists[b, : len(edges)] = edges.distances
            weights[b, : len(edges)] = edges.weights
        return pts, pairs, dists, weights, cpairs, cvalid

    @pytest.mark.parametrize("min_spacing_m", [None, 6.0])
    def test_padded_error_and_gradient_match_scalar(self, min_spacing_m):
        from repro.core.lss import _constraint_pairs, lss_error, lss_gradient
        from repro.engine.batch import (
            batch_lss_error_padded,
            batch_lss_gradient_padded,
        )

        rng = np.random.default_rng(11)
        problems = self._random_problems(rng)
        pts, pairs, dists, weights, cpairs, cvalid = self._pad(
            problems, min_spacing_m
        )
        errors = batch_lss_error_padded(
            pts, pairs, dists, weights,
            constraint_pairs=cpairs, constraint_valid=cvalid,
            min_spacing_m=min_spacing_m,
        )
        grads = batch_lss_gradient_padded(
            pts, pairs, dists, weights,
            constraint_pairs=cpairs, constraint_valid=cvalid,
            min_spacing_m=min_spacing_m,
        )
        for b, (n, edges, initial) in enumerate(problems):
            constraints = (
                _constraint_pairs(n, edges.pairs) if min_spacing_m is not None else None
            )
            expected_error = lss_error(
                initial, edges,
                constraint_pairs=constraints, min_spacing_m=min_spacing_m,
            )
            expected_grad = lss_gradient(
                initial, edges,
                constraint_pairs=constraints, min_spacing_m=min_spacing_m,
            )
            assert errors[b] == pytest.approx(expected_error, rel=1e-12)
            np.testing.assert_allclose(grads[b, :n], expected_grad, atol=1e-9)
            # Padded node rows beyond each problem feel zero force.
            assert np.all(grads[b, n:] == 0.0)

    def test_padded_descend_matches_batch_of_one(self):
        from repro.engine.batch import batch_lss_descend, batch_lss_descend_padded

        rng = np.random.default_rng(5)
        problems = self._random_problems(rng, n_problems=3)
        pts, pairs, dists, weights, _, _ = self._pad(problems)
        out, errors, converged = batch_lss_descend_padded(
            pts, pairs, dists, weights, step_size=0.02, max_epochs=300,
            tolerance=1e-7,
        )
        for b, (n, edges, initial) in enumerate(problems):
            single, single_err, single_conv = batch_lss_descend(
                initial[None, :, :], edges, None,
                min_spacing_m=None, constraint_weight=0.0, step_size=0.02,
                max_epochs=300, tolerance=1e-7,
                free_mask=np.ones(n, dtype=bool),
            )
            assert errors[b] == pytest.approx(float(single_err[0]), rel=1e-6)
            np.testing.assert_allclose(out[b, :n], single[0], atol=1e-4)
            assert bool(converged[b]) == bool(single_conv[0])

    def test_solve_local_lss_stack_matches_sequential_lss(self):
        from repro.core import LssConfig, lss_localize
        from repro.engine.localmaps import LocalLssProblem, solve_local_lss_stack

        rng = np.random.default_rng(3)
        problems = self._random_problems(rng, n_problems=4)
        config = LssConfig(restarts=2, max_epochs=300)
        stack = [
            LocalLssProblem(n_nodes=n, edges=edges, initial=initial)
            for n, edges, initial in problems
        ]
        solutions = solve_local_lss_stack(stack, config=config, rng=7)
        # Same initial + same per-problem restart draws consumed in the
        # same (problem-major) order: the sequential reference is
        # lss_localize per problem sharing one generator.
        reference_rng = np.random.default_rng(7)
        for (n, edges, initial), solution in zip(problems, solutions):
            expected = lss_localize(
                edges, n, config=config, initial=initial, rng=reference_rng
            )
            assert solution.error == pytest.approx(expected.error, rel=1e-5)
            np.testing.assert_allclose(
                solution.positions, expected.positions, atol=1e-3
            )

    def test_constraint_pairs_without_mask_rejected(self):
        from repro.engine.batch import (
            batch_lss_descend_padded,
            batch_lss_error_padded,
            batch_lss_gradient_padded,
        )

        rng = np.random.default_rng(2)
        problems = self._random_problems(rng, n_problems=2)
        pts, pairs, dists, weights, cpairs, _ = self._pad(problems, min_spacing_m=6.0)
        for kernel in (
            batch_lss_error_padded,
            batch_lss_gradient_padded,
            batch_lss_descend_padded,
        ):
            with pytest.raises(ValidationError, match="constraint_valid"):
                kernel(
                    pts, pairs, dists, weights,
                    constraint_pairs=cpairs, min_spacing_m=6.0,
                )

    def test_stack_validates_inputs(self):
        from repro.core.measurements import EdgeList
        from repro.engine.localmaps import LocalLssProblem, solve_local_lss_stack

        assert solve_local_lss_stack([], rng=0) == []
        bad = LocalLssProblem(
            n_nodes=2,
            edges=EdgeList(
                pairs=np.array([[0, 5]]), distances=np.array([1.0]),
                weights=np.array([1.0]),
            ),
        )
        with pytest.raises(ValidationError):
            solve_local_lss_stack([bad], rng=0)
