"""Tests for the content-addressed result store.

The load-bearing guarantees: a cache hit reconstructs results
*bit-identically* (records and aggregates exactly equal to the cold
run, NaN included); any spec change or code-version bump changes the
key and forces a cold run; and concurrent writers cannot corrupt an
entry (tmp-file staging + atomic rename).
"""

import gzip
import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.engine import CampaignResult, ConfidenceStop, TrialRecord, run_adaptive
from repro.engine.scheduler import ScheduledCampaignResult
from repro.errors import ValidationError
from repro.ranging import gaussian_ranges
from repro.store import (
    STORE_ENV_VAR,
    ResultStore,
    campaign_from_payload,
    campaign_to_payload,
    default_code_version,
    default_store_root,
    measurement_set_from_payload,
    measurement_set_to_payload,
)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store", code_version="test-1")


class TestKeying:
    def test_key_is_sha256_hex(self, store):
        key = store.key_for({"a": 1})
        assert len(key) == 64 and int(key, 16) >= 0

    def test_key_depends_on_description(self, store):
        assert store.key_for({"a": 1}) != store.key_for({"a": 2})

    def test_key_ignores_dict_ordering(self, store):
        assert store.key_for({"a": 1, "b": 2.5}) == store.key_for({"b": 2.5, "a": 1})

    def test_code_version_bump_changes_key(self, tmp_path):
        a = ResultStore(tmp_path, code_version="v1")
        b = ResultStore(tmp_path, code_version="v2")
        assert a.key_for({"x": 1}) != b.key_for({"x": 1})

    def test_default_code_version_tracks_library(self):
        import repro

        assert repro.__version__ in default_code_version()

    def test_bad_key_rejected(self, store):
        with pytest.raises(ValidationError):
            store.path_for("not-a-key")
        with pytest.raises(ValidationError):
            store.get("abc")


class TestRoundTrip:
    def test_get_miss_then_put_then_hit(self, store):
        key = store.key_for({"workload": "x"})
        assert store.get(key) is None
        store.put(key, {"value": [1.5, float("nan"), 2.0]})
        payload = store.get(key)
        assert payload["value"][0] == 1.5
        assert np.isnan(payload["value"][1])
        assert store.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "puts": 1,
            "invalidations": 0,
        }

    def test_floats_round_trip_bit_identically(self, store):
        values = [0.1 + 0.2, 1.0 / 3.0, 1e-300, np.nextafter(1.0, 2.0)]
        key = store.key_for("floats")
        store.put(key, {"v": values})
        assert store.get(key)["v"] == values

    def test_put_is_deterministic_bytes(self, store):
        key = store.key_for("det")
        store.put(key, {"a": 1.25, "b": "x"})
        first = store.path_for(key).read_bytes()
        store.put(key, {"b": "x", "a": 1.25})
        assert store.path_for(key).read_bytes() == first

    def test_corrupt_entry_is_a_self_healing_miss(self, store):
        key = store.key_for("corrupt")
        store.put(key, {"ok": True})
        store.path_for(key).write_bytes(b"\x1f\x8b garbage")
        assert store.get(key) is None
        assert not store.contains(key)
        store.put(key, {"ok": True})
        assert store.get(key) == {"ok": True}


class TestDefaultStoreRoot:
    _default = Path.home() / ".cache" / "repro" / "store"

    def test_unset_uses_default_location(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert default_store_root() == self._default

    def test_set_relocates(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path))
        assert default_store_root() == tmp_path

    @pytest.mark.parametrize("value", ["off", "0", "none", " OFF ", "None"])
    def test_documented_sentinels_disable(self, monkeypatch, value):
        monkeypatch.setenv(STORE_ENV_VAR, value)
        assert default_store_root() is None

    @pytest.mark.parametrize("value", ["", "   "])
    def test_empty_value_means_unset_not_disabled(self, monkeypatch, value):
        """Regression: an empty REPRO_STORE_DIR conventionally means
        *unset* (e.g. `REPRO_STORE_DIR= python -m repro ...`), and must
        fall back to the default location instead of silently disabling
        the store."""
        monkeypatch.setenv(STORE_ENV_VAR, value)
        assert default_store_root() == self._default

    def test_whitespace_padding_is_stripped_from_the_path(self, monkeypatch, tmp_path):
        """Regression: the off/empty checks ran on the *stripped* value
        but the returned path was built from the raw string, so
        `REPRO_STORE_DIR=" /data/store "` yielded a whitespace-padded
        root directory."""
        monkeypatch.setenv(STORE_ENV_VAR, f"  {tmp_path}  ")
        assert default_store_root() == tmp_path


class TestInvalidation:
    def test_invalidate_and_clear(self, store):
        keys = [store.key_for(i) for i in range(3)]
        for key in keys:
            store.put(key, {"i": 1})
        assert len(store) == 3
        assert store.invalidate(keys[0]) is True
        assert store.invalidate(keys[0]) is False
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0


class TestConcurrency:
    def test_concurrent_writers_do_not_corrupt(self, store):
        """Many threads racing to publish the same key: the entry must
        always be complete and equal to the (shared) payload."""
        key = store.key_for("contended")
        payload = {"values": [float(i) * 0.1 for i in range(200)]}
        barrier = threading.Barrier(8)
        errors = []

        def writer():
            try:
                barrier.wait()
                for _ in range(10):
                    store.put(key, payload)
                    got = store.get(key)
                    assert got == payload
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.get(key) == payload
        # Staging files must not leak.
        assert not list(store.root.rglob("*.tmp"))

    def test_heal_does_not_delete_concurrently_republished_entry(
        self, store, monkeypatch
    ):
        """Regression: the corrupt-entry heal path used a bare
        ``path.unlink()``, which could race with a concurrent writer's
        ``os.replace`` and delete the freshly republished *healthy*
        entry.  Simulate the race deterministically: the reader's first
        read fails (as if it caught a corrupt entry), but by the time it
        goes to remove the file, a writer has already republished
        healthy bytes — which must survive (and are in fact returned)."""
        import repro.store.result_store as rs

        key = store.key_for("raced")
        payload = {"values": [1.5, 2.5]}
        store.put(key, payload)

        real_open = rs.gzip.open
        failed = {"done": False}

        def torn_first_read(*args, **kwargs):
            if not failed["done"]:
                failed["done"] = True
                raise OSError("simulated torn read of a corrupt entry")
            return real_open(*args, **kwargs)

        monkeypatch.setattr(rs.gzip, "open", torn_first_read)
        assert store.get(key) == payload  # verified healthy and restored
        monkeypatch.undo()
        assert store.contains(key)
        assert store.get(key) == payload
        assert not list(store.root.rglob("*.quarantine"))

    def test_heal_removes_genuinely_corrupt_entry(self, store):
        key = store.key_for("corrupt-for-real")
        store.put(key, {"ok": True})
        store.path_for(key).write_bytes(b"\x1f\x8b not gzip")
        assert store.get(key) is None
        assert not store.contains(key)
        assert not list(store.root.rglob("*.quarantine"))

    def test_concurrent_heal_vs_publish_never_loses_the_entry(self, store):
        """Writers republishing while readers corrupt-and-heal the same
        key: whatever interleaving occurs, a final publish must land and
        read back intact, and no quarantine staging files may leak."""
        key = store.key_for("heal-race")
        payload = {"values": [float(i) * 0.25 for i in range(64)]}
        store.put(key, payload)
        path = store.path_for(key)
        stop = threading.Event()
        errors = []

        def writer():
            try:
                while not stop.is_set():
                    store.put(key, payload)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        def corruptor():
            try:
                while not stop.is_set():
                    try:
                        path.write_bytes(b"\x1f\x8b torn")
                    except OSError:
                        pass
                    store.get(key)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(2)] + [
            threading.Thread(target=corruptor) for _ in range(2)
        ]
        for t in threads:
            t.start()
        import time

        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        store.put(key, payload)
        assert store.get(key) == payload
        assert not list(store.root.rglob("*.tmp"))
        assert not list(store.root.rglob("*.quarantine"))

    def test_entry_file_is_valid_gzip_json(self, store):
        key = store.key_for("wire")
        store.put(key, {"x": 1})
        with gzip.open(store.path_for(key), "rt") as fh:
            assert json.load(fh) == {"x": 1}


class TestCampaignSerialization:
    def _campaign(self):
        records = (
            TrialRecord(index=0, metrics={"err": 1.5, "frac": 0.5}),
            TrialRecord(index=1, metrics={"err": float("nan"), "frac": 1.0}),
            TrialRecord(index=2, metrics={"err": 1.0 / 3.0}),
        )
        return CampaignResult(master_seed=7, records=records)

    def test_campaign_round_trip_exact(self):
        result = self._campaign()
        rebuilt = campaign_from_payload(campaign_to_payload(result))
        assert type(rebuilt) is CampaignResult
        assert rebuilt.master_seed == result.master_seed
        assert rebuilt.records == result.records
        assert rebuilt.aggregate() == result.aggregate()

    def test_scheduled_campaign_round_trip(self):
        result = run_adaptive(
            _echo_trial,
            12,
            stopping=ConfidenceStop(metric="x", tolerance=10.0, min_trials=4),
            master_seed=3,
        )
        rebuilt = campaign_from_payload(campaign_to_payload(result))
        assert isinstance(rebuilt, ScheduledCampaignResult)
        assert rebuilt == result

    def test_json_wire_round_trip_preserves_nan(self):
        payload = campaign_to_payload(self._campaign())
        wire = json.loads(json.dumps(payload))
        rebuilt = campaign_from_payload(wire)
        assert np.isnan(rebuilt.records[1].metrics["err"])
        assert rebuilt.aggregate() == self._campaign().aggregate()

    def test_non_campaign_payload_rejected(self):
        with pytest.raises(ValidationError):
            campaign_from_payload({"type": "measurements", "measurements": []})


class TestMeasurementSetSerialization:
    def test_round_trip_preserves_edges_exactly(self):
        rng = np.random.default_rng(11)
        positions = rng.uniform(0.0, 40.0, size=(12, 2))
        measurements = gaussian_ranges(positions, max_range_m=18.0, rng=rng)
        rebuilt = measurement_set_from_payload(
            measurement_set_to_payload(measurements)
        )
        assert len(rebuilt) == len(measurements)
        original = [
            (m.source, m.receiver, m.distance, m.true_distance, m.round_index)
            for m in measurements
        ]
        copied = [
            (m.source, m.receiver, m.distance, m.true_distance, m.round_index)
            for m in rebuilt
        ]
        assert copied == original
        a = measurements.to_edge_list()
        b = rebuilt.to_edge_list()
        assert np.array_equal(a.pairs, b.pairs)
        assert np.array_equal(a.distances, b.distances)
        assert np.array_equal(a.weights, b.weights)

    def test_none_truth_preserved(self):
        from repro.core.measurements import MeasurementSet

        ms = MeasurementSet()
        ms.add_distance(0, 1, 4.5)
        rebuilt = measurement_set_from_payload(measurement_set_to_payload(ms))
        assert rebuilt.get(0, 1)[0].true_distance is None


def _echo_trial(rng):
    return {"x": float(rng.normal())}
