"""Tests for repro.core.transforms (rigid-transform estimation)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import apply_transform, pairwise_distances, rigid_transform_matrix
from repro.core.transforms import (
    estimate_transform,
    estimate_transform_closed_form,
    estimate_transform_minimize,
    transform_residual,
)
from repro.errors import InsufficientDataError, ValidationError


def _random_points(rng, n=6, span=20.0):
    return rng.uniform(-span, span, (n, 2))


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestClosedForm:
    @pytest.mark.parametrize("reflect", [False, True])
    @pytest.mark.parametrize("theta", [0.0, 0.5, -1.2, math.pi - 0.01])
    def test_exact_recovery(self, rng, theta, reflect):
        src = _random_points(rng)
        t = rigid_transform_matrix(theta, 3.0, -7.0, reflect)
        tgt = apply_transform(src, t)
        est = estimate_transform_closed_form(src, tgt)
        assert est.rmse < 1e-9
        assert est.reflected == reflect
        assert np.allclose(est.apply(src), tgt, atol=1e-8)

    def test_two_point_minimum(self, rng):
        src = np.array([[0.0, 0.0], [5.0, 0.0]])
        t = rigid_transform_matrix(0.3, 1.0, 1.0)
        tgt = apply_transform(src, t)
        est = estimate_transform_closed_form(src, tgt)
        assert est.rmse < 1e-9

    def test_one_point_rejected(self):
        with pytest.raises(InsufficientDataError):
            estimate_transform_closed_form([[0.0, 0.0]], [[1.0, 1.0]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            estimate_transform_closed_form(
                [[0.0, 0.0], [1.0, 0.0]], [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]]
            )

    def test_noise_tolerance(self, rng):
        src = _random_points(rng, n=10)
        t = rigid_transform_matrix(1.0, -4.0, 2.0)
        tgt = apply_transform(src, t) + rng.normal(0, 0.1, (10, 2))
        est = estimate_transform_closed_form(src, tgt)
        assert est.rmse < 0.3

    def test_error_field_is_sum_of_squares(self, rng):
        src = _random_points(rng)
        tgt = _random_points(rng)
        est = estimate_transform_closed_form(src, tgt)
        assert est.error == pytest.approx(
            transform_residual(src, tgt, est.matrix)
        )
        assert est.rmse == pytest.approx(math.sqrt(est.error / src.shape[0]))

    def test_n_correspondences_recorded(self, rng):
        src = _random_points(rng, n=7)
        est = estimate_transform_closed_form(src, src)
        assert est.n_correspondences == 7

    def test_identity_on_same_points(self, rng):
        src = _random_points(rng)
        est = estimate_transform_closed_form(src, src)
        assert np.allclose(est.apply(src), src, atol=1e-9)

    @given(
        theta=st.floats(-3.1, 3.1, allow_nan=False),
        tx=st.floats(-50, 50, allow_nan=False),
        ty=st.floats(-50, 50, allow_nan=False),
        reflect=st.booleans(),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_recovery_property(self, theta, tx, ty, reflect, seed):
        gen = np.random.default_rng(seed)
        src = _random_points(gen, n=5)
        # Skip degenerate (near-coincident) point sets.
        if np.max(pairwise_distances(src)) < 1e-3:
            return
        t = rigid_transform_matrix(theta, tx, ty, reflect)
        tgt = apply_transform(src, t)
        est = estimate_transform_closed_form(src, tgt)
        assert est.rmse < 1e-6


class TestMinimize:
    @pytest.mark.parametrize("reflect", [False, True])
    def test_exact_recovery(self, rng, reflect):
        src = _random_points(rng)
        t = rigid_transform_matrix(-0.9, 10.0, 5.0, reflect)
        tgt = apply_transform(src, t)
        est = estimate_transform_minimize(src, tgt)
        assert est.rmse < 1e-5

    def test_matches_closed_form_on_clean_data(self, rng):
        src = _random_points(rng)
        t = rigid_transform_matrix(0.4, 1.0, 2.0)
        tgt = apply_transform(src, t)
        cf = estimate_transform_closed_form(src, tgt)
        mn = estimate_transform_minimize(src, tgt)
        assert np.allclose(cf.apply(src), mn.apply(src), atol=1e-4)

    def test_not_worse_than_closed_form_on_noise(self, rng):
        src = _random_points(rng, n=8)
        t = rigid_transform_matrix(2.0, 0.0, -3.0, reflect=True)
        tgt = apply_transform(src, t) + rng.normal(0, 0.2, (8, 2))
        cf = estimate_transform_closed_form(src, tgt)
        mn = estimate_transform_minimize(src, tgt)
        assert mn.error <= cf.error * 1.0001


class TestDispatch:
    def test_closed_form_default(self, rng):
        src = _random_points(rng)
        t = rigid_transform_matrix(0.2, 1.0, 1.0)
        tgt = apply_transform(src, t)
        est = estimate_transform(src, tgt)
        assert est.rmse < 1e-8

    def test_minimize_dispatch(self, rng):
        src = _random_points(rng)
        t = rigid_transform_matrix(0.2, 1.0, 1.0)
        tgt = apply_transform(src, t)
        est = estimate_transform(src, tgt, method="minimize")
        assert est.rmse < 1e-5

    def test_unknown_method(self, rng):
        src = _random_points(rng)
        with pytest.raises(ValidationError):
            estimate_transform(src, src, method="magic")


class TestTransformResidual:
    def test_zero_for_identity(self, rng):
        src = _random_points(rng)
        assert transform_residual(src, src, np.eye(3)) == pytest.approx(0.0)

    def test_known_offset(self):
        src = np.array([[0.0, 0.0], [1.0, 0.0]])
        tgt = src + [0.0, 2.0]
        assert transform_residual(src, tgt, np.eye(3)) == pytest.approx(8.0)
