"""Tests for the XSM software-tone-detector ranging path."""

import numpy as np
import pytest

from repro.acoustics import get_environment
from repro.ranging import TdoaConfig, XsmRangingService


@pytest.fixture(scope="module")
def service():
    return XsmRangingService(
        environment=get_environment("grass"), tdoa=TdoaConfig(max_range_m=25.0)
    )


class TestWaveformSimulation:
    def test_buffer_length(self, service):
        wave = service.simulate_waveform(5.0, rng=0)
        assert wave.shape[0] == service.tdoa.buffer_length

    def test_signal_energy_at_arrival(self, service):
        wave = service.simulate_waveform(8.0, rng=0)
        start = service.tdoa.index_from_distance(8.0)
        length = int(service.chirp_duration_s * service.tdoa.sampling_rate_hz)
        signal_power = np.mean(wave[start : start + length] ** 2)
        noise_power = np.mean(wave[: start - 50] ** 2)
        assert signal_power > 2 * noise_power

    def test_attenuated_link_weaker(self, service):
        strong = service.simulate_waveform(8.0, link_gain_db=0.0, rng=0)
        weak = service.simulate_waveform(8.0, link_gain_db=-20.0, rng=0)
        start = service.tdoa.index_from_distance(8.0)
        s_power = np.mean(strong[start : start + 100] ** 2)
        w_power = np.mean(weak[start : start + 100] ** 2)
        assert s_power > w_power

    def test_negative_distance_rejected(self, service):
        with pytest.raises(Exception):
            service.simulate_waveform(-1.0)


class TestMeasurement:
    def test_accurate_at_short_range(self, service):
        rng = np.random.default_rng(1)
        estimates = [service.measure(6.0, rng=rng) for _ in range(15)]
        ok = [e for e in estimates if e is not None]
        assert len(ok) >= 13
        assert np.median(np.abs(np.array(ok) - 6.0)) < 0.6

    def test_no_detection_far_out(self, service):
        rng = np.random.default_rng(2)
        results = [service.measure(24.0, rng=rng) for _ in range(10)]
        correct = [r for r in results if r is not None and abs(r - 24.0) < 3.0]
        assert len(correct) == 0

    def test_detection_probability_monotone_trend(self, service):
        rng = np.random.default_rng(3)
        near = service.detection_probability(6.0, attempts=15, draw_link_gain=False, rng=rng)
        far = service.detection_probability(20.0, attempts=15, draw_link_gain=False, rng=rng)
        assert near > far

    def test_invalid_tone_fraction(self):
        with pytest.raises(ValueError):
            XsmRangingService(
                environment=get_environment("grass"), tone_fraction=0.3
            )


class TestResourceAccounting:
    def test_software_buffer_larger(self, service):
        software = service.buffer_bytes(bits_per_sample=8)
        hardware = XsmRangingService.hardware_buffer_bytes(
            service.tdoa.buffer_length
        )
        assert software == 2 * hardware  # 8-bit samples vs 4-bit counters

    def test_paper_2kb_claim_orders(self):
        # ~20 m at 16 kHz with 1-byte samples is about 2 kB.
        service = XsmRangingService(
            environment=get_environment("grass"), tdoa=TdoaConfig(max_range_m=20.0)
        )
        assert 1000 <= service.buffer_bytes(bits_per_sample=8) <= 3000

    def test_invalid_bits(self, service):
        with pytest.raises(ValueError):
            service.buffer_bytes(bits_per_sample=0)
        with pytest.raises(ValueError):
            XsmRangingService.hardware_buffer_bytes(-1)
