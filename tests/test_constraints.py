"""Tests for deployment-constraint filtering (repro.ranging.constraints)."""

import numpy as np
import pytest

from repro.core.measurements import MeasurementSet
from repro.deploy import offset_grid
from repro.errors import ValidationError
from repro.ranging.constraints import (
    feasible_distance_filter,
    grid_distance_set,
    min_spacing_filter,
)


class TestMinSpacingFilter:
    def test_drops_impossible_short(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 0.5)   # impossible with 9 m spacing
        ms.add_distance(2, 3, 9.2)
        out = min_spacing_filter(ms, 9.0)
        assert (0, 1) not in out
        assert (2, 3) in out

    def test_slack_keeps_near_minimum(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 8.3)  # 9 m link measured slightly short
        out = min_spacing_filter(ms, 9.0)
        assert (0, 1) in out

    def test_invalid_spacing(self):
        with pytest.raises(ValidationError):
            min_spacing_filter(MeasurementSet(), 0.0)


class TestGridDistanceSet:
    def test_offset_grid_distances(self):
        grid = offset_grid()
        feasible = grid_distance_set(grid, 15.0)
        # Must contain the 9 m column spacing and the ~10.06 m diagonal.
        assert np.any(np.isclose(feasible, 9.0, atol=0.02))
        assert np.any(np.isclose(feasible, np.hypot(9.0, 4.5), atol=0.02))
        assert feasible.max() <= 15.0

    def test_sorted_unique(self):
        grid = offset_grid()
        feasible = grid_distance_set(grid, 22.0)
        assert np.all(np.diff(feasible) > 0)

    def test_invalid(self):
        with pytest.raises(ValidationError):
            grid_distance_set(offset_grid(), 0.0)


class TestFeasibleDistanceFilter:
    def test_keeps_near_feasible(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 9.1)
        out = feasible_distance_filter(ms, [9.0, 10.06], tolerance_m=0.5)
        assert (0, 1) in out

    def test_drops_far_from_feasible(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 5.0)  # nothing feasible near 5 m
        out = feasible_distance_filter(ms, [9.0, 10.06], tolerance_m=1.0)
        assert len(out) == 0

    def test_snap_replaces_value(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 9.3, true_distance=9.0)
        out = feasible_distance_filter(ms, [9.0, 10.06], tolerance_m=0.5, snap=True)
        assert out.distances(0, 1)[0] == pytest.approx(9.0)

    def test_snap_improves_grid_measurements(self):
        grid = offset_grid()
        feasible = grid_distance_set(grid, 22.0)
        rng = np.random.default_rng(0)
        ms = MeasurementSet()
        for (i, j) in [(0, 1), (0, 7), (1, 8), (7, 8)]:
            truth = float(np.hypot(*(grid[i] - grid[j])))
            ms.add_distance(i, j, truth + rng.normal(0, 0.2), true_distance=truth)
        snapped = feasible_distance_filter(ms, feasible, tolerance_m=1.0, snap=True)
        raw_err = np.abs(ms.signed_errors()).mean()
        snap_err = np.abs(snapped.signed_errors()).mean()
        assert snap_err <= raw_err + 1e-9

    def test_empty_feasible_rejected(self):
        with pytest.raises(ValidationError):
            feasible_distance_filter(MeasurementSet(), [])

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValidationError):
            feasible_distance_filter(MeasurementSet(), [9.0], tolerance_m=-1.0)
