"""Tests for the network substrate (clock, radio, simulator, flooding)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.network.clock import (
    MAX_CLOCK_RATE_DIFFERENCE,
    DriftingClock,
    FtspSyncModel,
    sync_ranging_error_m,
)
from repro.network.flooding import flood
from repro.network.node import SensorNode
from repro.network.radio import RadioModel
from repro.network.simulator import NetworkSimulator


class TestDriftingClock:
    def test_perfect_clock(self):
        clock = DriftingClock()
        assert clock.local_time(100.0) == 100.0

    def test_skew_accumulates(self):
        clock = DriftingClock(skew=1e-3)
        assert clock.local_time(1000.0) == pytest.approx(1001.0)

    def test_offset(self):
        clock = DriftingClock(offset=5.0)
        assert clock.local_time(0.0) == 5.0

    def test_true_interval_roundtrip(self):
        clock = DriftingClock(skew=50e-6)
        local = clock.local_time(10.0) - clock.local_time(0.0)
        assert clock.true_interval(local) == pytest.approx(10.0)

    def test_synchronize_zeroes_offset(self):
        clock = DriftingClock(skew=1e-4, offset=3.0)
        clock.synchronize(true_time=50.0)
        assert clock.local_time(50.0) == pytest.approx(50.0)

    def test_random_within_bound(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            clock = DriftingClock.random(rng)
            assert abs(clock.skew) <= MAX_CLOCK_RATE_DIFFERENCE / 2


class TestSyncModels:
    def test_ranging_error_at_30m(self):
        # The paper's claim: ~0.15 cm at 30 m.
        assert sync_ranging_error_m(30.0) == pytest.approx(0.0015)

    def test_linear_in_distance(self):
        assert sync_ranging_error_m(60.0) == pytest.approx(2 * sync_ranging_error_m(30.0))

    def test_negative_distance_rejected(self):
        with pytest.raises(ValidationError):
            sync_ranging_error_m(-1.0)

    def test_ftsp_error_grows_with_elapsed(self):
        model = FtspSyncModel()
        rng = np.random.default_rng(0)
        short = [abs(model.sample_sync_error_s(0.01, rng)) for _ in range(300)]
        long = [abs(model.sample_sync_error_s(100.0, rng)) for _ in range(300)]
        assert np.mean(long) > np.mean(short)


class TestRadioModel:
    def test_in_range(self):
        radio = RadioModel(comm_range_m=50.0)
        assert radio.in_range(50.0)
        assert not radio.in_range(50.1)

    def test_delivery_certain(self):
        radio = RadioModel(delivery_probability=1.0)
        assert all(radio.delivers(10.0, np.random.default_rng(i)) for i in range(20))

    def test_delivery_never(self):
        radio = RadioModel(delivery_probability=0.0)
        assert not any(radio.delivers(10.0, np.random.default_rng(i)) for i in range(20))

    def test_out_of_range_never_delivers(self):
        radio = RadioModel(comm_range_m=10.0, delivery_probability=1.0)
        assert not radio.delivers(11.0)

    def test_xmit_delay_near_mean(self):
        radio = RadioModel()
        rng = np.random.default_rng(0)
        delays = [radio.sample_xmit_delay_s(rng) for _ in range(200)]
        assert np.mean(delays) == pytest.approx(radio.xmit_delay_mean_s, abs=1e-4)

    def test_invalid(self):
        with pytest.raises(ValidationError):
            RadioModel(comm_range_m=0.0)
        with pytest.raises(ValidationError):
            RadioModel(delivery_probability=1.5)


class TestSensorNode:
    def test_distance(self):
        a = SensorNode(0, (0.0, 0.0))
        b = SensorNode(1, (3.0, 4.0))
        assert a.distance_to(b) == 5.0

    def test_invalid_id(self):
        with pytest.raises(ValidationError):
            SensorNode(-1, (0.0, 0.0))

    def test_invalid_position(self):
        with pytest.raises(ValidationError):
            SensorNode(0, (float("nan"), 0.0))

    def test_position_array(self):
        node = SensorNode(0, (1.0, 2.0))
        assert np.allclose(node.position_array, [1.0, 2.0])


def line_network(n=5, spacing=10.0, **radio_kwargs):
    nodes = [SensorNode(i, (i * spacing, 0.0)) for i in range(n)]
    radio = RadioModel(delivery_probability=1.0, **radio_kwargs)
    return NetworkSimulator(nodes, radio=radio, rng=0)


class TestNetworkSimulator:
    def test_duplicate_ids_rejected(self):
        nodes = [SensorNode(0, (0, 0)), SensorNode(0, (1, 1))]
        with pytest.raises(ValidationError):
            NetworkSimulator(nodes)

    def test_unknown_node_rejected(self):
        sim = line_network()
        with pytest.raises(ValidationError):
            sim.node(99)

    def test_unicast_delivery(self):
        sim = line_network()
        received = []
        sim.register_handler(1, lambda s, nid, msg: received.append(msg.payload))
        assert sim.send(0, 1, "hello")
        sim.run()
        assert received == ["hello"]
        assert sim.stats.messages_delivered == 1

    def test_out_of_range_unicast_fails(self):
        sim = line_network(comm_range_m=5.0)
        assert not sim.send(0, 4, "far")
        assert sim.stats.messages_dropped == 1

    def test_broadcast_reaches_radio_neighbors(self):
        sim = line_network(comm_range_m=15.0)
        received = []
        sim.register_default_handler(
            lambda s, nid, msg: received.append(nid)
        )
        reached = sim.broadcast(2, "ping")
        sim.run()
        assert reached == 2  # nodes 1 and 3 (10 m); 0 and 4 are 20 m away
        assert sorted(received) == [1, 3]

    def test_handlers_can_forward(self):
        sim = line_network(comm_range_m=15.0)
        log = []

        def relay(s, nid, msg):
            log.append(nid)
            if nid < 4:
                s.send(nid, nid + 1, msg.payload)

        sim.register_default_handler(relay)
        sim.send(0, 1, "token")
        sim.run()
        assert log == [1, 2, 3, 4]

    def test_time_advances(self):
        sim = line_network()
        sim.send(0, 1, "x")
        sim.run()
        assert sim.now > 0.0

    def test_max_events_guard(self):
        sim = line_network(comm_range_m=15.0)

        def ping_pong(s, nid, msg):
            s.send(nid, msg.sender, "again")

        sim.register_default_handler(ping_pong)
        sim.send(0, 1, "start")
        with pytest.raises(RuntimeError):
            sim.run(max_events=50)

    def test_radio_neighbors(self):
        sim = line_network(comm_range_m=10.5)
        assert sim.radio_neighbors(0) == [1]
        assert sorted(sim.radio_neighbors(2)) == [1, 3]


class TestFlooding:
    def test_reaches_all_connected(self):
        sim = line_network(comm_range_m=15.0)
        result = flood(sim, root=0, payload="config")
        assert result.reached == 5
        assert result.covers(range(5))

    def test_hops_count(self):
        sim = line_network(comm_range_m=10.5)
        result = flood(sim, root=0, payload=0)
        assert result.hops[0] == 0
        assert result.hops[4] == 4

    def test_parents_form_tree(self):
        sim = line_network(comm_range_m=10.5)
        result = flood(sim, root=2, payload=0)
        assert result.parents[2] is None
        assert result.parents[1] == 2
        assert result.parents[0] == 1

    def test_transform_hook_applied_per_hop(self):
        sim = line_network(comm_range_m=10.5)
        result = flood(
            sim, root=0, payload=0, transform=lambda nid, sender, p: p + 1
        )
        assert result.payloads[0] == 0
        assert result.payloads[3] == 3  # incremented at each hop

    def test_disconnected_partial_coverage(self):
        nodes = [
            SensorNode(0, (0.0, 0.0)),
            SensorNode(1, (10.0, 0.0)),
            SensorNode(2, (500.0, 0.0)),
        ]
        sim = NetworkSimulator(
            nodes, radio=RadioModel(comm_range_m=15.0, delivery_probability=1.0), rng=0
        )
        result = flood(sim, root=0, payload="x")
        assert result.covers([0, 1])
        assert 2 not in result.payloads

    def test_handlers_restored_after_flood(self):
        sim = line_network(comm_range_m=15.0)
        marker = []
        sim.register_handler(1, lambda s, nid, msg: marker.append(msg.payload))
        flood(sim, root=0, payload="flood")
        sim.send(0, 1, "direct")
        sim.run()
        assert "direct" in marker
