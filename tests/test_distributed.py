"""Tests for repro.core.distributed (distributed LSS pipeline)."""

import numpy as np
import pytest

from repro.core.distributed import (
    DistributedConfig,
    build_local_maps,
    build_transforms,
    distributed_localize,
)
from repro.core.evaluation import align_to_reference, evaluate_localization
from repro.core.measurements import EdgeList, MeasurementSet
from repro.deploy import square_grid
from repro.errors import InsufficientDataError, ValidationError
from repro.ranging import gaussian_ranges


@pytest.fixture(scope="module")
def grid_scenario():
    positions = square_grid(4, 4, spacing_m=10.0)
    ranges = gaussian_ranges(positions, max_range_m=16.0, sigma_m=0.05, rng=3)
    return positions, ranges


class TestDistributedConfig:
    def test_defaults(self):
        config = DistributedConfig()
        assert config.transform_method == "closed_form"
        assert config.tree == "bfs"

    def test_invalid_values(self):
        with pytest.raises(ValidationError):
            DistributedConfig(transform_method="guess")
        with pytest.raises(ValidationError):
            DistributedConfig(min_shared=1)
        with pytest.raises(ValidationError):
            DistributedConfig(tree="dfs")

    def test_effective_local_lss_injects_spacing(self):
        config = DistributedConfig(min_spacing_m=9.0)
        assert config.effective_local_lss.min_spacing_m == 9.0
        assert config.local_lss.min_spacing_m is None

    def test_effective_local_lss_passthrough(self):
        config = DistributedConfig()
        assert config.effective_local_lss is config.local_lss


class TestBuildLocalMaps:
    def test_every_connected_node_gets_a_map(self, grid_scenario):
        positions, ranges = grid_scenario
        maps = build_local_maps(ranges, len(positions), rng=1)
        assert set(maps) == set(range(len(positions)))

    def test_owner_in_own_map(self, grid_scenario):
        positions, ranges = grid_scenario
        maps = build_local_maps(ranges, len(positions), rng=1)
        for owner, local_map in maps.items():
            assert owner in local_map.coordinates

    def test_maps_preserve_local_distances(self, grid_scenario):
        positions, ranges = grid_scenario
        maps = build_local_maps(ranges, len(positions), rng=1)
        # Check one map: distances in local coordinates match truth.
        local_map = maps[5]
        members = local_map.members
        est = local_map.coords_for(members)
        act = positions[members]
        est_d = np.hypot(*(est[0] - est[1]))
        act_d = np.hypot(*(act[0] - act[1]))
        assert est_d == pytest.approx(act_d, abs=1.0)

    def test_isolated_node_skipped(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 5.0)
        ms.add_distance(1, 2, 5.0)
        ms.add_distance(0, 2, 7.0)
        # Node 3 has no measurements at all.
        maps = build_local_maps(ms, 4, rng=0)
        assert 3 not in maps

    def test_empty_measurements_rejected(self):
        with pytest.raises(InsufficientDataError):
            build_local_maps(MeasurementSet(), 4)


class TestBuildTransforms:
    def test_symmetric_keys(self, grid_scenario):
        positions, ranges = grid_scenario
        config = DistributedConfig()
        maps = build_local_maps(ranges, len(positions), config=config, rng=1)
        transforms = build_transforms(maps, config=config)
        for (a, b) in transforms:
            assert (b, a) in transforms

    def test_transforms_are_accurate_on_clean_data(self, grid_scenario):
        positions, ranges = grid_scenario
        config = DistributedConfig()
        maps = build_local_maps(ranges, len(positions), config=config, rng=1)
        transforms = build_transforms(maps, config=config)
        rmses = np.array([t.rmse for t in transforms.values()])
        assert np.median(rmses) < 0.5

    def test_transform_maps_between_frames(self, grid_scenario):
        positions, ranges = grid_scenario
        config = DistributedConfig()
        maps = build_local_maps(ranges, len(positions), config=config, rng=1)
        transforms = build_transforms(maps, config=config)
        (a, b), estimate = next(iter(transforms.items()))
        shared = sorted(set(maps[a].members) & set(maps[b].members))
        mapped = estimate.apply(maps[b].coords_for(shared))
        target = maps[a].coords_for(shared)
        assert np.abs(mapped - target).max() < 2.0

    def test_min_shared_respected(self, grid_scenario):
        positions, ranges = grid_scenario
        config = DistributedConfig(min_shared=10)
        maps = build_local_maps(ranges, len(positions), config=config, rng=1)
        transforms = build_transforms(maps, config=config)
        for (a, b) in transforms:
            shared = set(maps[a].members) & set(maps[b].members)
            assert len(shared) >= 10


class TestDistributedLocalize:
    @pytest.mark.parametrize("tree", ["bfs", "best"])
    def test_full_pipeline_accuracy(self, grid_scenario, tree):
        positions, ranges = grid_scenario
        config = DistributedConfig(min_spacing_m=10.0, tree=tree)
        result = distributed_localize(ranges, len(positions), root=5, config=config, rng=2)
        assert result.localized.all()
        report = evaluate_localization(
            result.positions, positions, localized_mask=result.localized, align=True
        )
        assert report.average_error < 1.0

    def test_root_frame_is_global(self, grid_scenario):
        positions, ranges = grid_scenario
        result = distributed_localize(ranges, len(positions), root=5, rng=2)
        # The root's position equals its own local-map coordinate.
        own = result.local_maps[5].coordinates[5]
        assert np.allclose(result.positions[5], own)

    def test_parents_form_tree(self, grid_scenario):
        positions, ranges = grid_scenario
        result = distributed_localize(ranges, len(positions), root=0, rng=2)
        assert result.parents[0] is None
        for node, parent in result.parents.items():
            if node == result.root:
                continue
            # Walking up must terminate at the root.
            seen = set()
            current = node
            while current != result.root:
                assert current not in seen
                seen.add(current)
                current = result.parents[current]

    def test_invalid_root(self, grid_scenario):
        positions, ranges = grid_scenario
        with pytest.raises(ValidationError):
            distributed_localize(ranges, len(positions), root=99)

    def test_root_without_map_rejected(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 5.0)
        ms.add_distance(1, 2, 5.0)
        ms.add_distance(0, 2, 7.0)
        with pytest.raises(InsufficientDataError):
            distributed_localize(ms, 4, root=3)

    def test_disconnected_component_unlocalized(self):
        # Two separate triangles; root in the first one.
        positions = np.array(
            [
                [0.0, 0.0], [10.0, 0.0], [5.0, 8.0],
                [100.0, 0.0], [110.0, 0.0], [105.0, 8.0],
            ]
        )
        ms = MeasurementSet()
        for i, j in [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]:
            d = float(np.hypot(*(positions[i] - positions[j])))
            ms.add_distance(i, j, d, true_distance=d)
        result = distributed_localize(ms, 6, root=0, rng=0)
        assert result.localized[:3].all()
        assert not result.localized[3:].any()

    def test_precomputed_maps_reused(self, grid_scenario):
        positions, ranges = grid_scenario
        config = DistributedConfig()
        maps = build_local_maps(ranges, len(positions), config=config, rng=1)
        result = distributed_localize(
            ranges, len(positions), root=5, config=config, rng=2, local_maps=maps
        )
        assert result.local_maps is maps

    def test_sparse_data_degrades(self):
        # Remove most measurements: error should blow up vs dense (the
        # Figure 24 effect), while the pipeline still runs.
        positions = square_grid(4, 4, spacing_m=10.0)
        dense = gaussian_ranges(positions, max_range_m=16.0, sigma_m=0.3, rng=3)
        sparse = gaussian_ranges(positions, max_range_m=10.5, sigma_m=0.3, rng=3)
        config = DistributedConfig(min_spacing_m=10.0)
        res_dense = distributed_localize(dense, 16, root=5, config=config, rng=2)
        res_sparse = distributed_localize(sparse, 16, root=5, config=config, rng=2)
        rep_dense = evaluate_localization(
            res_dense.positions, positions, localized_mask=res_dense.localized, align=True
        )
        rep_sparse = evaluate_localization(
            res_sparse.positions, positions, localized_mask=res_sparse.localized, align=True
        )
        assert rep_dense.average_error < rep_sparse.average_error + 5.0


class TestBatchedScalarParity:
    """The acceptance contract: batched and scalar paths agree.

    The batched path consumes perturbation randomness in a different
    order than the scalar loop (fits are phased before trim-refits), so
    agreement is pinned to solver tolerance, not bit-for-bit.
    """

    def test_solver_validation(self):
        with pytest.raises(ValidationError):
            DistributedConfig(solver="vectorized")

    def test_lbfgs_local_backend_falls_back_to_scalar_path(self, grid_scenario):
        # Non-gradient local backends only exist as scalar
        # implementations; the batched default must route around them
        # instead of crashing in the engine.
        from repro.core.lss import LssConfig

        positions, ranges = grid_scenario
        config = DistributedConfig(
            local_lss=LssConfig(backend="lbfgs", restarts=2, max_epochs=200)
        )
        maps = build_local_maps(ranges, len(positions), config=config, rng=1)
        assert set(maps) == set(range(len(positions)))

    def test_local_maps_agree(self, grid_scenario):
        positions, ranges = grid_scenario
        scalar_cfg = DistributedConfig(min_spacing_m=10.0, solver="scalar")
        batched_cfg = DistributedConfig(min_spacing_m=10.0, solver="batched")
        scalar_maps = build_local_maps(ranges, len(positions), config=scalar_cfg, rng=1)
        batched_maps = build_local_maps(ranges, len(positions), config=batched_cfg, rng=1)
        assert set(scalar_maps) == set(batched_maps)
        for owner in scalar_maps:
            s, b = scalar_maps[owner], batched_maps[owner]
            assert s.members == b.members
            aligned = align_to_reference(b.coords_for(b.members), s.coords_for(s.members))
            assert np.abs(aligned - s.coords_for(s.members)).max() < 0.2

    def test_transforms_agree(self, grid_scenario):
        positions, ranges = grid_scenario
        scalar_cfg = DistributedConfig(solver="scalar")
        batched_cfg = DistributedConfig(solver="batched")
        maps = build_local_maps(ranges, len(positions), config=scalar_cfg, rng=1)
        scalar_t = build_transforms(maps, config=scalar_cfg)
        batched_t = build_transforms(maps, config=batched_cfg)
        assert set(scalar_t) == set(batched_t)
        for key in scalar_t:
            np.testing.assert_allclose(
                batched_t[key].matrix, scalar_t[key].matrix, atol=1e-9
            )
            assert batched_t[key].reflected == scalar_t[key].reflected
            assert batched_t[key].n_correspondences == scalar_t[key].n_correspondences
            assert batched_t[key].error == pytest.approx(scalar_t[key].error, abs=1e-9)

    def test_full_pipeline_agrees(self, grid_scenario):
        positions, ranges = grid_scenario
        reports = {}
        for solver in ("scalar", "batched"):
            cfg = DistributedConfig(min_spacing_m=10.0, solver=solver)
            result = distributed_localize(
                ranges, len(positions), root=5, config=cfg, rng=2
            )
            assert result.localized.all()
            reports[solver] = evaluate_localization(
                result.positions, positions, localized_mask=result.localized, align=True
            )
        assert reports["batched"].average_error == pytest.approx(
            reports["scalar"].average_error, abs=0.25
        )


class TestPaddingEdgeCases:
    """Variable-size neighborhoods through the padded batched kernels."""

    @staticmethod
    def _measurements(positions, pairs):
        ms = MeasurementSet()
        for i, j in pairs:
            d = float(np.hypot(*(positions[i] - positions[j])))
            ms.add_distance(i, j, d, true_distance=d)
        return ms

    def test_minimal_neighborhood_padded_alongside_larger(self):
        # Node 4 hangs off one corner of a well-connected square: its
        # neighborhood (a 3-node triangle) is the smallest solvable
        # local map, stacked next to much larger ones.
        positions = np.array(
            [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0], [20.0, 5.0]]
        )
        pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (1, 4), (3, 4)]
        ms = self._measurements(positions, pairs)
        for solver in ("batched", "scalar"):
            maps = build_local_maps(
                ms, 5, config=DistributedConfig(solver=solver), rng=0
            )
            assert set(maps) == {0, 1, 2, 3, 4}
            assert maps[4].members == [1, 3, 4]
            est = maps[4].coords_for([1, 3])
            d = float(np.hypot(*(est[0] - est[1])))
            assert d == pytest.approx(np.hypot(*(positions[1] - positions[3])), abs=0.5)

    def test_node_with_single_neighbor_has_no_map(self):
        # Node 3 has one neighbor: no local frame of its own, but it
        # still appears in the triangle owners' maps.
        positions = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 8.0], [5.0, -9.0]])
        ms = self._measurements(positions, [(0, 1), (0, 2), (1, 2), (0, 3)])
        maps = build_local_maps(ms, 4, config=DistributedConfig(solver="batched"), rng=0)
        assert 3 not in maps
        assert 3 in maps[0].coordinates

    def test_fully_disconnected_node(self):
        positions = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 8.0], [40.0, 40.0]])
        ms = self._measurements(positions, [(0, 1), (0, 2), (1, 2)])
        result = distributed_localize(
            ms, 4, root=0, config=DistributedConfig(solver="batched"), rng=0
        )
        assert result.localized[:3].all()
        assert not result.localized[3]
        assert np.isnan(result.positions[3]).all()

    def test_single_map_network(self):
        # A lone triangle: every node owns the identical 3-member map,
        # so the batch is three equal-size problems with no padding.
        positions = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 8.0]])
        ms = self._measurements(positions, [(0, 1), (0, 2), (1, 2)])
        result = distributed_localize(
            ms, 3, root=0, config=DistributedConfig(solver="batched"), rng=0
        )
        assert result.localized.all()
        report = evaluate_localization(result.positions, positions, align=True)
        assert report.average_error < 0.5
