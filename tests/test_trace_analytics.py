"""Tests for :mod:`repro.perf.analytics`: span-forest reconstruction
from the post-order trace stream, Chrome trace-event export, and
critical-path extraction — plus their ``repro trace`` CLI surface."""

import json

import pytest

from repro.__main__ import main
from repro.perf.analytics import (
    build_span_forest,
    chrome_trace,
    critical_path,
    render_critical_path,
)
from repro.telemetry.recorder import TraceRecorder


def _span(path, seq, wall_s, cpu_s=None, attrs=None):
    return {
        "type": "span",
        "name": path.rsplit("/", 1)[-1],
        "path": path,
        "wall_s": wall_s,
        "cpu_s": wall_s if cpu_s is None else cpu_s,
        "seq": seq,
        "attrs": attrs or {},
    }


def _sample_records():
    """A post-order stream: children close (and are emitted) before
    their parents, exactly as the recorder appends them."""
    return [
        _span("scenario/campaign/solve", 1, 0.2),
        _span("scenario/campaign/solve", 2, 0.5),
        _span("scenario/campaign", 3, 0.8),
        _span("scenario", 4, 1.0),
        {"type": "counter", "name": "engine.campaign.trials", "value": 2},
    ]


class TestBuildSpanForest:
    def test_postorder_adoption(self):
        forest = build_span_forest(_sample_records())
        (root,) = forest
        assert root.path == "scenario"
        (campaign,) = root.children
        assert campaign.path == "scenario/campaign"
        assert [c.wall_s for c in campaign.children] == [0.2, 0.5]

    def test_self_time_excludes_direct_children(self):
        (root,) = build_span_forest(_sample_records())
        assert root.self_wall_s == pytest.approx(0.2)  # 1.0 - 0.8
        (campaign,) = root.children
        assert campaign.self_wall_s == pytest.approx(0.1)  # 0.8 - 0.7

    def test_orphan_spans_stay_roots(self):
        # A truncated trace whose outermost span never closed: the inner
        # spans must survive as roots instead of vanishing.
        records = [
            _span("scenario/campaign/solve", 1, 0.2),
            _span("scenario/campaign", 2, 0.8),
        ]
        (root,) = build_span_forest(records)
        assert root.path == "scenario/campaign"
        assert [c.path for c in root.children] == ["scenario/campaign/solve"]

    def test_repeated_paths_group_under_one_closing_parent(self):
        records = [
            _span("a/b", 1, 0.1),
            _span("a/b", 2, 0.3),
            _span("a", 3, 0.5),
        ]
        (root,) = build_span_forest(records)
        assert [c.wall_s for c in root.children] == [0.1, 0.3]

    def test_no_spans_is_empty_forest(self):
        assert build_span_forest([{"type": "counter", "name": "c", "value": 1}]) == []


class TestChromeTrace:
    def _manifest(self):
        return {
            "type": "manifest",
            "schema": 1,
            "created_unix": 100.0,
            "host": "h",
            "repro_version": "1.0",
        }

    def test_structure_and_nesting(self):
        converted = chrome_trace(self._manifest(), _sample_records())
        events = converted["traceEvents"]
        assert converted["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X"}
        spans = {
            (e["args"]["path"], e["ts"]): e for e in events if e["ph"] == "X"
        }
        root = spans[("scenario", 0.0)]
        campaign = spans[("scenario/campaign", 0.0)]
        assert root["dur"] == pytest.approx(1.0e6)
        assert campaign["dur"] == pytest.approx(0.8e6)
        # Sibling solves are packed sequentially inside the campaign.
        assert spans[("scenario/campaign/solve", 0.0)]["dur"] == pytest.approx(0.2e6)
        assert spans[("scenario/campaign/solve", 0.2e6)]["dur"] == pytest.approx(0.5e6)
        # Every child interval sits inside its parent's interval.
        for (path, ts), event in spans.items():
            if path == "scenario":
                continue
            assert ts >= root["ts"]
            assert ts + event["dur"] <= root["ts"] + root["dur"] + 1e-6

    def test_counters_and_manifest_in_other_data(self):
        converted = chrome_trace(self._manifest(), _sample_records())
        other = converted["otherData"]
        assert other["host"] == "h"
        assert "type" not in other
        assert other["counters"] == {"engine.campaign.trials": 2}

    def test_instant_event_pinned_to_enclosing_span_start(self):
        records = [
            _span("a/b", 1, 0.1),
            {
                "type": "event",
                "name": "boundary",
                "path": "a/b",
                "seq": 2,
                "fields": {"n": 1},
            },
            _span("a/b", 3, 0.3),
            _span("a", 4, 0.5),
        ]
        converted = chrome_trace(self._manifest(), records)
        (instant,) = [e for e in converted["traceEvents"] if e["ph"] == "i"]
        # seq 2 fired inside the span instance that closed at seq 3,
        # whose synthesized start is 0.1 s (after its 0.1 s sibling).
        assert instant["ts"] == pytest.approx(0.1e6)
        assert instant["args"] == {"n": 1}

    def test_output_is_json_serializable(self):
        converted = chrome_trace(self._manifest(), _sample_records())
        assert json.loads(json.dumps(converted)) == converted

    def test_real_recorder_round_trip(self):
        rec = TraceRecorder()
        rec.set_manifest(scenario_id="tiny")
        with rec.span("campaign", mode="fixed"):
            with rec.span("solve"):
                rec.count("engine.batch.gd_solves", 1)
            rec.event("scheduler.stop", reason="budget")
        records = rec.records(now=100.0)
        converted = chrome_trace(records[0], records[1:])
        names = [e["name"] for e in converted["traceEvents"]]
        assert "campaign" in names and "solve" in names
        assert "scheduler.stop" in names


class TestCriticalPath:
    def test_follows_slowest_chain(self):
        records = _sample_records() + [
            _span("scenario/io", 5, 0.05),
            _span("other-root", 6, 0.3),
        ]
        rows = critical_path(records)
        assert [row["path"] for row in rows] == [
            "scenario",
            "scenario/campaign",
            "scenario/campaign/solve",
        ]
        assert [row["depth"] for row in rows] == [0, 1, 2]
        assert rows[0]["share_of_root"] == pytest.approx(1.0)
        assert rows[1]["share_of_root"] == pytest.approx(0.8)
        # The chain descends into the 0.5 s solve, not the 0.2 s one.
        assert rows[2]["wall_s"] == pytest.approx(0.5)
        assert rows[2]["calls_at_path"] == 2

    def test_utilization_ratio(self):
        records = [_span("a", 1, 2.0, cpu_s=4.0)]
        (row,) = critical_path(records)
        assert row["utilization"] == pytest.approx(2.0)

    def test_empty_trace(self):
        assert critical_path([]) == []
        assert render_critical_path([]) == "no spans in trace"

    def test_render_names_hottest_self_time(self):
        rendered = render_critical_path(critical_path(_sample_records()))
        assert "critical path (3 hops" in rendered
        assert "hottest self time: scenario/campaign/solve" in rendered


# -- CLI surface ---------------------------------------------------------


def _run_traced(tmp_path):
    trace = tmp_path / "t.jsonl"
    code = main(
        [
            "run",
            "uniform-multilateration",
            "--seed",
            "1",
            "--trials",
            "2",
            "--store",
            str(tmp_path / "store"),
            "--trace",
            str(trace),
        ]
    )
    assert code == 0
    return trace


class TestTraceExportCli:
    def test_export_default_output_path(self, tmp_path, capsys):
        trace = _run_traced(tmp_path)
        capsys.readouterr()
        assert main(["trace", "export", str(trace)]) == 0
        out_path = tmp_path / "t.chrome.json"
        assert f"-> {out_path}" in capsys.readouterr().out
        with open(out_path, "r", encoding="utf-8") as fh:
            converted = json.load(fh)
        events = converted["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "solve" for e in events)
        assert all(e["dur"] >= 0 for e in events if e["ph"] == "X")
        assert converted["otherData"]["scenario_id"] == "uniform-multilateration"
        assert converted["otherData"]["counters"]["engine.campaign.trials"] == 2

    def test_export_explicit_output(self, tmp_path, capsys):
        trace = _run_traced(tmp_path)
        out = tmp_path / "custom.json"
        capsys.readouterr()
        assert main(["trace", "export", str(trace), "--out", str(out)]) == 0
        assert out.exists()

    def test_export_missing_trace_exits_2(self, tmp_path, capsys):
        assert main(["trace", "export", str(tmp_path / "nope.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_critical_path_renders(self, tmp_path, capsys):
        trace = _run_traced(tmp_path)
        capsys.readouterr()
        assert main(["trace", "critical-path", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "critical path (" in out
        assert "scenario/campaign" in out
        assert "hottest self time:" in out
