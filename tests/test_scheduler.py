"""Tests for the adaptive campaign scheduler.

The headline guarantee: an early-stopped campaign's committed trial
records are an *exact prefix* of the same-seed fixed-count campaign —
for any worker count — because trial seeds are keyed by index alone and
the stopping rule is evaluated only at fixed chunk boundaries on the
in-order record prefix.
"""

import numpy as np
import pytest

from repro.engine import (
    CampaignResult,
    ConfidenceStop,
    ScheduledCampaignResult,
    resolve_chunk_size,
    run_adaptive,
    run_monte_carlo,
)
from repro.errors import ValidationError


def _tight_trial(rng):
    """Low-variance metric: converges quickly."""
    return {"x": float(rng.normal(5.0, 0.05))}


def _wild_trial(rng):
    """High-variance metric: never converges within small budgets."""
    return {"x": float(rng.normal(0.0, 100.0))}


def _sometimes_nan_trial(rng):
    value = rng.normal(2.0, 0.01)
    if rng.random() < 0.3:
        return {"x": float("nan")}
    return {"x": float(value)}


class TestConfidenceStop:
    def test_validation(self):
        with pytest.raises(ValidationError):
            ConfidenceStop(confidence=1.0)
        with pytest.raises(ValidationError):
            ConfidenceStop(tolerance=0.0)
        with pytest.raises(ValidationError):
            ConfidenceStop(min_trials=1)

    def test_half_width_matches_manual_formula(self):
        stop = ConfidenceStop(metric="x", tolerance=0.1, confidence=0.95)
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        expected = 1.959963984540054 * values.std(ddof=1) / np.sqrt(5)
        assert stop.half_width(values) == pytest.approx(expected, rel=1e-12)

    def test_half_width_needs_two_finite_samples(self):
        stop = ConfidenceStop()
        assert stop.half_width(np.array([1.0])) == float("inf")
        assert stop.half_width(np.array([1.0, float("nan")])) == float("inf")

    def test_satisfied_requires_min_trials(self):
        stop = ConfidenceStop(metric="x", tolerance=100.0, min_trials=8)
        assert not stop.satisfied(np.ones(7))
        assert stop.satisfied(np.ones(8))

    def test_nan_values_do_not_count_toward_min_trials(self):
        stop = ConfidenceStop(metric="x", tolerance=100.0, min_trials=4)
        values = np.array([1.0, 1.0, float("nan"), float("nan"), 1.0])
        assert not stop.satisfied(values)

    def test_relative_mode(self):
        stop = ConfidenceStop(metric="x", tolerance=0.5, relative=True, min_trials=2)
        # mean 10, std tiny -> relative half-width far below 0.5
        assert stop.satisfied(np.array([10.0, 10.01, 9.99, 10.0]))
        # mean ~0 with spread can never satisfy a relative tolerance
        assert not stop.satisfied(np.array([-1.0, 1.0, -1.0, 1.0]))

    def test_describe_is_canonical(self):
        stop = ConfidenceStop(metric="x", tolerance=0.25)
        desc = stop.describe()
        assert desc["rule"] == "confidence" and desc["tolerance"] == 0.25

    def test_z_value_is_computed_once_per_confidence(self):
        """Regression: z_value() used to re-import scipy.stats and
        recompute the quantile at every chunk-boundary evaluation; it is
        now a module-level lru_cache keyed on the confidence level."""
        from repro.engine.scheduler import _normal_quantile

        _normal_quantile.cache_clear()
        stop_a = ConfidenceStop(metric="x", confidence=0.95)
        stop_b = ConfidenceStop(metric="y", confidence=0.95)
        values = np.array([1.0, 2.0, 3.0, 4.0])
        for _ in range(3):
            stop_a.half_width(values)
            stop_b.half_width(values)
        info = _normal_quantile.cache_info()
        assert info.misses == 1  # one ppf evaluation for 0.95, ever
        assert info.hits == 5
        assert stop_a.z_value() == pytest.approx(1.959963984540054, rel=1e-12)
        # A different confidence level is its own cache line.
        ConfidenceStop(confidence=0.99).z_value()
        assert _normal_quantile.cache_info().misses == 2


class TestResolveChunkSize:
    def test_default_from_rule(self):
        assert resolve_chunk_size(ConfidenceStop(min_trials=8), None) == 4
        assert resolve_chunk_size(ConfidenceStop(min_trials=20), None) == 10

    def test_explicit_value(self):
        assert resolve_chunk_size(ConfidenceStop(), 7) == 7
        with pytest.raises(ValidationError):
            resolve_chunk_size(ConfidenceStop(), 0)


class TestEarlyStopping:
    def test_converges_early_on_tight_metric(self):
        stop = ConfidenceStop(metric="x", tolerance=0.05, min_trials=8)
        result = run_adaptive(_tight_trial, 100, stopping=stop, master_seed=1)
        assert isinstance(result, ScheduledCampaignResult)
        assert result.converged
        assert result.n_trials < 100
        assert result.trials_saved == 100 - result.n_trials
        assert "within tolerance" in result.stop_reason

    def test_exhausts_budget_on_wild_metric(self):
        stop = ConfidenceStop(metric="x", tolerance=0.01, min_trials=8)
        result = run_adaptive(_wild_trial, 16, stopping=stop, master_seed=1)
        assert not result.converged
        assert result.n_trials == 16
        assert result.trials_saved == 0
        assert "budget exhausted" in result.stop_reason

    def test_early_stop_is_exact_prefix_of_fixed_run(self):
        """The acceptance contract: records, metrics, and aggregates of
        the early-stopped campaign equal the fixed campaign's prefix."""
        stop = ConfidenceStop(metric="x", tolerance=0.05, min_trials=8)
        adaptive = run_adaptive(_tight_trial, 100, stopping=stop, master_seed=9)
        fixed = run_monte_carlo(_tight_trial, 100, master_seed=9)
        assert adaptive.converged and adaptive.n_trials < fixed.n_trials
        assert adaptive.records == fixed.records[: adaptive.n_trials]
        prefix = CampaignResult(
            master_seed=9, records=fixed.records[: adaptive.n_trials]
        )
        assert adaptive.aggregate() == prefix.aggregate()

    def test_stops_only_at_chunk_boundaries(self):
        stop = ConfidenceStop(metric="x", tolerance=1e9, min_trials=2)
        result = run_adaptive(
            _tight_trial, 100, stopping=stop, master_seed=0, chunk_size=7
        )
        assert result.n_trials == 7
        assert result.chunk_size == 7

    def test_half_width_trace_tracks_boundaries(self):
        stop = ConfidenceStop(metric="x", tolerance=0.0001, min_trials=4)
        result = run_adaptive(
            _tight_trial, 12, stopping=stop, master_seed=0, chunk_size=4
        )
        assert not result.converged
        assert len(result.half_width_trace) == 3  # boundaries at 4, 8, 12
        assert all(np.isfinite(result.half_width_trace))

    def test_nan_trials_consume_budget_but_not_confidence(self):
        stop = ConfidenceStop(metric="x", tolerance=0.05, min_trials=8)
        result = run_adaptive(_sometimes_nan_trial, 60, stopping=stop, master_seed=2)
        agg = result.aggregate()["x"]
        assert agg["n_nan"] > 0
        assert result.converged
        assert agg["n"] >= 8

    def test_validation(self):
        stop = ConfidenceStop()
        with pytest.raises(ValidationError):
            run_adaptive(_tight_trial, 0, stopping=stop)
        with pytest.raises(ValidationError):
            run_adaptive(_tight_trial, 4, stopping=stop, n_workers=0)
        with pytest.raises(ValidationError):
            run_adaptive(_tight_trial, 4, stopping="confidence")


class TestWorkerIndependence:
    @pytest.mark.slow
    def test_committed_prefix_identical_for_any_worker_count(self):
        """Workers may speculate past the stopping point, but the
        committed records must match the serial run exactly."""
        stop = ConfidenceStop(metric="x", tolerance=0.05, min_trials=8)
        serial = run_adaptive(_tight_trial, 64, stopping=stop, master_seed=5)
        parallel = run_adaptive(
            _tight_trial, 64, stopping=stop, master_seed=5, n_workers=4
        )
        assert serial.converged and parallel.converged
        assert parallel.records == serial.records
        assert parallel.aggregate() == serial.aggregate()
        assert parallel.half_width_trace == serial.half_width_trace

    @pytest.mark.slow
    def test_parallel_prefix_of_parallel_fixed_run(self):
        stop = ConfidenceStop(metric="x", tolerance=0.05, min_trials=8)
        adaptive = run_adaptive(
            _tight_trial, 64, stopping=stop, master_seed=5, n_workers=4
        )
        fixed = run_monte_carlo(_tight_trial, 64, master_seed=5, n_workers=4)
        assert adaptive.records == fixed.records[: adaptive.n_trials]
