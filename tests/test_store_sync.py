"""Tests for cross-store sync (`repro.store.sync`) and its CLI surface.

Entries are immutable content-addressed values, so syncing two stores is
a conflict-free set union; these tests pin that the union happens
byte-verbatim across any backend pair, that corrupt source entries never
propagate, and that the two-host shard workflow (shard on separate
stores → sync → merge) produces the canonical entry byte-identically.
"""

import pytest

from repro.__main__ import main
from repro.scenarios import get_scenario, run_scenario, scenario_run_key
from repro.store import ResultStore, StoreDiff, diff, migrate, pull, push

from test_store_backends import BACKENDS, make_store


def _fill(store, names):
    keys = {}
    for name in names:
        key = store.key_for(name)
        store.put(key, {"type": "campaign", "master_seed": 0, "records": [], "tag": name})
        keys[name] = key
    return keys


class TestDiff:
    def test_disjoint_overlapping_and_empty(self, tmp_path):
        a = make_store(tmp_path, "filesystem", name="a")
        b = make_store(tmp_path, "sqlite", name="b")
        keys_a = _fill(a, ["only-a", "both"])
        _fill(b, ["only-b", "both"])
        d = diff(a, b)
        assert d.missing_in_dst == (keys_a["only-a"],)
        assert len(d.missing_in_src) == 1
        assert d.common == 1
        assert not d.in_sync
        assert diff(a, a) == StoreDiff((), (), 2)
        assert diff(a, a).in_sync


@pytest.mark.parametrize("src_backend", BACKENDS)
@pytest.mark.parametrize("dst_backend", BACKENDS)
class TestPushAcrossBackendPairs:
    def test_push_copies_missing_byte_verbatim(self, tmp_path, src_backend, dst_backend):
        src = make_store(tmp_path, src_backend, name="src")
        dst = make_store(tmp_path, dst_backend, name="dst")
        keys = _fill(src, ["x", "y"])
        _fill(dst, ["y"])
        report = push(src, dst)
        assert set(report.copied) == {keys["x"]}
        assert report.skipped_present == 1
        assert report.skipped_corrupt == ()
        assert diff(src, dst).missing_in_dst == ()
        for key in keys.values():
            assert dst.get_bytes(key) == src.get_bytes(key)

    def test_pull_is_push_reversed(self, tmp_path, src_backend, dst_backend):
        src = make_store(tmp_path, src_backend, name="src")
        dst = make_store(tmp_path, dst_backend, name="dst")
        keys = _fill(src, ["x"])
        report = pull(dst, src)
        assert set(report.copied) == set(keys.values())
        assert dst.get_bytes(keys["x"]) == src.get_bytes(keys["x"])


class TestCorruptionHandling:
    def test_corrupt_source_entry_is_not_propagated(self, tmp_path):
        src = make_store(tmp_path, "filesystem", name="src")
        dst = make_store(tmp_path, "sqlite", name="dst")
        keys = _fill(src, ["good", "bad"])
        src.backend.write_bytes(keys["bad"], b"\x1f\x8b torn")
        report = push(src, dst)
        assert set(report.copied) == {keys["good"]}
        assert report.skipped_corrupt == (keys["bad"],)
        assert not dst.contains(keys["bad"])

    def test_migrate_refuses_to_silently_drop_corrupt_entries(self, tmp_path):
        from repro.errors import ValidationError

        src = make_store(tmp_path, "filesystem", name="src")
        dst = make_store(tmp_path, "sqlite", name="dst")
        keys = _fill(src, ["bad"])
        src.backend.write_bytes(keys["bad"], b"not even gzip")
        with pytest.raises(ValidationError, match="left 1 entries behind"):
            migrate(src, dst)


class TestTwoHostShardWorkflow:
    """The subsystem's reason to exist: physically separate hosts
    exchange shard entries through sync, then merge."""

    SCENARIO = "uniform-multilateration"
    ARGS = ["--seed", "3", "--trials", "6"]

    def _canonical_bytes(self, store):
        # The CLI published under the default code version — re-open the
        # store with it so key_for addresses the same entry.
        cli_view = ResultStore(store.root)
        spec = get_scenario(self.SCENARIO)
        key = cli_view.key_for(scenario_run_key(spec, master_seed=3, n_trials=6))
        data = cli_view.get_bytes(key)
        assert data is not None, "canonical campaign entry missing"
        return data

    @pytest.mark.parametrize("merge_backend", BACKENDS)
    def test_sync_then_merge_matches_single_host(self, tmp_path, merge_backend):
        host_a = make_store(tmp_path, merge_backend, name="host-a")
        host_b = make_store(tmp_path, "filesystem", name="host-b")
        run = ["run", self.SCENARIO, *self.ARGS]
        assert main([*run, "--shard", "1/3", "--store", str(host_a.root)]) == 0
        assert main([*run, "--shard", "2/3", "--store", str(host_a.root)]) == 0
        assert main([*run, "--shard", "3/3", "--store", str(host_b.root)]) == 0

        assert main(["store", "sync", str(host_b.root), str(host_a.root)]) == 0
        code = main(
            [
                "merge",
                self.SCENARIO,
                *self.ARGS,
                "--shards",
                "3",
                "--store",
                str(host_a.root),
            ]
        )
        assert code == 0

        single = ResultStore(tmp_path / "single")
        run_scenario(
            get_scenario(self.SCENARIO), master_seed=3, n_trials=6, store=single
        )
        assert self._canonical_bytes(host_a) == self._canonical_bytes(single)

    def test_two_way_sync_equalizes_stores(self, tmp_path, capsys):
        a = make_store(tmp_path, "filesystem", name="a")
        b = make_store(tmp_path, "sqlite", name="b")
        _fill(a, ["only-a"])
        _fill(b, ["only-b"])
        assert main(["store", "sync", str(a.root), str(b.root), "--two-way"]) == 0
        out = capsys.readouterr().out
        assert out.count("copied 1 entries") == 2
        assert diff(a, b).in_sync


class TestCliSourceValidation:
    """A typo'd SRC must fail loudly, not open an empty store and
    'successfully' copy nothing."""

    @pytest.mark.parametrize("command", ["sync", "migrate"])
    def test_nonexistent_src_exits_2(self, tmp_path, command, capsys):
        code = main(
            ["store", command, str(tmp_path / "no-such-store"), str(tmp_path / "dst")]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err
        assert not (tmp_path / "dst").exists()


class TestCliMigrate:
    def test_migrate_command_reports_backends(self, tmp_path, capsys):
        src = make_store(tmp_path, "filesystem", name="src")
        _fill(src, ["x", "y"])
        dst_path = tmp_path / "dst.sqlite"
        assert main(["store", "migrate", str(src.root), str(dst_path)]) == 0
        out = capsys.readouterr().out
        assert "(filesystem)" in out and "(sqlite)" in out
        assert "copied 2 entries" in out
        assert len(ResultStore(dst_path)) == 2
