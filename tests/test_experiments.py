"""End-to-end reproduction tests: every paper experiment's shape checks.

These are the headline tests: each driver runs its full experiment
(simulated campaign, localization, evaluation) and the test asserts all
of the driver's qualitative reproduction criteria hold.  The shared
grass campaign is cached per process, so the whole module runs in well
under a minute.
"""

import pytest

from repro.experiments import DEFAULT_SEED, all_experiments, get_experiment, run_experiment
from repro.experiments.base import ExperimentResult

EXPERIMENT_IDS = sorted(all_experiments())


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_experiment_shape_checks(experiment_id):
    result = run_experiment(experiment_id)
    assert isinstance(result, ExperimentResult)
    failed = [c for c in result.checks if not c.passed]
    detail = "; ".join(f"{c.name} ({c.detail})" for c in failed)
    assert result.passed, f"{experiment_id} failed: {detail}"


def test_registry_covers_all_figures():
    expected = {
        "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10", "fig11",
        "fig12", "fig14", "fig16", "fig18", "fig19", "fig20", "fig21",
        "fig22", "fig23", "fig24", "fig25",
        "text-range", "text-sync", "text-chirp",
        "ext-xsm", "ext-protocol", "ext-scaling", "ext-aps", "ext-campaign",
        "ext-sweep", "ext-distributed",
    }
    assert set(EXPERIMENT_IDS) == expected


def test_unknown_experiment_id():
    with pytest.raises(KeyError, match="fig18"):
        get_experiment("fig99")


def test_summary_renders():
    result = run_experiment("text-sync")
    text = result.summary()
    assert "text-sync" in text
    assert "paper=" in text and "measured=" in text
    assert "PASS" in text


def test_experiments_record_paper_values():
    for experiment_id in EXPERIMENT_IDS:
        driver = get_experiment(experiment_id)
        result = driver(DEFAULT_SEED)
        assert result.paper, f"{experiment_id} records no paper values"
        assert result.measured, f"{experiment_id} records no measurements"
        assert result.checks, f"{experiment_id} has no shape checks"
