"""Seeded kernel inputs shared by the backend parity harness.

The differential tests in ``tests/test_backend_parity.py`` and the
pre-seam golden byte pins both need the *same* deterministic problem
stacks: each builder here derives every array from a fixed
``numpy.random.default_rng`` seed, so the inputs are bit-identical
across processes, test runs, and the pin-generation script that froze
the pre-seam hashes.  Keep these builders pure (no global state, no
time, no platform queries) — the byte pins depend on it.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.lss import LssConfig
from repro.core.measurements import EdgeList


def sha256_bytes(*arrays) -> str:
    """Stable content hash of a tuple of float/bool arrays.

    Arrays are coerced to C-contiguous canonical dtypes (float64 /
    bool) first so the hash reflects values, not incidental strides.
    """
    digest = hashlib.sha256()
    for arr in arrays:
        arr = np.asarray(arr)
        if arr.dtype != np.bool_:
            arr = arr.astype(np.float64, copy=False)
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


def multilateration_problems(seed: int = 20050, n_problems: int = 6):
    """Heterogeneous multilateration problems (anchor/dist/weight sets)."""
    rng = np.random.default_rng(seed)
    anchor_sets, dist_sets, weight_sets = [], [], []
    for b in range(n_problems):
        k = 3 + (b % 4)
        anchors = rng.uniform(0.0, 40.0, size=(k, 2))
        truth = rng.uniform(5.0, 35.0, size=2)
        dists = np.hypot(*(anchors - truth).T) + rng.normal(0.0, 0.3, size=k)
        weights = rng.uniform(0.5, 1.0, size=k)
        anchor_sets.append(anchors)
        dist_sets.append(np.abs(dists))
        weight_sets.append(weights)
    return anchor_sets, dist_sets, weight_sets


def shared_edge_problem(seed: int = 20051, n_nodes: int = 8, n_batch: int = 5):
    """One shared-edge LSS problem: edge list + stacked configurations."""
    rng = np.random.default_rng(seed)
    truth = rng.uniform(0.0, 20.0, size=(n_nodes, 2))
    pairs = []
    for i in range(n_nodes):
        for j in range(i + 1, n_nodes):
            if rng.uniform() < 0.6:
                pairs.append((i, j))
    pairs = np.asarray(pairs, dtype=np.int64)
    diff = truth[pairs[:, 0]] - truth[pairs[:, 1]]
    dists = np.hypot(diff[:, 0], diff[:, 1]) + rng.normal(0.0, 0.2, size=len(pairs))
    edges = EdgeList(
        pairs=pairs,
        distances=np.abs(dists),
        weights=rng.uniform(0.5, 1.0, size=len(pairs)),
    )
    configs = rng.uniform(0.0, 20.0, size=(n_batch, n_nodes, 2))
    free_mask = np.ones(n_nodes, dtype=bool)
    free_mask[0] = False
    return edges, configs, free_mask


def padded_problem_stack(seed: int = 20052, n_problems: int = 5):
    """Heterogeneous padded LSS stacks with masked soft constraints."""
    rng = np.random.default_rng(seed)
    sizes = [4 + (b % 3) for b in range(n_problems)]
    max_nodes = max(sizes)
    edge_lists, constraint_lists = [], []
    for n in sizes:
        truth = rng.uniform(0.0, 12.0, size=(n, 2))
        measured, unmeasured = [], []
        for i in range(n):
            for j in range(i + 1, n):
                (measured if rng.uniform() < 0.7 else unmeasured).append((i, j))
        if not measured:  # pragma: no cover - seed-dependent guard
            measured, unmeasured = unmeasured[:3], unmeasured[3:]
        mp = np.asarray(measured, dtype=np.int64)
        diff = truth[mp[:, 0]] - truth[mp[:, 1]]
        d = np.abs(
            np.hypot(diff[:, 0], diff[:, 1]) + rng.normal(0.0, 0.15, size=len(mp))
        )
        edge_lists.append((mp, d, rng.uniform(0.5, 1.0, size=len(mp))))
        constraint_lists.append(np.asarray(unmeasured, dtype=np.int64).reshape(-1, 2))

    max_edges = max(len(e[0]) for e in edge_lists)
    pairs = np.zeros((n_problems, max_edges, 2), dtype=np.int64)
    dists = np.zeros((n_problems, max_edges))
    weights = np.zeros((n_problems, max_edges))
    for b, (mp, d, w) in enumerate(edge_lists):
        pairs[b, : len(mp)] = mp
        dists[b, : len(mp)] = d
        weights[b, : len(mp)] = w

    max_constraints = max(c.shape[0] for c in constraint_lists)
    constraint_pairs = None
    constraint_valid = None
    if max_constraints:
        constraint_pairs = np.zeros((n_problems, max_constraints, 2), dtype=np.int64)
        constraint_valid = np.zeros((n_problems, max_constraints), dtype=bool)
        for b, c in enumerate(constraint_lists):
            constraint_pairs[b, : c.shape[0]] = c
            constraint_valid[b, : c.shape[0]] = True

    configs = rng.uniform(0.0, 12.0, size=(n_problems, max_nodes, 2))
    for b, n in enumerate(sizes):
        configs[b, n:] = 0.0
    return {
        "configs": configs,
        "pairs": pairs,
        "dists": dists,
        "weights": weights,
        "constraint_pairs": constraint_pairs,
        "constraint_valid": constraint_valid,
        "min_spacing_m": 2.0,
        "sizes": sizes,
    }


def local_map_stack(seed: int = 20053, n_problems: int = 4):
    """LocalLssProblem-shaped stacks for ``solve_local_lss_stack``."""
    rng = np.random.default_rng(seed)
    problems = []
    for b in range(n_problems):
        n = 4 + (b % 3)
        truth = rng.uniform(0.0, 10.0, size=(n, 2))
        pairs = []
        for i in range(n):
            for j in range(i + 1, n):
                if rng.uniform() < 0.8:
                    pairs.append((i, j))
        pairs = np.asarray(pairs, dtype=np.int64)
        diff = truth[pairs[:, 0]] - truth[pairs[:, 1]]
        d = np.abs(
            np.hypot(diff[:, 0], diff[:, 1]) + rng.normal(0.0, 0.1, size=len(pairs))
        )
        problems.append(
            {
                "n_nodes": n,
                "pairs": pairs,
                "distances": d,
                "weights": rng.uniform(0.5, 1.0, size=len(pairs)),
                "initial": rng.uniform(0.0, 10.0, size=(n, 2)),
            }
        )
    return problems


def local_lss_config() -> LssConfig:
    """Small, deterministic multistart budget for the stacked solver."""
    return LssConfig(restarts=2, max_epochs=150, min_spacing_m=1.5)


def transform_stacks(seed: int = 20054, n_problems: int = 7, max_shared: int = 6):
    """Padded rigid-transform correspondence stacks with validity masks."""
    rng = np.random.default_rng(seed)
    sources = np.zeros((n_problems, max_shared, 2))
    targets = np.zeros((n_problems, max_shared, 2))
    valid = np.zeros((n_problems, max_shared), dtype=bool)
    for p in range(n_problems):
        n = 2 + (p % (max_shared - 1))
        src = rng.uniform(-5.0, 5.0, size=(n, 2))
        theta = rng.uniform(0.0, 2.0 * np.pi)
        c, s = np.cos(theta), np.sin(theta)
        rot = np.array([[c, -s], [s, c]])
        if p % 3 == 0:
            rot = rot @ np.array([[1.0, 0.0], [0.0, -1.0]])
        tgt = src @ rot + rng.uniform(-3.0, 3.0, size=2)
        tgt += rng.normal(0.0, 0.05, size=tgt.shape)
        sources[p, :n] = src
        targets[p, :n] = tgt
        valid[p, :n] = True
    return sources, targets, valid
