"""Tests for the ranging service (repro.ranging.service)."""

import numpy as np
import pytest

from repro.acoustics import ChirpPattern, get_environment
from repro.errors import CalibrationError, ValidationError
from repro.ranging.link import LinkRealization
from repro.ranging.service import DetectionParams, RangingService
from repro.ranging.tdoa import TdoaConfig

CLEAN_LINK = LinkRealization(link_gain_db=0.0)


@pytest.fixture(scope="module")
def grass_service():
    return RangingService(environment=get_environment("grass")).calibrate(rng=0)


class TestDetectionParams:
    def test_paper_defaults(self):
        params = DetectionParams()
        assert params.threshold == 2
        assert params.k == 6
        assert params.m == 32

    def test_invalid(self):
        with pytest.raises(ValidationError):
            DetectionParams(threshold=0)
        with pytest.raises(ValidationError):
            DetectionParams(k=40, m=32)


class TestServiceConstruction:
    def test_invalid_mode(self):
        with pytest.raises(ValidationError):
            RangingService(environment=get_environment("grass"), mode="fancy")

    def test_link_simulator_built(self):
        service = RangingService(environment=get_environment("grass"))
        assert service.link_simulator is not None
        assert service.link_simulator.environment.name == "grass"


class TestMeasure:
    def test_accurate_at_short_range(self, grass_service):
        rng = np.random.default_rng(1)
        estimates = [
            grass_service.measure(6.0, link=CLEAN_LINK, rng=rng) for _ in range(20)
        ]
        estimates = [e for e in estimates if e is not None]
        assert len(estimates) >= 18
        errors = np.abs(np.array(estimates) - 6.0)
        assert np.median(errors) < 0.35

    def test_none_far_out_of_range(self, grass_service):
        rng = np.random.default_rng(2)
        svc = grass_service
        # Disable impulsive noise so out-of-range truly yields None.
        svc.link_simulator.long_noise_probability = 0.0
        try:
            results = [svc.measure(60.0, link=CLEAN_LINK, rng=rng) for _ in range(10)]
        finally:
            svc.link_simulator.long_noise_probability = 0.03
        assert all(r is None for r in results)

    def test_estimates_non_negative(self, grass_service):
        rng = np.random.default_rng(3)
        for d in (2.0, 9.0, 15.0):
            est = grass_service.measure(d, link=CLEAN_LINK, rng=rng)
            if est is not None:
                assert est >= 0.0

    def test_baseline_mode_runs(self):
        service = RangingService(
            environment=get_environment("urban"), mode="baseline"
        )
        rng = np.random.default_rng(4)
        estimates = [
            service.measure(8.0, link=CLEAN_LINK, rng=rng) for _ in range(10)
        ]
        assert any(e is not None for e in estimates)

    def test_baseline_noisier_than_refined(self):
        env = get_environment("urban")
        rng = np.random.default_rng(5)
        baseline = RangingService(environment=env, mode="baseline").calibrate(rng=rng)
        refined = RangingService(environment=env).calibrate(rng=rng)

        def large_error_rate(service):
            errors = []
            for d in np.linspace(5, 20, 16):
                for _ in range(6):
                    link = service.link_simulator.draw_link(rng)
                    est = service.measure(float(d), link=link, rng=rng)
                    if est is not None:
                        errors.append(abs(est - d))
            errors = np.array(errors)
            return (errors > 1.0).mean()

        assert large_error_rate(baseline) > large_error_rate(refined)


class TestDetectionProbability:
    def test_high_at_close_range(self, grass_service):
        p = grass_service.detection_probability(6.0, attempts=20, rng=0)
        assert p >= 0.9

    def test_low_beyond_range(self, grass_service):
        p = grass_service.detection_probability(40.0, attempts=20, within_m=3.0, rng=0)
        assert p <= 0.1

    def test_within_filter_stricter(self, grass_service):
        rng = np.random.default_rng(6)
        loose = grass_service.detection_probability(18.0, attempts=40, rng=rng)
        strict = grass_service.detection_probability(
            18.0, attempts=40, within_m=0.5, rng=rng
        )
        assert strict <= loose + 0.15

    def test_invalid_attempts(self, grass_service):
        with pytest.raises(ValidationError):
            grass_service.detection_probability(5.0, attempts=0)


class TestCalibration:
    def test_reduces_bias(self):
        raw = RangingService(environment=get_environment("grass"))
        calibrated = raw.calibrate(rng=0)
        rng = np.random.default_rng(7)

        def bias(service):
            errors = []
            for _ in range(40):
                est = service.measure(8.0, link=CLEAN_LINK, rng=rng)
                if est is not None:
                    errors.append(est - 8.0)
            return abs(float(np.median(errors)))

        assert bias(calibrated) <= bias(raw) + 0.02

    def test_offset_in_paper_band(self):
        # "A constant offset of 10-20 cm may be added to every ranging
        # measurement" without calibration.
        calibrated = RangingService(environment=get_environment("grass")).calibrate(rng=0)
        assert 0.0 <= calibrated.tdoa.calibration_offset_m <= 0.4

    def test_hostile_environment_raises(self):
        env = get_environment("grass").with_overrides(
            excess_attenuation_db_per_m=30.0,
            false_positive_rate=0.0,
            noise_burst_rate_hz=0.0,
        )
        service = RangingService(environment=env)
        service.link_simulator.long_noise_probability = 0.0
        with pytest.raises(CalibrationError):
            service.calibrate(distances_m=(15.0, 20.0), rounds=2, rng=0)

    def test_returns_new_service(self):
        raw = RangingService(environment=get_environment("grass"))
        calibrated = raw.calibrate(rng=0)
        assert calibrated is not raw
        assert raw.tdoa.calibration_offset_m == 0.0
