"""Smoke test: the distributed-deployment example stays runnable.

The example is documentation that executes; this loads it by path (the
``examples/`` directory is not a package) and runs its quick mode,
which exercises the full story — acoustic field campaign, batched local
maps and transforms, alignment, and the scenario front door — with
reduced budgets.
"""

import importlib.util
import sys
from pathlib import Path

EXAMPLE = Path(__file__).resolve().parents[1] / "examples" / "distributed_deployment.py"


def _load_example():
    spec = importlib.util.spec_from_file_location("distributed_deployment", EXAMPLE)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_distributed_deployment_example_runs(capsys):
    module = _load_example()
    module.main(quick=True)
    out = capsys.readouterr().out
    assert "local maps" in out
    assert "fig 24" in out and "fig 25" in out
    assert "scenario grid-distributed-lss" in out
