"""Tests for the measurement data model (repro.core.measurements)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.measurements import EdgeList, MeasurementSet, RangeMeasurement
from repro.errors import ValidationError


class TestRangeMeasurement:
    def test_basic_fields(self):
        m = RangeMeasurement(0, 1, 9.5, true_distance=9.0, round_index=2)
        assert m.source == 0 and m.receiver == 1
        assert m.error == pytest.approx(0.5)

    def test_error_none_without_truth(self):
        assert RangeMeasurement(0, 1, 5.0).error is None

    def test_self_pair_rejected(self):
        with pytest.raises(ValidationError):
            RangeMeasurement(3, 3, 1.0)

    def test_negative_node_rejected(self):
        with pytest.raises(ValidationError):
            RangeMeasurement(-1, 0, 1.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValidationError):
            RangeMeasurement(0, 1, -2.0)

    def test_zero_distance_allowed(self):
        # Garbage detections at buffer start produce 0.0 estimates.
        assert RangeMeasurement(0, 1, 0.0).distance == 0.0


class TestMeasurementSetBasics:
    def test_empty(self):
        ms = MeasurementSet()
        assert len(ms) == 0
        assert ms.undirected_pairs == []
        assert ms.node_ids == []

    def test_add_and_len(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 5.0)
        ms.add_distance(0, 1, 5.2)
        ms.add_distance(1, 0, 4.9)
        assert len(ms) == 3
        assert ms.directed_pairs == [(0, 1), (1, 0)]
        assert ms.undirected_pairs == [(0, 1)]

    def test_contains(self):
        ms = MeasurementSet()
        ms.add_distance(2, 7, 3.0)
        assert (2, 7) in ms
        assert (7, 2) not in ms

    def test_get_and_distances(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 5.0)
        ms.add_distance(0, 1, 6.0)
        assert list(ms.distances(0, 1)) == [5.0, 6.0]
        assert ms.distances(1, 0).size == 0

    def test_neighbors(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 1.0)
        ms.add_distance(2, 0, 1.0)
        ms.add_distance(3, 4, 1.0)
        assert ms.neighbors(0) == [1, 2]
        assert ms.neighbors(3) == [4]
        assert ms.neighbors(9) == []

    def test_has_bidirectional(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 1.0)
        assert not ms.has_bidirectional(0, 1)
        ms.add_distance(1, 0, 1.0)
        assert ms.has_bidirectional(0, 1)
        assert ms.has_bidirectional(1, 0)

    def test_degree_histogram(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 1.0)
        ms.add_distance(0, 2, 1.0)
        assert ms.degree_histogram() == {0: 2, 1: 1, 2: 1}

    def test_merge(self):
        a = MeasurementSet()
        a.add_distance(0, 1, 1.0)
        b = MeasurementSet()
        b.add_distance(1, 2, 2.0)
        merged = a.merge(b)
        assert len(merged) == 2
        assert len(a) == 1 and len(b) == 1  # originals untouched

    def test_iteration_yields_all(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 1.0)
        ms.add_distance(0, 1, 2.0)
        ms.add_distance(2, 3, 3.0)
        assert sorted(m.distance for m in ms) == [1.0, 2.0, 3.0]

    def test_filter(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 1.0)
        ms.add_distance(0, 2, 10.0)
        kept = ms.filter(lambda m: m.distance < 5)
        assert len(kept) == 1

    def test_restrict_to_nodes(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 1.0)
        ms.add_distance(1, 2, 1.0)
        ms.add_distance(2, 3, 1.0)
        sub = ms.restrict_to_nodes([0, 1, 2])
        assert sub.undirected_pairs == [(0, 1), (1, 2)]

    def test_signed_errors(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 5.0, true_distance=4.0)
        ms.add_distance(1, 2, 3.0)  # no truth
        errs = ms.signed_errors()
        assert errs == pytest.approx([1.0])


class TestReduce:
    def test_median(self):
        ms = MeasurementSet()
        for d in (5.0, 100.0, 5.2):
            ms.add_distance(0, 1, d)
        reduced = ms.reduce("median")
        assert len(reduced) == 1
        assert reduced.distances(0, 1)[0] == pytest.approx(5.2)

    def test_mean(self):
        ms = MeasurementSet()
        for d in (4.0, 6.0):
            ms.add_distance(0, 1, d)
        assert ms.reduce("mean").distances(0, 1)[0] == pytest.approx(5.0)

    def test_mode_resists_outliers(self):
        ms = MeasurementSet()
        for d in (5.0, 5.1, 5.2, 4.9, 17.0, 18.0):
            ms.add_distance(0, 1, d)
        value = ms.reduce("mode").distances(0, 1)[0]
        assert 4.8 <= value <= 5.3

    def test_mode_single_value(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 7.7)
        assert ms.reduce("mode").distances(0, 1)[0] == pytest.approx(7.7)

    def test_unknown_statistic(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 1.0)
        with pytest.raises(ValidationError):
            ms.reduce("max")

    def test_truth_preserved_when_consistent(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 5.0, true_distance=5.5)
        ms.add_distance(0, 1, 5.4, true_distance=5.5)
        reduced = ms.reduce("median")
        assert reduced.get(0, 1)[0].true_distance == pytest.approx(5.5)

    def test_reduce_idempotent(self):
        ms = MeasurementSet()
        for d in (1.0, 2.0, 3.0):
            ms.add_distance(0, 1, d)
        once = ms.reduce("median")
        twice = once.reduce("median")
        assert once.distances(0, 1)[0] == twice.distances(0, 1)[0]


class TestSymmetrize:
    def test_averages_directions(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 10.0)
        ms.add_distance(1, 0, 12.0)
        sym = ms.symmetrized()
        assert len(sym) == 1
        assert sym.distances(0, 1)[0] == pytest.approx(11.0)

    def test_keeps_one_way(self):
        ms = MeasurementSet()
        ms.add_distance(1, 0, 7.0)
        sym = ms.symmetrized()
        assert sym.distances(0, 1)[0] == pytest.approx(7.0)

    def test_stores_as_min_max(self):
        ms = MeasurementSet()
        ms.add_distance(5, 2, 3.0)
        sym = ms.symmetrized()
        assert sym.directed_pairs == [(2, 5)]


class TestEdgeList:
    def test_export(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 5.0)
        ms.add_distance(1, 0, 7.0)
        ms.add_distance(2, 0, 3.0)
        edges = ms.to_edge_list()
        assert len(edges) == 2
        lookup = {tuple(p): d for p, d in zip(edges.pairs, edges.distances)}
        assert lookup[(0, 1)] == pytest.approx(6.0)
        assert lookup[(0, 2)] == pytest.approx(3.0)
        assert np.all(edges.weights == 1.0)

    def test_weight_fn(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 10.0)
        edges = ms.to_edge_list(weight_fn=lambda d: 1.0 / d)
        assert edges.weights[0] == pytest.approx(0.1)

    def test_empty_export(self):
        edges = MeasurementSet().to_edge_list()
        assert len(edges) == 0
        assert edges.pairs.shape == (0, 2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            EdgeList(
                pairs=np.zeros((2, 2), dtype=np.int64),
                distances=np.zeros(3),
                weights=np.zeros(2),
            )


class TestFromEdgeArrays:
    def test_roundtrip(self):
        pairs = np.array([[0, 1], [1, 2]])
        dists = np.array([3.0, 4.0])
        ms = MeasurementSet.from_edge_arrays(pairs, dists, true_distances=[3.1, 4.1])
        assert len(ms) == 2
        assert ms.get(0, 1)[0].true_distance == pytest.approx(3.1)

    def test_bad_shapes(self):
        with pytest.raises(ValidationError):
            MeasurementSet.from_edge_arrays(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValidationError):
            MeasurementSet.from_edge_arrays(np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ValidationError):
            MeasurementSet.from_edge_arrays(
                np.zeros((2, 2)) + [[0, 1], [1, 2]],
                np.zeros(2),
                true_distances=np.zeros(1),
            )


@given(
    distances=st.lists(st.floats(0.1, 50.0), min_size=1, max_size=9),
)
@settings(max_examples=50, deadline=None)
def test_median_reduce_between_min_and_max(distances):
    ms = MeasurementSet()
    for d in distances:
        ms.add_distance(0, 1, d)
    value = ms.reduce("median").distances(0, 1)[0]
    assert min(distances) - 1e-9 <= value <= max(distances) + 1e-9


@given(
    forward=st.lists(st.floats(0.1, 50.0), min_size=1, max_size=5),
    backward=st.lists(st.floats(0.1, 50.0), min_size=1, max_size=5),
)
@settings(max_examples=50, deadline=None)
def test_symmetrized_between_direction_medians(forward, backward):
    ms = MeasurementSet()
    for d in forward:
        ms.add_distance(0, 1, d)
    for d in backward:
        ms.add_distance(1, 0, d)
    value = ms.symmetrized().distances(0, 1)[0]
    lo = min(np.median(forward), np.median(backward))
    hi = max(np.median(forward), np.median(backward))
    assert lo - 1e-9 <= value <= hi + 1e-9
