"""Public-API surface tests."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_subpackages_exposed(self):
        for name in (
            "acoustics",
            "core",
            "deploy",
            "engine",
            "network",
            "ranging",
            "scenarios",
            "store",
        ):
            assert hasattr(repro, name)

    def test_convenience_reexports(self):
        for name in (
            "MeasurementSet",
            "EdgeList",
            "LssConfig",
            "lss_localize",
            "multilaterate",
            "localize_network",
            "distributed_localize",
            "evaluate_localization",
            "RangingService",
            "gaussian_ranges",
            "run_campaign",
        ):
            assert hasattr(repro, name), name

    def test_all_entries_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_exceptions_exposed(self):
        assert issubclass(repro.ValidationError, repro.ReproError)


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.acoustics",
        "repro.network",
        "repro.ranging",
        "repro.deploy",
        "repro.engine",
        "repro.experiments",
    ],
)
def test_subpackage_all_resolvable(module):
    mod = importlib.import_module(module)
    assert hasattr(mod, "__all__")
    for name in mod.__all__:
        assert hasattr(mod, name), f"{module}.{name}"


def test_quickstart_docstring_example_runs():
    """The quickstart in the package docstring must actually work."""
    from repro import core, deploy, ranging

    positions = deploy.paper_grid(47)
    ranges = ranging.gaussian_ranges(positions, max_range_m=22.0, sigma_m=0.33, rng=7)
    result = core.lss_localize(
        ranges,
        len(positions),
        config=core.LssConfig(min_spacing_m=9.0, restarts=4),
        rng=7,
    )
    report = core.evaluate_localization(result.positions, positions, align=True)
    assert report.average_error < 2.0
