"""Tests for statistical filtering (repro.ranging.filtering)."""

import numpy as np
import pytest

from repro.core.measurements import MeasurementSet
from repro.errors import ValidationError
from repro.ranging.filtering import (
    confidence_weighted_edges,
    limit_rounds,
    median_filter,
    mode_filter,
    statistical_filter,
)


def multi_round_set():
    ms = MeasurementSet()
    # Pair (0,1): 5 rounds, one garbage.
    for r, d in enumerate((10.0, 10.1, 25.0, 9.9, 10.05)):
        ms.add_distance(0, 1, d, true_distance=10.0, round_index=r)
    # Pair (2,3): 2 rounds.
    for r, d in enumerate((5.0, 5.2)):
        ms.add_distance(2, 3, d, true_distance=5.0, round_index=r)
    return ms


class TestLimitRounds:
    def test_caps_rounds(self):
        ms = multi_round_set()
        limited = limit_rounds(ms, 2)
        assert len(limited.get(0, 1)) == 2

    def test_invalid(self):
        with pytest.raises(ValidationError):
            limit_rounds(multi_round_set(), 0)


class TestMedianFilter:
    def test_removes_outlier(self):
        filtered = median_filter(multi_round_set())
        assert filtered.distances(0, 1)[0] == pytest.approx(10.05)

    def test_max_rounds(self):
        filtered = median_filter(multi_round_set(), max_rounds=2)
        assert filtered.distances(0, 1)[0] == pytest.approx(10.05, abs=0.1)

    def test_one_measurement_per_pair_after(self):
        filtered = median_filter(multi_round_set())
        assert len(filtered) == 2


class TestModeFilter:
    def test_mode_resists_outliers(self):
        ms = MeasurementSet()
        for d in (8.0, 8.1, 7.9, 8.05, 30.0, 31.0):
            ms.add_distance(0, 1, d)
        filtered = mode_filter(ms)
        assert filtered.distances(0, 1)[0] == pytest.approx(8.0, abs=0.3)


class TestStatisticalFilter:
    def test_adaptive_choice(self):
        ms = multi_round_set()
        filtered = statistical_filter(ms, mode_threshold=5)
        # Pair (0,1) has 5 estimates -> mode; pair (2,3) has 2 -> median.
        assert filtered.distances(0, 1)[0] == pytest.approx(10.0, abs=0.3)
        assert filtered.distances(2, 3)[0] == pytest.approx(5.1, abs=0.15)

    def test_invalid_threshold(self):
        with pytest.raises(ValidationError):
            statistical_filter(multi_round_set(), mode_threshold=0)


class TestConfidenceWeightedEdges:
    def test_bidirectional_full_weight(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 10.0)
        ms.add_distance(1, 0, 10.2)
        edges = confidence_weighted_edges(ms)
        assert len(edges) == 1
        assert edges.weights[0] == 1.0
        assert edges.distances[0] == pytest.approx(10.1)

    def test_disagreeing_pair_dropped(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 10.0)
        ms.add_distance(1, 0, 14.0)
        edges = confidence_weighted_edges(ms)
        assert len(edges) == 0

    def test_repeated_oneway_medium_weight(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 10.0, round_index=0)
        ms.add_distance(0, 1, 10.3, round_index=1)
        edges = confidence_weighted_edges(ms)
        assert edges.weights[0] == 0.5

    def test_single_observation_low_weight(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 10.0)
        edges = confidence_weighted_edges(ms)
        assert edges.weights[0] == 0.15

    def test_inconsistent_repeats_low_weight(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 10.0, round_index=0)
        ms.add_distance(0, 1, 14.0, round_index=1)
        edges = confidence_weighted_edges(ms)
        assert edges.weights[0] == 0.15

    def test_empty_input(self):
        edges = confidence_weighted_edges(MeasurementSet())
        assert len(edges) == 0

    def test_invalid_weight_ordering(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 10.0)
        with pytest.raises(ValidationError):
            confidence_weighted_edges(ms, single_weight=0.9, repeated_weight=0.5)

    def test_invalid_tolerance(self):
        with pytest.raises(ValidationError):
            confidence_weighted_edges(MeasurementSet(), agreement_tolerance_m=-1.0)

    def test_mixed_population(self):
        ms = MeasurementSet()
        ms.add_distance(0, 1, 10.0)
        ms.add_distance(1, 0, 10.1)  # bidirectional
        ms.add_distance(2, 3, 5.0)
        ms.add_distance(2, 3, 5.1)  # repeated one-way
        ms.add_distance(4, 5, 7.0)  # single
        edges = confidence_weighted_edges(ms)
        weights = {tuple(p): w for p, w in zip(edges.pairs, edges.weights)}
        assert weights[(0, 1)] == 1.0
        assert weights[(2, 3)] == 0.5
        assert weights[(4, 5)] == 0.15
