"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import main
from repro.scenarios import get_scenario, scenario_run_key
from repro.store import ResultStore


class TestList:
    def test_lists_experiments_and_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out
        assert "ext-sweep" in out
        assert "town-multilateration" in out
        assert "experiments (" in out and "scenarios (" in out


class TestRun:
    def test_run_experiment_by_id(self, capsys):
        assert main(["run", "fig11", "--seed", "2005"]) == 0
        out = capsys.readouterr().out
        assert "[fig11]" in out and "PASS" in out

    def test_run_scenario_with_store(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "uniform-multilateration",
                "--seed",
                "1",
                "--trials",
                "2",
                "--store",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario: uniform-multilateration" in out
        assert "2 trials" in out
        assert "misses=1" in out
        # warm re-run hits the cache
        assert (
            main(
                [
                    "run",
                    "uniform-multilateration",
                    "--seed",
                    "1",
                    "--trials",
                    "2",
                    "--store",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert "hits=1" in capsys.readouterr().out

    def test_run_scenario_no_store(self, capsys):
        assert (
            main(
                ["run", "uniform-multilateration", "--trials", "2", "--no-store"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "store:" not in out

    def test_run_scenario_adaptive(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "uniform-multilateration",
                "--trials",
                "10",
                "--adaptive",
                "--tolerance",
                "1e9",
                "--store",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert "scheduler:" in capsys.readouterr().out

    def test_no_cache_flag_recomputes(self, tmp_path, capsys):
        args = [
            "run",
            "uniform-multilateration",
            "--trials",
            "2",
            "--store",
            str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--no-cache"]) == 0
        assert "hits=0" in capsys.readouterr().out

    def test_unknown_id_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown id" in capsys.readouterr().err


class TestExperimentFlagValidation:
    """Regression: scenario-only flags used to be silently ignored for
    experiment ids; they now exit with a clear usage error."""

    @pytest.mark.parametrize(
        "flags",
        [
            ["--workers", "4"],
            ["--trials", "8"],
            ["--adaptive"],
            ["--no-store"],
            ["--no-cache"],
            ["--metric", "median_error_m"],
            ["--tolerance", "0.5"],
            ["--shard", "1/2"],
            ["--workers", "4", "--adaptive"],
        ],
    )
    def test_scenario_only_flags_rejected_for_experiments(self, capsys, flags):
        assert main(["run", "fig11", *flags]) == 2
        err = capsys.readouterr().err
        assert "experiment id" in err
        assert flags[0] in err

    def test_store_flag_rejected_for_experiments(self, tmp_path, capsys):
        assert main(["run", "fig11", "--store", str(tmp_path)]) == 2
        assert "--store" in capsys.readouterr().err

    def test_seed_alone_still_works(self, capsys):
        assert main(["run", "fig11", "--seed", "2005"]) == 0
        assert "PASS" in capsys.readouterr().out


class TestArrayBackendFlag:
    """Regression: an invalid ``--array-backend`` (or
    ``REPRO_ARRAY_BACKEND``) used to surface as a traceback from the
    first kernel call deep inside a campaign; it is now validated
    eagerly and exits 2 with the known-backend list before any trial
    runs."""

    def test_invalid_flag_exits_2_with_known_backends(self, capsys):
        assert main(["run", "fig11", "--array-backend", "tensorflow"]) == 2
        err = capsys.readouterr().err
        assert "unknown array backend 'tensorflow'" in err
        assert "numpy" in err and "Traceback" not in err

    def test_invalid_env_var_exits_2(self, capsys, monkeypatch):
        from repro.engine.backend import ARRAY_BACKEND_ENV_VAR

        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "bogus")
        assert main(["run", "fig11"]) == 2
        err = capsys.readouterr().err
        assert "unknown array backend 'bogus'" in err

    def test_unavailable_backend_exits_2_with_hint(self, capsys):
        from repro.engine import available_backends

        if "cupy" in available_backends():
            pytest.skip("cupy installed; no unavailable backend to name")
        assert main(["run", "fig11", "--array-backend", "cupy"]) == 2
        err = capsys.readouterr().err
        assert "not available" in err and "'auto'" in err

    def test_flag_applies_to_experiments_and_scenarios(self, capsys):
        # Unlike the scenario-only flags, --array-backend is a valid
        # execution knob for both run kinds.
        assert main(["run", "fig11", "--array-backend", "numpy-generic"]) == 0
        assert "PASS" in capsys.readouterr().out
        assert (
            main(
                [
                    "run",
                    "uniform-multilateration",
                    "--trials",
                    "2",
                    "--no-store",
                    "--array-backend",
                    "numpy-generic",
                ]
            )
            == 0
        )
        assert "2 trials" in capsys.readouterr().out

    def test_trace_manifest_records_backend(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        args = [
            "run",
            "uniform-multilateration",
            "--trials",
            "2",
            "--no-store",
            "--trace",
            str(trace),
        ]
        assert main(args + ["--array-backend", "numpy-generic"]) == 0
        capsys.readouterr()
        manifest = json.loads(trace.read_text().splitlines()[0])
        assert manifest["array_backend"] == "numpy-generic"
        assert main(args) == 0
        manifest = json.loads(trace.read_text().splitlines()[0])
        assert manifest["array_backend"] == "numpy"


class TestStoreCommands:
    """The `repro store` maintenance group (stats/ls; gc and sync/migrate
    have their own suites in test_store_gc.py / test_store_sync.py)."""

    def _populate(self, path, trials="2"):
        assert (
            main(
                [
                    "run",
                    "uniform-multilateration",
                    "--seed",
                    "1",
                    "--trials",
                    trials,
                    "--store",
                    str(path),
                ]
            )
            == 0
        )

    def test_stats_reports_backend_and_counts(self, tmp_path, capsys):
        self._populate(tmp_path / "store")
        capsys.readouterr()
        assert main(["store", "stats", "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "(filesystem backend)" in out
        assert "entries: 1" in out

    def test_ls_lists_keys_and_sizes(self, tmp_path, capsys):
        self._populate(tmp_path / "store")
        capsys.readouterr()
        assert main(["store", "ls", "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "entries (1," in out
        assert " B" in out

    def test_ls_shards_uses_the_shard_index(self, tmp_path, capsys):
        store = str(tmp_path / "store.sqlite")
        code = main(
            [
                "run",
                "uniform-multilateration",
                "--seed",
                "1",
                "--trials",
                "6",
                "--shard",
                "1/3",
                "--store",
                store,
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["store", "ls", "--shards", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "shard entries (1):" in out
        assert "uniform-multilateration" in out and "shard 1/3" in out

    def test_no_store_exits_2(self, capsys):
        assert main(["store", "stats", "--no-store"]) == 2
        assert "store" in capsys.readouterr().err

    def test_ls_negative_limit_exits_2(self, tmp_path, capsys):
        self._populate(tmp_path / "store")
        capsys.readouterr()
        code = main(
            ["store", "ls", "--store", str(tmp_path / "store"), "--limit", "-1"]
        )
        assert code == 2
        assert "--limit" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["stats", "ls", "gc"])
    def test_typoed_path_errors_instead_of_creating_a_store(
        self, tmp_path, command, capsys
    ):
        """Read-only inspection on a mistyped path must fail loudly, not
        conjure an empty store and report success against it."""
        typo = tmp_path / "typo.sqlite"
        assert main(["store", command, "--store", str(typo)]) == 2
        assert "does not exist" in capsys.readouterr().err
        assert not typo.exists()

    def test_stats_reports_shard_count_from_sqlite_index(self, tmp_path, capsys):
        store = str(tmp_path / "store.sqlite")
        code = main(
            [
                "run",
                "uniform-multilateration",
                "--seed",
                "1",
                "--trials",
                "6",
                "--shard",
                "1/3",
                "--store",
                store,
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["store", "stats", "--store", store]) == 0
        assert "shard entries: 1" in capsys.readouterr().out

    def test_scenario_runs_against_sqlite_store(self, tmp_path, capsys):
        """`--store path.sqlite` selects the SQLite backend end to end:
        cold run publishes, warm run is a cache hit."""
        store = str(tmp_path / "cache.sqlite")
        args = [
            "run",
            "uniform-multilateration",
            "--seed",
            "1",
            "--trials",
            "2",
            "--store",
            store,
        ]
        assert main(args) == 0
        assert "misses=1" in capsys.readouterr().out
        assert main(args) == 0
        assert "hits=1" in capsys.readouterr().out


class TestSharding:
    ARGS = ["uniform-multilateration", "--seed", "3", "--trials", "6"]

    def _run_shard(self, tmp_path, k, n):
        return main(
            ["run", *self.ARGS, "--shard", f"{k}/{n}", "--store", str(tmp_path)]
        )

    def test_shard_run_reports_range_and_pending_merge(self, tmp_path, capsys):
        assert self._run_shard(tmp_path, 1, 3) == 0
        out = capsys.readouterr().out
        assert "shard 1/3: trials [0, 2) of 6" in out
        assert "merge: waiting on shards 2/3, 3/3" in out

    def test_last_shard_auto_merges_byte_identical_to_single_host(
        self, tmp_path, capsys
    ):
        sharded = tmp_path / "sharded"
        single = tmp_path / "single"
        for k in (1, 2, 3):
            assert self._run_shard(sharded, k, 3) == 0
        out = capsys.readouterr().out
        assert "merge: all 3 shards present" in out
        assert (
            main(["run", *self.ARGS, "--store", str(single)]) == 0
        )
        spec = get_scenario("uniform-multilateration")
        key = ResultStore(sharded).key_for(
            scenario_run_key(spec, master_seed=3, n_trials=6)
        )
        assert (
            ResultStore(sharded).path_for(key).read_bytes()
            == ResultStore(single).path_for(key).read_bytes()
        )

    def test_merged_entry_serves_plain_run_as_cache_hit(self, tmp_path, capsys):
        for k in (1, 2, 3):
            assert self._run_shard(tmp_path, k, 3) == 0
        capsys.readouterr()
        assert main(["run", *self.ARGS, "--store", str(tmp_path)]) == 0
        assert "hits=1" in capsys.readouterr().out

    def test_explicit_merge_command(self, tmp_path, capsys):
        for k in (1, 2):
            assert self._run_shard(tmp_path, k, 2) == 0
        capsys.readouterr()
        code = main(
            [
                "merge",
                *self.ARGS,
                "--shards",
                "2",
                "--store",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "canonical campaign entry published" in out
        assert "6 trials" in out

    def test_merge_incomplete_exits_1_naming_missing(self, tmp_path, capsys):
        assert self._run_shard(tmp_path, 1, 3) == 0
        capsys.readouterr()
        code = main(
            ["merge", *self.ARGS, "--shards", "3", "--store", str(tmp_path)]
        )
        assert code == 1
        assert "missing shard entries 2/3, 3/3" in capsys.readouterr().err

    def test_merge_unknown_or_experiment_id_exits_2(self, tmp_path, capsys):
        assert main(["merge", "nope", "--shards", "2", "--store", str(tmp_path)]) == 2
        assert "unknown scenario id" in capsys.readouterr().err
        assert main(["merge", "fig11", "--shards", "2", "--store", str(tmp_path)]) == 2
        assert "experiment id" in capsys.readouterr().err

    @pytest.mark.parametrize("shard", ["0/3", "4/3", "x/y", "3"])
    def test_malformed_shard_exits_2(self, tmp_path, capsys, shard):
        assert (
            main(
                ["run", *self.ARGS, "--shard", shard, "--store", str(tmp_path)]
            )
            == 2
        )
        assert "shard" in capsys.readouterr().err

    def test_shard_with_adaptive_exits_2(self, tmp_path, capsys):
        code = main(
            [
                "run",
                *self.ARGS,
                "--shard",
                "1/2",
                "--adaptive",
                "--store",
                str(tmp_path),
            ]
        )
        assert code == 2
        assert "--adaptive" in capsys.readouterr().err

    def test_more_shards_than_trials_exits_2(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "uniform-multilateration",
                "--trials",
                "2",
                "--shard",
                "1/3",
                "--store",
                str(tmp_path),
            ]
        )
        assert code == 2
        assert "non-empty shards" in capsys.readouterr().err

    def test_shard_without_store_exits_2(self, capsys):
        assert main(["run", *self.ARGS, "--shard", "1/2", "--no-store"]) == 2
        assert "result store" in capsys.readouterr().err

    def test_list_shows_incomplete_sharded_campaigns(self, tmp_path, capsys):
        assert self._run_shard(tmp_path, 2, 3) == 0
        capsys.readouterr()
        assert main(["list", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "incomplete sharded campaigns (1):" in out
        assert "seed=3 trials=6: 1/3 shards present (missing 1/3, 3/3)" in out

    def test_list_hides_complete_campaigns(self, tmp_path, capsys):
        for k in (1, 2):
            assert self._run_shard(tmp_path, k, 2) == 0
        capsys.readouterr()
        assert main(["list", "--store", str(tmp_path)]) == 0
        assert "incomplete sharded campaigns" not in capsys.readouterr().out

    def test_list_reports_complete_but_unmerged_campaigns(self, tmp_path, capsys):
        """All shards present but no canonical entry (interrupted
        auto-merge, or shard entries copied in from per-host stores):
        `list` must point at the merge command, not stay silent."""
        from repro.engine.sharding import ShardSpec
        from repro.scenarios import run_scenario_shard

        spec = get_scenario("uniform-multilateration")
        store = ResultStore(tmp_path)
        for k in range(2):
            run_scenario_shard(
                spec,
                ShardSpec(index=k, n_shards=2),
                master_seed=3,
                n_trials=6,
                store=store,
                auto_merge=False,
            )
        assert main(["list", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "all 2 shards present, unmerged" in out
        # The hint must carry every flag the merge needs, verbatim.
        assert "merge uniform-multilateration --seed 3 --trials 6 --shards 2" in out
        assert (
            main(["merge", *self.ARGS, "--shards", "2", "--store", str(tmp_path)])
            == 0
        )
        capsys.readouterr()
        assert main(["list", "--store", str(tmp_path)]) == 0
        assert "unmerged" not in capsys.readouterr().out

    def test_list_does_not_pool_shards_across_code_versions(self, tmp_path):
        """Shards published under a different code version live under
        keys the current merge path can never address; grouping them
        with current-version shards would misreport completeness."""
        from repro.__main__ import _shard_status_lines
        from repro.engine.sharding import ShardSpec
        from repro.scenarios import run_scenario_shard

        spec = get_scenario("uniform-multilateration")
        old = ResultStore(tmp_path, code_version="v-old")
        run_scenario_shard(
            spec, ShardSpec(index=0, n_shards=2), n_trials=4, store=old
        )
        current = ResultStore(tmp_path, code_version="v-new")
        run_scenario_shard(
            spec, ShardSpec(index=1, n_shards=2), n_trials=4, store=current
        )
        lines = _shard_status_lines(current)
        # Two separate 1/2-complete groups, not one falsely complete one.
        assert len(lines) == 2
        assert sum("stale code version v-old" in line for line in lines) == 1
