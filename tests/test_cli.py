"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_experiments_and_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out
        assert "ext-sweep" in out
        assert "town-multilateration" in out
        assert "experiments (" in out and "scenarios (" in out


class TestRun:
    def test_run_experiment_by_id(self, capsys):
        assert main(["run", "fig11", "--seed", "2005"]) == 0
        out = capsys.readouterr().out
        assert "[fig11]" in out and "PASS" in out

    def test_run_scenario_with_store(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "uniform-multilateration",
                "--seed",
                "1",
                "--trials",
                "2",
                "--store",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario: uniform-multilateration" in out
        assert "2 trials" in out
        assert "'misses': 1" in out
        # warm re-run hits the cache
        assert (
            main(
                [
                    "run",
                    "uniform-multilateration",
                    "--seed",
                    "1",
                    "--trials",
                    "2",
                    "--store",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert "'hits': 1" in capsys.readouterr().out

    def test_run_scenario_no_store(self, capsys):
        assert (
            main(
                ["run", "uniform-multilateration", "--trials", "2", "--no-store"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "store:" not in out

    def test_run_scenario_adaptive(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "uniform-multilateration",
                "--trials",
                "10",
                "--adaptive",
                "--tolerance",
                "1e9",
                "--store",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert "scheduler:" in capsys.readouterr().out

    def test_no_cache_flag_recomputes(self, tmp_path, capsys):
        args = [
            "run",
            "uniform-multilateration",
            "--trials",
            "2",
            "--store",
            str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--no-cache"]) == 0
        assert "'hits': 0" in capsys.readouterr().out

    def test_unknown_id_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown id" in capsys.readouterr().err
