"""Tests for repro.core.geometry."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import (
    all_pairs_circle_intersections,
    apply_transform,
    centroid,
    circle_intersections,
    compose_transforms,
    decompose_transform,
    distances_for_pairs,
    euclidean,
    invert_transform,
    is_collinear,
    pairwise_distances,
    rigid_transform_matrix,
    triangle_inequality_holds,
)
from repro.errors import ValidationError

finite_coord = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)
angle = st.floats(-math.pi, math.pi, allow_nan=False)


class TestEuclidean:
    def test_unit_distance(self):
        assert euclidean((0, 0), (1, 0)) == 1.0

    def test_pythagorean(self):
        assert euclidean((0, 0), (3, 4)) == 5.0

    def test_symmetric(self):
        assert euclidean((1, 2), (5, -3)) == euclidean((5, -3), (1, 2))

    def test_zero(self):
        assert euclidean((2, 2), (2, 2)) == 0.0


class TestPairwiseDistances:
    def test_shape(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        dist = pairwise_distances(pts)
        assert dist.shape == (3, 3)

    def test_values(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        dist = pairwise_distances(pts)
        assert dist[0, 1] == pytest.approx(5.0)
        assert dist[1, 0] == pytest.approx(5.0)

    def test_diagonal_zero(self):
        pts = np.random.default_rng(0).uniform(0, 10, (6, 2))
        dist = pairwise_distances(pts)
        assert np.allclose(np.diag(dist), 0.0)

    def test_symmetry(self):
        pts = np.random.default_rng(1).uniform(0, 10, (8, 2))
        dist = pairwise_distances(pts)
        assert np.allclose(dist, dist.T)

    def test_empty(self):
        assert pairwise_distances(np.zeros((0, 2))).shape == (0, 0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValidationError):
            pairwise_distances(np.zeros((3, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            pairwise_distances(np.array([[0.0, np.nan]]))


class TestDistancesForPairs:
    def test_basic(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0]])
        pairs = np.array([[0, 1], [1, 2], [0, 2]])
        out = distances_for_pairs(pts, pairs)
        assert out == pytest.approx([1.0, 1.0, math.sqrt(2)])

    def test_empty_pairs(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert distances_for_pairs(pts, np.zeros((0, 2), dtype=int)).size == 0

    def test_matches_pairwise_matrix(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 50, (10, 2))
        full = pairwise_distances(pts)
        pairs = np.array([[i, j] for i in range(10) for j in range(i + 1, 10)])
        out = distances_for_pairs(pts, pairs)
        expected = np.array([full[i, j] for i, j in pairs])
        assert np.allclose(out, expected)


class TestCircleIntersections:
    def test_two_intersections(self):
        pts = circle_intersections((0, 0), 1.0, (1, 0), 1.0)
        assert pts.shape == (2, 2)
        for p in pts:
            assert np.hypot(*p) == pytest.approx(1.0)
            assert np.hypot(p[0] - 1, p[1]) == pytest.approx(1.0)

    def test_tangent_single_point(self):
        pts = circle_intersections((0, 0), 1.0, (2, 0), 1.0)
        assert pts.shape == (1, 2)
        assert pts[0] == pytest.approx([1.0, 0.0])

    def test_disjoint(self):
        assert circle_intersections((0, 0), 1.0, (5, 0), 1.0).shape == (0, 2)

    def test_contained(self):
        assert circle_intersections((0, 0), 5.0, (1, 0), 1.0).shape == (0, 2)

    def test_concentric(self):
        assert circle_intersections((0, 0), 1.0, (0, 0), 2.0).shape == (0, 2)

    def test_zero_radius_returns_empty(self):
        assert circle_intersections((0, 0), 0.0, (1, 0), 1.0).shape == (0, 2)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValidationError):
            circle_intersections((0, 0), -1.0, (1, 0), 1.0)

    def test_known_intersection(self):
        # Circles r=5 at (0,0) and (6,0): intersections at (3, +-4).
        pts = circle_intersections((0, 0), 5.0, (6, 0), 5.0)
        ys = sorted(p[1] for p in pts)
        assert ys == pytest.approx([-4.0, 4.0])
        assert all(p[0] == pytest.approx(3.0) for p in pts)


class TestAllPairsCircleIntersections:
    def test_owner_bookkeeping(self):
        centers = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 10.0]])
        radii = np.array([1.0, 1.0, 1.0])
        points, owners = all_pairs_circle_intersections(centers, radii)
        assert points.shape[0] == 2
        assert set(map(tuple, owners)) == {(0, 1)}

    def test_empty_when_nothing_intersects(self):
        centers = np.array([[0.0, 0.0], [100.0, 0.0]])
        radii = np.array([1.0, 1.0])
        points, owners = all_pairs_circle_intersections(centers, radii)
        assert points.shape == (0, 2)
        assert owners.shape == (0, 2)

    def test_radii_length_mismatch(self):
        with pytest.raises(ValidationError):
            all_pairs_circle_intersections(np.zeros((2, 2)) + [[0, 0], [1, 0]], [1.0])

    def test_triangulation_cluster(self):
        # Three circles through a common point produce a cluster there.
        target = np.array([2.0, 3.0])
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        radii = np.hypot(centers[:, 0] - target[0], centers[:, 1] - target[1])
        points, owners = all_pairs_circle_intersections(centers, radii)
        near = [p for p in points if np.hypot(*(p - target)) < 1e-6]
        assert len(near) == 3  # one per circle pair


class TestRigidTransforms:
    def test_identity(self):
        t = rigid_transform_matrix(0.0, 0.0, 0.0)
        assert np.allclose(t, np.eye(3))

    def test_translation(self):
        t = rigid_transform_matrix(0.0, 3.0, -2.0)
        out = apply_transform([[0.0, 0.0]], t)
        assert out[0] == pytest.approx([3.0, -2.0])

    def test_rotation_quarter_turn(self):
        t = rigid_transform_matrix(math.pi / 2, 0.0, 0.0)
        out = apply_transform([[1.0, 0.0]], t)
        # Row-vector convention: [1,0] @ R
        assert np.allclose(out[0], [0.0, -1.0], atol=1e-12) or np.allclose(
            out[0], [0.0, 1.0], atol=1e-12
        )

    def test_reflection_flips_orientation(self):
        t = rigid_transform_matrix(0.0, 0.0, 0.0, reflect=True)
        tri = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        out = apply_transform(tri, t)

        def signed_area(p):
            return 0.5 * (
                (p[1][0] - p[0][0]) * (p[2][1] - p[0][1])
                - (p[2][0] - p[0][0]) * (p[1][1] - p[0][1])
            )

        assert signed_area(tri) * signed_area(out) < 0

    def test_preserves_distances(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(-10, 10, (6, 2))
        t = rigid_transform_matrix(0.7, 2.0, -5.0, reflect=True)
        out = apply_transform(pts, t)
        assert np.allclose(pairwise_distances(pts), pairwise_distances(out))

    def test_invert_roundtrip(self):
        t = rigid_transform_matrix(1.1, 4.0, 5.0)
        pts = np.array([[1.0, 2.0], [3.0, -4.0]])
        back = apply_transform(apply_transform(pts, t), invert_transform(t))
        assert np.allclose(back, pts)

    def test_compose_order(self):
        t1 = rigid_transform_matrix(0.0, 1.0, 0.0)  # translate x+1
        t2 = rigid_transform_matrix(math.pi / 2, 0.0, 0.0)  # rotate
        pts = np.array([[0.0, 0.0]])
        combined = compose_transforms(t1, t2)
        step = apply_transform(apply_transform(pts, t1), t2)
        assert np.allclose(apply_transform(pts, combined), step)

    def test_decompose_roundtrip(self):
        for reflect in (False, True):
            t = rigid_transform_matrix(0.8, -2.0, 3.5, reflect)
            theta, tx, ty, got_reflect = decompose_transform(t)
            rebuilt = rigid_transform_matrix(theta, tx, ty, got_reflect)
            assert got_reflect == reflect
            assert np.allclose(rebuilt, t)

    def test_decompose_rejects_scaling(self):
        with pytest.raises(ValidationError):
            decompose_transform(np.diag([2.0, 2.0, 1.0]))

    def test_apply_rejects_bad_matrix(self):
        with pytest.raises(ValidationError):
            apply_transform([[0, 0]], np.eye(2))

    @given(theta=angle, tx=finite_coord, ty=finite_coord, reflect=st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_rigidity_property(self, theta, tx, ty, reflect):
        t = rigid_transform_matrix(theta, tx, ty, reflect)
        linear = t[:2, :2]
        assert abs(abs(np.linalg.det(linear)) - 1.0) < 1e-9


class TestTriangleInequality:
    def test_valid_triangle(self):
        assert triangle_inequality_holds(3, 4, 5)

    def test_degenerate_boundary(self):
        assert triangle_inequality_holds(1, 2, 3)

    def test_violation(self):
        assert not triangle_inequality_holds(1, 1, 3)

    def test_slack_tolerates(self):
        assert triangle_inequality_holds(1, 1, 3, slack=1.0)

    def test_negative_side_rejected(self):
        with pytest.raises(ValidationError):
            triangle_inequality_holds(-1, 2, 2)

    def test_negative_slack_rejected(self):
        with pytest.raises(ValidationError):
            triangle_inequality_holds(1, 2, 2, slack=-0.5)

    @given(
        a=st.floats(0.1, 100),
        b=st.floats(0.1, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_two_points_always_satisfy(self, a, b):
        # Sides a, b, a+b always form a (degenerate) triangle.
        assert triangle_inequality_holds(a, b, a + b)


class TestCentroidAndCollinearity:
    def test_centroid(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [2.0, 2.0]])
        assert centroid(pts) == pytest.approx([1.0, 1.0])

    def test_collinear_on_line(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [5.0, 5.0]])
        assert is_collinear(pts)

    def test_not_collinear(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        assert not is_collinear(pts)

    def test_two_points_collinear(self):
        assert is_collinear(np.array([[0.0, 0.0], [1.0, 2.0]]))

    def test_coincident_points_collinear(self):
        assert is_collinear(np.array([[1.0, 1.0]] * 4))

    def test_near_collinear_with_tolerance(self):
        pts = np.array([[0.0, 0.0], [10.0, 1e-12], [20.0, 0.0]])
        assert is_collinear(pts)
