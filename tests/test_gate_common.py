"""`tools/_gate_common.py`: the shared plumbing all CI gates rest on.

The four gate scripts assume this helper builds the right CLI command,
fails loudly with the command's output, and finds the canonical
campaign entry; none of that was covered before, so a regression here
would surface only as a confusing CI-gate failure.
"""

import importlib.util
import os
import sys
import types
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_gate_common():
    spec = importlib.util.spec_from_file_location(
        "_gate_common", REPO_ROOT / "tools" / "_gate_common.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def gate(monkeypatch):
    monkeypatch.setenv("PYTHONPATH", str(REPO_ROOT / "src"))
    return _load_gate_common()


class TestCommandConstruction:
    def _capture(self, gate, monkeypatch):
        seen = {}

        def fake_run(command, capture_output, text):
            seen["command"] = command
            return types.SimpleNamespace(returncode=0, stdout="out", stderr="")

        monkeypatch.setattr(gate.subprocess, "run", fake_run)
        return seen

    def test_builds_python_dash_m_repro_command(self, gate, monkeypatch):
        seen = self._capture(gate, monkeypatch)
        out = gate.run_cli_output(["lint", "--json"])
        assert out == "out"
        assert seen["command"] == [sys.executable, "-m", "repro", "lint", "--json"]

    def test_store_argument_appends_store_flag(self, gate, monkeypatch, tmp_path):
        seen = self._capture(gate, monkeypatch)
        gate.run_cli_output(["store", "stats"], store=tmp_path)
        assert seen["command"][-2:] == ["--store", str(tmp_path)]

    def test_run_cli_is_the_discard_output_wrapper(self, gate, monkeypatch):
        seen = self._capture(gate, monkeypatch)
        assert gate.run_cli(["list"]) is None
        assert seen["command"] == [sys.executable, "-m", "repro", "list"]


class TestRealInvocation:
    def test_success_returns_stdout(self, gate):
        out = gate.run_cli_output(["lint", "--list-rules"])
        assert "RPL001" in out
        assert "RPL008" in out

    def test_failure_exits_with_command_and_output(self, gate):
        with pytest.raises(SystemExit) as excinfo:
            gate.run_cli_output(["run", "definitely-not-a-registered-id"])
        message = str(excinfo.value)
        assert "command failed (2)" in message
        assert "definitely-not-a-registered-id" in message


class TestEntryBytes:
    def test_round_trips_the_canonical_campaign_entry(self, gate, tmp_path):
        from repro.scenarios import get_scenario, scenario_run_key
        from repro.store import ResultStore

        store = ResultStore(tmp_path)
        key = store.key_for(
            scenario_run_key(
                get_scenario("uniform-multilateration"), master_seed=3, n_trials=4
            )
        )
        payload = {"records": [], "master_seed": 3}
        store.put(key, payload)
        data = gate.entry_bytes(tmp_path, "uniform-multilateration", seed=3, trials=4)
        assert data == store.get_bytes(key)

    def test_missing_entry_exits_with_scenario_id(self, gate, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            gate.entry_bytes(tmp_path, "uniform-multilateration", seed=3, trials=4)
        assert "no canonical campaign entry" in str(excinfo.value)
        assert "uniform-multilateration" in str(excinfo.value)
