"""Property-based tests of core algorithmic invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.evaluation import align_to_reference, localization_errors
from repro.core.geometry import apply_transform, pairwise_distances, rigid_transform_matrix
from repro.core.lss import lss_error, lss_gradient
from repro.core.measurements import EdgeList, MeasurementSet
from repro.core.mds import classical_mds
from repro.ranging.consistency import bidirectional_filter, triangle_filter
from repro.ranging.detection import detect_signal, first_hit

coords = st.floats(-100.0, 100.0, allow_nan=False)
angles = st.floats(-3.14159, 3.14159, allow_nan=False)


def _edges_for(points, max_range):
    n = len(points)
    pairs, dists = [], []
    for i in range(n):
        for j in range(i + 1, n):
            d = float(np.hypot(*(points[i] - points[j])))
            if d <= max_range:
                pairs.append((i, j))
                dists.append(d)
    if not pairs:
        return None
    return EdgeList(
        pairs=np.asarray(pairs, dtype=np.int64),
        distances=np.asarray(dists),
        weights=np.ones(len(pairs)),
    )


class TestLssObjectiveInvariances:
    @given(
        seed=st.integers(0, 1000),
        theta=angles,
        tx=coords,
        ty=coords,
        reflect=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_stress_invariant_under_rigid_motion(self, seed, theta, tx, ty, reflect):
        """E_w depends only on inter-point distances, so any rigid
        motion of a configuration leaves it unchanged."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 50, (6, 2))
        edges = _edges_for(pts, max_range=80.0)
        moved = apply_transform(pts, rigid_transform_matrix(theta, tx, ty, reflect))
        perturbed = pts + rng.normal(0, 1.0, pts.shape)
        e_orig = lss_error(perturbed, edges)
        e_moved = lss_error(
            apply_transform(perturbed, rigid_transform_matrix(theta, tx, ty, reflect)),
            edges,
        )
        assert e_moved == pytest.approx(e_orig, rel=1e-6, abs=1e-6)

    @given(seed=st.integers(0, 1000), scale=st.floats(0.5, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_gradient_scales_with_weights(self, seed, scale):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 50, (5, 2))
        edges = _edges_for(pts, max_range=80.0)
        moved = pts + rng.normal(0, 2.0, pts.shape)
        g1 = lss_gradient(moved, edges)
        heavier = EdgeList(
            pairs=edges.pairs,
            distances=edges.distances,
            weights=edges.weights * scale,
        )
        g2 = lss_gradient(moved, heavier)
        assert np.allclose(g2, scale * g1, rtol=1e-9, atol=1e-9)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_truth_is_stationary(self, seed):
        """Exact measurements: ground truth has zero stress gradient."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 50, (6, 2))
        edges = _edges_for(pts, max_range=80.0)
        assert lss_error(pts, edges) == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(lss_gradient(pts, edges), 0.0, atol=1e-9)


class TestAlignmentInvariances:
    @given(seed=st.integers(0, 1000), theta=angles, tx=coords, ty=coords)
    @settings(max_examples=40, deadline=None)
    def test_alignment_recovers_any_rigid_motion(self, seed, theta, tx, ty):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 30, (5, 2))
        assume(np.max(pairwise_distances(pts)) > 1.0)
        moved = apply_transform(pts, rigid_transform_matrix(theta, tx, ty))
        aligned = align_to_reference(moved, pts)
        assert localization_errors(aligned, pts).max() < 1e-5


class TestMdsInvariances:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_mds_preserves_distances_exactly(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 40, (6, 2))
        assume(np.max(pairwise_distances(pts)) > 1.0)
        coords_out = classical_mds(pairwise_distances(pts))
        assert np.allclose(
            pairwise_distances(coords_out), pairwise_distances(pts), atol=1e-6
        )


class TestFilterProperties:
    @given(
        values=st.lists(st.floats(0.1, 30.0), min_size=1, max_size=6),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_filters_never_add_measurements(self, values, seed):
        rng = np.random.default_rng(seed)
        ms = MeasurementSet()
        nodes = [0, 1, 2, 3]
        for k, v in enumerate(values):
            i, j = rng.choice(nodes, size=2, replace=False)
            ms.add_distance(int(i), int(j), float(v), round_index=k)
        for filtered in (
            bidirectional_filter(ms),
            triangle_filter(ms),
        ):
            assert len(filtered) <= len(ms)
            # Only existing pairs survive.
            assert set(filtered.undirected_pairs) <= set(ms.undirected_pairs)

    @given(values=st.lists(st.floats(1.0, 20.0), min_size=3, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_triangle_filter_output_is_consistent(self, values):
        """After filtering, no remaining triangle violates the check."""
        ms = MeasurementSet()
        ms.add_distance(0, 1, values[0])
        ms.add_distance(0, 2, values[1])
        ms.add_distance(1, 2, values[2])
        out = triangle_filter(ms, slack_m=0.5)
        remaining = {tuple(p) for p in out.undirected_pairs}
        if len(remaining) == 3:
            sides = sorted(values)
            assert sides[0] + sides[1] + 0.5 >= sides[2]


class TestDetectionProperties:
    @given(
        data=st.lists(st.integers(0, 10), min_size=40, max_size=120),
    )
    @settings(max_examples=50, deadline=None)
    def test_detection_implies_criterion(self, data):
        buf = np.asarray(data, dtype=np.int64)
        idx = detect_signal(buf, k=4, m=16, threshold=3)
        if idx >= 0:
            window = buf[idx : idx + 16]
            assert buf[idx] >= 3
            assert (window >= 3).sum() >= 4
        else:
            # No window may satisfy the criterion.
            for s in range(len(buf) - 16 + 1):
                w = buf[s : s + 16]
                assert not (buf[s] >= 3 and (w >= 3).sum() >= 4)

    @given(data=st.lists(st.integers(0, 3), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_first_hit_is_first(self, data):
        buf = np.asarray(data, dtype=np.int64)
        idx = first_hit(buf, threshold=2)
        if idx >= 0:
            assert buf[idx] >= 2
            assert np.all(buf[:idx] < 2)
        else:
            assert np.all(buf < 2)
