"""Tests for store garbage collection (`repro.store.gc`) and its CLI.

Pins the eviction contract: GC brings the store under the byte budget
evicting least-recently-accessed entries first, never touches pinned
keys (even when that means missing the budget), sweeps only *orphaned*
``.tmp``/``.quarantine`` staging files — a fresh file a live writer may
still be staging survives — and a dry run deletes nothing.
"""

import os
import time

import pytest

from repro.__main__ import main
from repro.store import DEFAULT_GRACE_SECONDS, ResultStore, collect

from test_store_backends import BACKENDS, make_store


def _put_sized(store, name, n_values=40):
    key = store.key_for(name)
    store.put(key, {"tag": name, "values": [0.125 * i for i in range(n_values)]})
    return key


def _set_accessed(store, key, when):
    """Force *key*'s recorded access time (test clock control)."""
    if store.backend.kind == "filesystem":
        os.utime(store.path_for(key), (when, when))
    else:
        with store.backend._lock:
            store.backend._conn().execute(
                "UPDATE entries SET accessed_at = ? WHERE key = ?", (when, key)
            )


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    return make_store(tmp_path, request.param)


class TestEviction:
    def test_no_budget_means_no_eviction(self, store):
        _put_sized(store, "a")
        report = collect(store)
        assert report.evicted == () and report.under_budget
        assert len(store) == 1

    def test_evicts_lru_first_down_to_budget(self, store):
        now = time.time()
        keys = [_put_sized(store, f"e{i}") for i in range(4)]
        sizes = {k: store.entry_info(k).size for k in keys}
        # e0 oldest … e3 newest.
        for age, key in enumerate(reversed(keys)):
            _set_accessed(store, key, now - 100.0 * (age + 1))
        budget = sum(sizes.values()) - 1  # forces exactly one eviction
        report = collect(store, max_bytes=budget, now=now)
        assert report.evicted == (keys[0],)
        assert report.under_budget
        assert not store.contains(keys[0]) and all(
            store.contains(k) for k in keys[1:]
        )
        assert store.total_bytes() == report.bytes_after <= budget

    def test_reads_refresh_lru_position(self, store):
        """A get() marks an entry recently used, steering eviction to
        colder entries."""
        now = time.time()
        hot, cold = _put_sized(store, "hot"), _put_sized(store, "cold")
        for key in (hot, cold):
            _set_accessed(store, key, now - 1000.0)
        assert store.get(hot) is not None  # touches the access stamp
        budget = store.total_bytes() - 1
        report = collect(store, max_bytes=budget)
        assert report.evicted == (cold,)
        assert store.contains(hot)

    def test_pinned_keys_survive_any_budget(self, store):
        pinned = _put_sized(store, "golden")
        victim = _put_sized(store, "victim")
        report = collect(store, max_bytes=0, pinned=[pinned])
        assert pinned not in report.evicted
        assert report.evicted == (victim,)
        assert store.contains(pinned)
        assert report.pinned_kept == 1
        assert not report.under_budget  # pinned entry alone exceeds 0 bytes
        assert "pinned" in report.summary()

    def test_dry_run_deletes_nothing(self, store):
        keys = [_put_sized(store, f"d{i}") for i in range(3)]
        report = collect(store, max_bytes=0, dry_run=True)
        assert set(report.evicted) == set(keys)
        assert len(store) == 3
        assert report.dry_run and "would evict" in report.summary()

    def test_eviction_counts_as_invalidation(self, store):
        _put_sized(store, "x")
        collect(store, max_bytes=0)
        assert store.stats.invalidations == 1

    def test_malformed_pin_rejected_loudly(self, store):
        """A truncated/typo'd pin can never match, so the protection it
        was meant to buy would silently not exist."""
        from repro.errors import ValidationError

        _put_sized(store, "x")
        with pytest.raises(ValidationError):
            collect(store, max_bytes=0, pinned=["abc123"])

    def test_unmatched_pin_is_reported(self, store):
        real = _put_sized(store, "x")
        ghost = store.key_for("never-stored")
        report = collect(store, max_bytes=0, pinned=[real, ghost])
        assert report.pins_unmatched == (ghost,)
        assert "matched no entry" in report.summary()
        assert store.contains(real)

    def test_concurrently_vanished_entry_does_not_cause_over_eviction(
        self, store, monkeypatch
    ):
        """Regression: when a racing GC already evicted an entry,
        invalidate() returns False — its size must still come off the
        running total, or this pass evicts live entries to pay for
        bytes nobody holds anymore."""
        now = time.time()
        first = _put_sized(store, "vanishing")
        second = _put_sized(store, "survivor")
        _set_accessed(store, first, now - 200.0)
        _set_accessed(store, second, now - 100.0)
        budget = store.entry_info(second).size + 1

        real_invalidate = store.invalidate

        def racing_invalidate(key):
            if key == first:  # the other GC got here first
                store.backend.delete(key)
                return False
            return real_invalidate(key)

        monkeypatch.setattr(store, "invalidate", racing_invalidate)
        report = collect(store, max_bytes=budget, now=now)
        assert report.evicted == ()  # the vanished entry already paid the budget
        assert store.contains(second)
        assert report.under_budget

    def test_sqlite_eviction_shrinks_the_database_file(self, tmp_path):
        """Deleted rows only reach SQLite's freelist; GC must compact so
        a disk-size budget actually frees disk."""
        store = make_store(tmp_path, "sqlite")
        keep = _put_sized(store, "keep", n_values=50)
        for i in range(20):
            _put_sized(store, f"bulk-{i}", n_values=4000)

        def disk_size():  # main db + WAL/shm sidecars
            return sum(
                p.stat().st_size
                for suffix in ("", "-wal", "-shm")
                for p in [store.root.with_name(store.root.name + suffix)]
                if p.exists()
            )

        before = disk_size()
        budget = store.entry_info(keep).size + 1
        report = collect(store, max_bytes=budget, pinned=[keep])
        assert report.under_budget and store.contains(keep)
        after = disk_size()
        assert after < before / 2, (before, after)


class TestOrphanSweep:
    """Satellite: crashed writers leave ``.tmp``/``.quarantine`` files
    behind forever — nothing on the read/write path ever deletes them —
    so the GC sweep must, while spending a grace window on files a live
    writer may still be staging."""

    def _orphan(self, store, key, suffix, age, now):
        path = store.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        orphan = path.parent / f".{path.name}.12345.{os.urandom(4).hex()}.{suffix}"
        orphan.write_bytes(b"partial write")
        os.utime(orphan, (now - age, now - age))
        return orphan

    def test_old_orphans_swept_fresh_kept(self, tmp_path):
        store = make_store(tmp_path, "filesystem")
        key = _put_sized(store, "entry")
        now = time.time()
        stale_tmp = self._orphan(store, key, "tmp", age=7200.0, now=now)
        stale_quarantine = self._orphan(store, key, "quarantine", age=7200.0, now=now)
        fresh_tmp = self._orphan(store, key, "tmp", age=1.0, now=now)

        report = collect(store, grace_seconds=DEFAULT_GRACE_SECONDS, now=now)
        assert sorted(report.swept_orphans) == sorted(
            [stale_tmp.name, stale_quarantine.name]
        )
        assert not stale_tmp.exists() and not stale_quarantine.exists()
        assert fresh_tmp.exists(), "a live writer's staging file must survive"
        assert store.contains(key), "published entries are not the sweep's business"

    def test_dry_run_previews_sweep_without_deleting(self, tmp_path):
        """The dry-run report must disclose the orphans a real run will
        delete — not silently understate it — while deleting nothing."""
        store = make_store(tmp_path, "filesystem")
        key = _put_sized(store, "entry")
        now = time.time()
        stale = self._orphan(store, key, "tmp", age=7200.0, now=now)
        report = collect(store, now=now, dry_run=True)
        assert report.swept_orphans == (stale.name,)
        assert "would sweep 1" in report.summary()
        assert stale.exists()

    def test_sqlite_backend_has_no_orphans(self, tmp_path):
        store = make_store(tmp_path, "sqlite")
        _put_sized(store, "entry")
        report = collect(store)
        assert report.swept_orphans == ()


class TestCliGc:
    def test_gc_brings_store_under_budget(self, tmp_path, capsys):
        store = make_store(tmp_path, "filesystem", code_version=None)
        for i in range(4):
            _put_sized(store, f"e{i}")
        budget = store.total_bytes() // 2
        code = main(
            ["store", "gc", "--store", str(store.root), "--max-bytes", str(budget)]
        )
        assert code == 0
        assert "evicted" in capsys.readouterr().out
        assert store.total_bytes() <= budget

    def test_gc_pinned_over_budget_exits_1(self, tmp_path, capsys):
        store = make_store(tmp_path, "filesystem", code_version=None)
        pinned = _put_sized(store, "golden")
        code = main(
            [
                "store",
                "gc",
                "--store",
                str(store.root),
                "--max-bytes",
                "0",
                "--pin",
                pinned,
            ]
        )
        assert code == 1
        assert store.contains(pinned)
        assert "pinned" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "text,expected",
        [("500000", 500000), ("64K", 64 * 1024), ("256M", 256 * 1024**2), ("2G", 2 * 1024**3)],
    )
    def test_size_suffixes(self, text, expected):
        from repro.__main__ import _parse_size

        assert _parse_size(text) == expected

    def test_bad_size_exits_2(self, tmp_path, capsys):
        store = make_store(tmp_path, "filesystem", code_version=None)
        _put_sized(store, "x")
        code = main(
            ["store", "gc", "--store", str(store.root), "--max-bytes", "lots"]
        )
        assert code == 2
        assert "sizes look like" in capsys.readouterr().err
