"""Tests for the acoustic physics substrate (repro.acoustics)."""

import numpy as np
import pytest

from repro.acoustics import (
    ENVIRONMENTS,
    ChirpPattern,
    Environment,
    HardwarePopulation,
    HardwareProfile,
    NoiseBurstProcess,
    ToneDetectorModel,
    get_environment,
    hit_probability,
    propagation_delay_s,
    received_level_db,
    snr_db,
    spreading_loss_db,
    synthesize_waveform,
)
from repro.acoustics.propagation import (
    LOUD_SPEAKER_SOURCE_LEVEL_DB,
    STOCK_BUZZER_SOURCE_LEVEL_DB,
)
from repro.errors import ValidationError


class TestEnvironments:
    def test_presets_exist(self):
        for name in ("grass", "pavement", "urban", "wooded"):
            env = get_environment(name)
            assert env.name == name

    def test_unknown_raises_with_choices(self):
        with pytest.raises(ValidationError, match="grass"):
            get_environment("moon")

    def test_attenuation_ordering(self):
        # Hard surfaces (pavement, urban) attenuate far less than
        # vegetation (grass, wooded).
        hard = max(
            ENVIRONMENTS["pavement"].excess_attenuation_db_per_m,
            ENVIRONMENTS["urban"].excess_attenuation_db_per_m,
        )
        assert hard < ENVIRONMENTS["grass"].excess_attenuation_db_per_m
        assert (
            ENVIRONMENTS["grass"].excess_attenuation_db_per_m
            <= ENVIRONMENTS["wooded"].excess_attenuation_db_per_m
        )

    def test_urban_echo_prone(self):
        assert ENVIRONMENTS["urban"].echo_probability > ENVIRONMENTS["grass"].echo_probability

    def test_with_overrides(self):
        env = get_environment("grass").with_overrides(noise_floor_db=50.0)
        assert env.noise_floor_db == 50.0
        assert get_environment("grass").noise_floor_db != 50.0

    def test_invalid_environment(self):
        with pytest.raises(ValidationError):
            Environment(
                name="bad",
                excess_attenuation_db_per_m=-1.0,
                noise_floor_db=30.0,
                false_positive_rate=0.001,
                noise_burst_rate_hz=0.1,
                noise_burst_duration_s=0.01,
                noise_burst_fp_rate=0.3,
                echo_probability=0.1,
                echo_delay_range_s=(0.01, 0.02),
                echo_strength=0.3,
                ground_variation_db=2.0,
            )


class TestPropagation:
    def test_spreading_loss_reference(self):
        assert spreading_loss_db(0.1) == pytest.approx(0.0)

    def test_spreading_loss_20db_per_decade(self):
        assert spreading_loss_db(1.0) == pytest.approx(20.0)
        assert spreading_loss_db(10.0) == pytest.approx(40.0)

    def test_below_reference_clamped(self):
        assert spreading_loss_db(0.01) == pytest.approx(0.0)

    def test_received_level_monotone_decreasing(self):
        env = get_environment("grass")
        levels = received_level_db(np.array([1.0, 5.0, 10.0, 20.0]), env)
        assert np.all(np.diff(levels) < 0)

    def test_louder_speaker_higher_snr(self):
        env = get_environment("grass")
        loud = snr_db(10.0, env, source_level_db=LOUD_SPEAKER_SOURCE_LEVEL_DB)
        stock = snr_db(10.0, env, source_level_db=STOCK_BUZZER_SOURCE_LEVEL_DB)
        assert loud - stock == pytest.approx(
            LOUD_SPEAKER_SOURCE_LEVEL_DB - STOCK_BUZZER_SOURCE_LEVEL_DB
        )

    def test_loud_speaker_extends_range_substantially(self):
        # The hardware extension's whole point: the 105 dB speaker's
        # usable range (SNR crossing the detector threshold) is much
        # longer than the stock 88 dB buzzer's on grass.
        env = get_environment("grass")
        distances = np.linspace(0.5, 40.0, 400)

        def range_at_threshold(source_level):
            s = snr_db(distances, env, source_level_db=source_level)
            usable = distances[s > 8.0]
            return usable.max() if usable.size else 0.0

        loud = range_at_threshold(LOUD_SPEAKER_SOURCE_LEVEL_DB)
        stock = range_at_threshold(STOCK_BUZZER_SOURCE_LEVEL_DB)
        assert loud >= 1.5 * stock

    def test_propagation_delay(self):
        assert propagation_delay_s(340.0) == pytest.approx(1.0)
        assert propagation_delay_s(34.0) == pytest.approx(0.1)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            propagation_delay_s(-1.0)


class TestToneDetector:
    def test_hit_probability_monotone_in_snr(self):
        probs = hit_probability(np.array([-10.0, 0.0, 10.0, 30.0]))
        assert np.all(np.diff(probs) > 0)

    def test_saturation_cap(self):
        assert hit_probability(100.0, saturation=0.85) <= 0.85 + 1e-12

    def test_floor(self):
        assert hit_probability(-100.0, floor=0.01) >= 0.01 - 1e-12

    def test_floor_above_saturation_rejected(self):
        with pytest.raises(ValueError):
            hit_probability(0.0, floor=0.9, saturation=0.5)

    def test_sample_signal_rate(self):
        model = ToneDetectorModel()
        rng = np.random.default_rng(0)
        samples = model.sample_signal(30.0, 5000, rng)
        assert samples.mean() == pytest.approx(float(model.hit_probability(30.0)), abs=0.03)

    def test_sample_noise_rate(self):
        model = ToneDetectorModel()
        rng = np.random.default_rng(0)
        samples = model.sample_noise(0.02, 10_000, rng)
        assert samples.mean() == pytest.approx(0.02, abs=0.01)


class TestHardware:
    def test_defaults_nominal(self):
        hw = HardwareProfile()
        assert hw.speaker_gain_db == 0.0
        assert not hw.faulty

    def test_population_statistics(self):
        population = HardwarePopulation()
        rng = np.random.default_rng(0)
        profiles = population.sample_many(400, rng)
        gains = np.array([p.speaker_gain_db for p in profiles])
        assert abs(gains.std() - population.speaker_gain_std_db) < 0.5
        faulty_rate = np.mean([p.faulty for p in profiles])
        assert faulty_rate < 0.05

    def test_population_invalid(self):
        with pytest.raises(ValidationError):
            HardwarePopulation(faulty_probability=2.0)


class TestChirpPattern:
    def test_paper_defaults(self):
        pattern = ChirpPattern()
        assert pattern.num_chirps == 10
        assert pattern.chirp_duration_s == 0.008

    def test_chirp_samples(self):
        pattern = ChirpPattern(chirp_duration_s=0.008)
        assert pattern.chirp_samples(16_000.0) == 128

    def test_four_bit_accumulator_limit(self):
        with pytest.raises(ValidationError):
            ChirpPattern(num_chirps=16)

    def test_emission_times_monotone(self):
        pattern = ChirpPattern()
        times = pattern.emission_times(rng=0)
        assert np.all(np.diff(times) >= pattern.chirp_duration_s + pattern.interval_s)

    def test_random_delays_decorrelate(self):
        pattern = ChirpPattern(random_delay_max_s=0.02)
        a = pattern.emission_times(rng=1)
        b = pattern.emission_times(rng=2)
        assert not np.allclose(a[1:], b[1:])


class TestNoiseBursts:
    def test_zero_rate_flat_track(self):
        process = NoiseBurstProcess(rate_hz=0.0, duration_s=0.01, fp_rate=0.5)
        track = process.false_positive_track(1000, 16_000.0, 0.001, rng=0)
        assert np.all(track == 0.001)

    def test_bursts_elevate(self):
        process = NoiseBurstProcess(rate_hz=100.0, duration_s=0.01, fp_rate=0.5)
        track = process.false_positive_track(16_000, 16_000.0, 0.001, rng=0)
        assert track.max() == 0.5
        assert track.min() == 0.001

    def test_from_environment(self):
        env = get_environment("grass")
        process = NoiseBurstProcess.from_environment(env)
        assert process.rate_hz == env.noise_burst_rate_hz


class TestSynthesizeWaveform:
    def test_length(self):
        wave = synthesize_waveform(num_chirps=2, total_duration_s=0.1)
        assert wave.shape[0] == 1600

    def test_chirps_present(self):
        wave = synthesize_waveform(num_chirps=1, amplitude=100.0)
        assert np.abs(wave).max() == pytest.approx(100.0, rel=0.05)

    def test_silence_between_chirps(self):
        wave = synthesize_waveform(num_chirps=2, noise_std=0.0)
        assert (wave == 0).sum() > 50

    def test_noise_added(self):
        clean = synthesize_waveform(num_chirps=1, noise_std=0.0)
        noisy = synthesize_waveform(num_chirps=1, noise_std=50.0, rng=0)
        assert noisy.std() > clean.std()

    def test_invalid(self):
        with pytest.raises(ValidationError):
            synthesize_waveform(num_chirps=-1)
