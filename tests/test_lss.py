"""Tests for repro.core.lss (centralized least squares scaling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import align_to_reference, localization_errors
from repro.core.lss import (
    LssConfig,
    lss_error,
    lss_gradient,
    lss_localize,
    lss_localize_robust,
)
from repro.core.measurements import EdgeList, MeasurementSet
from repro.errors import InsufficientDataError, ValidationError


def square_edges(side=10.0, with_diagonals=True):
    """Unit-square-ish test fixture: 4 nodes, known distances."""
    positions = np.array(
        [[0.0, 0.0], [side, 0.0], [side, side], [0.0, side]]
    )
    pairs = [(0, 1), (1, 2), (2, 3), (0, 3)]
    if with_diagonals:
        pairs += [(0, 2), (1, 3)]
    pairs = np.asarray(pairs, dtype=np.int64)
    dists = np.hypot(
        *(positions[pairs[:, 0]] - positions[pairs[:, 1]]).T
    )
    edges = EdgeList(pairs=pairs, distances=dists, weights=np.ones(len(pairs)))
    return positions, edges


class TestLssConfig:
    def test_defaults(self):
        config = LssConfig()
        assert config.min_spacing_m is None
        assert config.constraint_weight == 10.0

    def test_invalid_values(self):
        with pytest.raises(ValidationError):
            LssConfig(min_spacing_m=-1.0)
        with pytest.raises(ValidationError):
            LssConfig(max_epochs=0)
        with pytest.raises(ValidationError):
            LssConfig(restarts=0)
        with pytest.raises(ValidationError):
            LssConfig(step_size=0.0)
        with pytest.raises(ValidationError):
            LssConfig(backend="adam")


class TestErrorAndGradient:
    def test_error_zero_at_truth(self):
        positions, edges = square_edges()
        assert lss_error(positions, edges) == pytest.approx(0.0)

    def test_error_positive_off_truth(self):
        positions, edges = square_edges()
        assert lss_error(positions + [1.0, -2.0] * np.arange(4)[:, None], edges) > 0

    def test_error_weighted(self):
        positions, edges = square_edges()
        perturbed = positions.copy()
        perturbed[0] += [1.0, 0.0]
        base = lss_error(perturbed, edges)
        heavier = EdgeList(
            pairs=edges.pairs, distances=edges.distances, weights=edges.weights * 2
        )
        assert lss_error(perturbed, heavier) == pytest.approx(2 * base)

    def test_constraint_term_adds(self):
        positions, edges = square_edges()
        # Add a 5th node on top of node 0 with no measurements.
        pts = np.vstack([positions, positions[0] + [0.1, 0.0]])
        cpairs = np.array([[0, 4], [1, 4], [2, 4], [3, 4]])
        without = lss_error(pts, edges)
        with_constraint = lss_error(
            pts, edges, constraint_pairs=cpairs, min_spacing_m=5.0, constraint_weight=10.0
        )
        assert with_constraint > without

    def test_constraint_inactive_when_respected(self):
        positions, edges = square_edges()
        pts = np.vstack([positions, [[50.0, 50.0]]])
        cpairs = np.array([[0, 4]])
        base = lss_error(pts, edges)
        value = lss_error(
            pts, edges, constraint_pairs=cpairs, min_spacing_m=5.0, constraint_weight=10.0
        )
        assert value == pytest.approx(base)

    def test_gradient_zero_at_minimum(self):
        positions, edges = square_edges()
        grad = lss_gradient(positions, edges)
        assert np.allclose(grad, 0.0, atol=1e-9)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        positions, edges = square_edges()
        pts = positions + rng.normal(0, 1.0, positions.shape)
        cpairs = np.array([[0, 2]])
        kwargs = dict(constraint_pairs=cpairs, min_spacing_m=20.0, constraint_weight=10.0)
        grad = lss_gradient(pts, edges, **kwargs)
        eps = 1e-6
        for node in range(4):
            for axis in range(2):
                plus = pts.copy()
                plus[node, axis] += eps
                minus = pts.copy()
                minus[node, axis] -= eps
                numeric = (
                    lss_error(plus, edges, **kwargs) - lss_error(minus, edges, **kwargs)
                ) / (2 * eps)
                assert grad[node, axis] == pytest.approx(numeric, abs=1e-4)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_gradient_descent_direction_property(self, seed):
        rng = np.random.default_rng(seed)
        positions, edges = square_edges()
        pts = positions + rng.normal(0, 2.0, positions.shape)
        value = lss_error(pts, edges)
        grad = lss_gradient(pts, edges)
        if np.allclose(grad, 0):
            return
        stepped = pts - 1e-6 * grad
        assert lss_error(stepped, edges) <= value + 1e-12


class TestLssLocalize:
    def test_recovers_square(self):
        positions, edges = square_edges()
        result = lss_localize(edges, 4, rng=0)
        aligned = align_to_reference(result.positions, positions)
        assert localization_errors(aligned, positions).max() < 0.05

    def test_initial_configuration_used(self):
        positions, edges = square_edges()
        result = lss_localize(edges, 4, initial=positions, rng=0)
        assert result.error < 1e-6

    def test_initial_shape_checked(self):
        _, edges = square_edges()
        with pytest.raises(ValidationError):
            lss_localize(edges, 4, initial=np.zeros((3, 2)))

    def test_empty_measurements_rejected(self):
        empty = EdgeList(
            pairs=np.zeros((0, 2), dtype=np.int64),
            distances=np.zeros(0),
            weights=np.zeros(0),
        )
        with pytest.raises(InsufficientDataError):
            lss_localize(empty, 4)

    def test_edge_index_out_of_range(self):
        edges = EdgeList(
            pairs=np.array([[0, 9]]), distances=np.array([1.0]), weights=np.ones(1)
        )
        with pytest.raises(ValidationError):
            lss_localize(edges, 4)

    def test_measurement_set_input(self):
        positions, edges = square_edges()
        ms = MeasurementSet.from_edge_arrays(edges.pairs, edges.distances)
        result = lss_localize(ms, 4, rng=0)
        aligned = align_to_reference(result.positions, positions)
        assert localization_errors(aligned, positions).max() < 0.05

    def test_invalid_measurement_type(self):
        with pytest.raises(ValidationError):
            lss_localize({"pairs": []}, 4)

    def test_trace_monotone_within_round(self):
        positions, edges = square_edges()
        config = LssConfig(restarts=1, max_epochs=200)
        result = lss_localize(edges, 4, config=config, rng=0)
        trace = result.error_trace
        assert len(trace) > 1
        # The per-epoch best error never increases inside a round.
        assert all(trace[i + 1] <= trace[i] + 1e-9 for i in range(len(trace) - 1))

    def test_round_boundaries_recorded(self):
        _, edges = square_edges()
        config = LssConfig(restarts=3, max_epochs=50)
        result = lss_localize(edges, 4, config=config, rng=0)
        assert len(result.round_boundaries) == 3
        assert result.round_boundaries[0] == 0

    def test_fixed_positions_pinned(self):
        positions, edges = square_edges()
        fixed = {0: positions[0], 1: positions[1]}
        result = lss_localize(edges, 4, fixed_positions=fixed, rng=0)
        assert np.allclose(result.positions[0], positions[0])
        assert np.allclose(result.positions[1], positions[1])
        # With two pins the solution is anchored up to reflection about
        # the pinned axis; distances must still be honored.
        assert result.stress < 1e-4

    def test_fixed_position_bad_id(self):
        _, edges = square_edges()
        with pytest.raises(ValidationError):
            lss_localize(edges, 4, fixed_positions={7: (0, 0)})

    def test_fixed_position_bad_shape(self):
        _, edges = square_edges()
        with pytest.raises(ValidationError):
            lss_localize(edges, 4, fixed_positions={0: (0, 0, 0)})

    def test_lbfgs_backend_agrees(self):
        positions, edges = square_edges()
        config = LssConfig(backend="lbfgs", restarts=8)
        result = lss_localize(edges, 4, config=config, rng=0)
        aligned = align_to_reference(result.positions, positions)
        assert localization_errors(aligned, positions).max() < 0.05

    def test_stress_excludes_constraint(self):
        positions, edges = square_edges()
        config = LssConfig(min_spacing_m=9.0, restarts=2, max_epochs=300)
        result = lss_localize(edges, 4, config=config, rng=0)
        assert result.stress <= result.error + 1e-9

    def test_deterministic_given_seed(self):
        _, edges = square_edges()
        a = lss_localize(edges, 4, rng=123)
        b = lss_localize(edges, 4, rng=123)
        assert np.allclose(a.positions, b.positions)

    def test_constraint_helps_on_sparse_grid(self):
        # 4x4 grid with only nearest-neighbor distances: the constraint
        # pins the global structure where plain stress wanders.
        xs, ys = np.meshgrid(np.arange(4) * 10.0, np.arange(4) * 10.0)
        positions = np.stack([xs.ravel(), ys.ravel()], axis=1)
        pairs = []
        for i in range(16):
            for j in range(i + 1, 16):
                if np.hypot(*(positions[i] - positions[j])) <= 15.0:
                    pairs.append((i, j))
        pairs = np.asarray(pairs)
        dists = np.hypot(*(positions[pairs[:, 0]] - positions[pairs[:, 1]]).T)
        edges = EdgeList(pairs=pairs, distances=dists, weights=np.ones(len(pairs)))
        con = lss_localize(
            edges, 16, config=LssConfig(min_spacing_m=10.0, restarts=6), rng=3
        )
        aligned = align_to_reference(con.positions, positions)
        assert localization_errors(aligned, positions).mean() < 1.0


class TestRobustLss:
    def test_trims_garbage_edge(self):
        positions, edges = square_edges()
        # Append a garbage low-confidence edge.
        bad = EdgeList(
            pairs=np.vstack([edges.pairs, [[0, 2]]]),
            distances=np.append(edges.distances, 1.0),  # true diagonal ~14.1
            weights=np.append(edges.weights, 0.15),
        )
        result = lss_localize_robust(bad, 4, trim_residual_m=3.0, rng=0)
        aligned = align_to_reference(result.positions, positions)
        assert localization_errors(aligned, positions).max() < 0.5

    def test_no_trim_needed_matches_plain(self):
        positions, edges = square_edges()
        robust = lss_localize_robust(edges, 4, rng=0)
        plain = lss_localize(edges, 4, rng=0)
        assert robust.error == pytest.approx(plain.error, abs=1e-6)

    def test_invalid_threshold(self):
        _, edges = square_edges()
        with pytest.raises(ValidationError):
            lss_localize_robust(edges, 4, trim_residual_m=0.0)

    def test_invalid_rounds(self):
        _, edges = square_edges()
        with pytest.raises(ValidationError):
            lss_localize_robust(edges, 4, max_trim_rounds=-1)
