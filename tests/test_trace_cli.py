"""Tests for the tracing CLI surface: ``run --trace``, ``$REPRO_TRACE``,
and the ``trace summarize`` / ``trace compare`` subcommands."""

import json

import pytest

from repro.errors import ValidationError
from repro.__main__ import main
from repro.telemetry import TRACE_SCHEMA_VERSION, read_trace, read_trace_lenient


def _run_traced(tmp_path, trace_name="t.jsonl", extra=()):
    trace = tmp_path / trace_name
    code = main(
        [
            "run",
            "uniform-multilateration",
            "--seed",
            "1",
            "--trials",
            "2",
            "--store",
            str(tmp_path / "store"),
            "--trace",
            str(trace),
            *extra,
        ]
    )
    assert code == 0
    return trace


class TestRunTrace:
    def test_trace_flag_writes_valid_trace(self, tmp_path, capsys):
        trace = _run_traced(tmp_path)
        out = capsys.readouterr().out
        assert f"-> {trace}" in out
        manifest, records = read_trace(trace)  # validates shape + version
        assert manifest["schema"] == TRACE_SCHEMA_VERSION
        assert manifest["scenario_id"] == "uniform-multilateration"
        assert manifest["master_seed"] == 1
        assert manifest["argv"] == ["run", "uniform-multilateration"]
        assert "code_version" in manifest
        paths = [r["path"] for r in records if r["type"] == "span"]
        assert "scenario" in paths
        assert "scenario/campaign" in paths
        assert paths.count("scenario/campaign/solve") == 2
        counters = {
            r["name"]: r["value"] for r in records if r["type"] == "counter"
        }
        assert counters["engine.campaign.trials"] == 2
        assert counters["store.filesystem.miss"] == 1
        assert counters["store.filesystem.put"] == 1

    def test_env_var_enables_tracing(self, tmp_path, capsys, monkeypatch):
        trace = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        assert main(["run", "uniform-multilateration", "--trials", "2"]) == 0
        assert f"-> {trace}" in capsys.readouterr().out
        read_trace(trace)

    def test_flag_takes_precedence_over_env(self, tmp_path, capsys, monkeypatch):
        env_trace = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(env_trace))
        flag_trace = _run_traced(tmp_path, "flag.jsonl")
        capsys.readouterr()
        assert flag_trace.exists()
        assert not env_trace.exists()

    def test_untraced_run_writes_nothing(self, tmp_path, capsys):
        assert main(["run", "uniform-multilateration", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "trace:" not in out

    def test_experiment_accepts_trace(self, tmp_path, capsys):
        trace = tmp_path / "exp.jsonl"
        assert main(["run", "fig11", "--seed", "2005", "--trace", str(trace)]) == 0
        capsys.readouterr()
        manifest, records = read_trace(trace)
        assert manifest["kind"] == "experiment"
        assert manifest["experiment_id"] == "fig11"
        assert any(
            r["type"] == "span" and r["path"] == "experiment" for r in records
        )


class TestTraceSummarize:
    def test_summarize_renders_tree_and_counters(self, tmp_path, capsys):
        trace = _run_traced(tmp_path)
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"trace: {trace}" in out
        assert f"schema: v{TRACE_SCHEMA_VERSION}" in out
        assert "scenario" in out
        assert "campaign" in out
        assert "solve" in out
        assert "engine.campaign.trials" in out
        assert "store.filesystem.miss" in out

    def test_summarize_shows_scheduler_decisions(self, tmp_path, capsys):
        trace = _run_traced(
            tmp_path,
            "adaptive.jsonl",
            extra=["--adaptive", "--tolerance", "5.0", "--trials", "8"],
        )
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "scheduler decisions:" in out
        assert "boundary 1:" in out
        assert "half_width=" in out
        assert "stop:" in out

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_invalid_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "counter", "name": "c", "value": 1}\n')
        assert main(["trace", "summarize", str(bad)]) == 2
        assert "manifest" in capsys.readouterr().err


class TestTraceLenientReading:
    """A crashed writer leaves the final JSONL line truncated; the
    inspection commands must render everything readable instead of
    rejecting the file."""

    def _truncate_mid_record(self, trace):
        """Chop the trace inside its final record (no trailing newline)."""
        data = trace.read_bytes().rstrip(b"\n")
        last_line_start = data.rfind(b"\n") + 1
        assert len(data) - last_line_start > 10
        trace.write_bytes(data[: last_line_start + 10])
        return trace

    def test_summarize_degrades_on_truncated_tail(self, tmp_path, capsys):
        trace = self._truncate_mid_record(_run_traced(tmp_path))
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        captured = capsys.readouterr()
        assert "truncated mid-record" in captured.err
        assert "crashed writer" in captured.err
        assert "scenario" in captured.out  # readable records still render

    def test_strict_reader_still_rejects_truncation(self, tmp_path):
        trace = self._truncate_mid_record(_run_traced(tmp_path))
        with pytest.raises(ValidationError, match="malformed JSON"):
            read_trace(trace)
        manifest, records, warnings = read_trace_lenient(trace)
        assert manifest["schema"] == TRACE_SCHEMA_VERSION
        assert records  # everything before the torn line survives
        (warning,) = warnings
        assert "dropped it" in warning

    def test_mid_file_corruption_still_fails(self, tmp_path, capsys):
        trace = _run_traced(tmp_path)
        lines = trace.read_text().splitlines()
        lines[2] = lines[2][:10]  # tear a record that is NOT the tail
        trace.write_text("\n".join(lines) + "\n")
        assert main(["trace", "summarize", str(trace)]) == 2
        assert "malformed JSON" in capsys.readouterr().err

    def test_empty_trace_exits_2_without_traceback(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "summarize", str(empty)]) == 2
        assert "trace is empty" in capsys.readouterr().err

    def test_compare_tolerates_truncated_side(self, tmp_path, capsys):
        a = _run_traced(tmp_path, "a.jsonl")
        b = self._truncate_mid_record(_run_traced(tmp_path, "b.jsonl"))
        capsys.readouterr()
        assert main(["trace", "compare", str(a), str(b)]) == 0
        captured = capsys.readouterr()
        assert "truncated mid-record" in captured.err
        assert "scenario" in captured.out


class TestTraceForwardCompat:
    """Schema evolution contract: extra fields are minor additions old
    readers pass through; an unknown schema version is a hard stop."""

    def test_unknown_extra_field_accepted(self, tmp_path):
        trace = _run_traced(tmp_path)
        lines = trace.read_text().splitlines()
        record = json.loads(lines[1])
        record["future_annotation"] = {"from": "v1.1"}
        lines[1] = json.dumps(record)
        trace.write_text("\n".join(lines) + "\n")
        _, records = read_trace(trace)
        assert any(r.get("future_annotation") == {"from": "v1.1"} for r in records)
        assert main(["trace", "summarize", str(trace)]) == 0

    def test_bumped_schema_version_cleanly_rejected(self, tmp_path, capsys):
        trace = _run_traced(tmp_path)
        lines = trace.read_text().splitlines()
        manifest = json.loads(lines[0])
        manifest["schema"] = TRACE_SCHEMA_VERSION + 1
        lines[0] = json.dumps(manifest)
        trace.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValidationError, match="this build reads version"):
            read_trace(trace)
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 2
        assert "not supported" in capsys.readouterr().err

    def test_compare_disjoint_span_paths(self, tmp_path, capsys):
        # A scenario trace and an experiment trace share no span paths;
        # compare must render one-sided rows, not crash.
        scenario = _run_traced(tmp_path, "scenario.jsonl")
        experiment = tmp_path / "experiment.jsonl"
        assert (
            main(["run", "fig11", "--seed", "2005", "--trace", str(experiment)]) == 0
        )
        capsys.readouterr()
        assert main(["trace", "compare", str(scenario), str(experiment)]) == 0
        out = capsys.readouterr().out
        assert "scenario" in out and "experiment" in out
        assert "-" in out  # one-sided rows render a dash placeholder


class TestTraceCompare:
    def test_compare_two_runs(self, tmp_path, capsys):
        a = _run_traced(tmp_path, "a.jsonl")
        b = _run_traced(tmp_path, "b.jsonl")
        capsys.readouterr()
        assert main(["trace", "compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "scenario" in out
        assert "engine.campaign.trials" in out
        # The warm run hit the cache, so the store counters diverge.
        assert "store.filesystem.hit" in out
        assert "store.filesystem.miss" in out

    def test_compare_invalid_exits_2(self, tmp_path, capsys):
        a = _run_traced(tmp_path, "a.jsonl")
        capsys.readouterr()
        assert main(["trace", "compare", str(a), str(tmp_path / "nope.jsonl")]) == 2


class TestRunCompletionLine:
    def test_scheduler_savings_in_completion_line(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "uniform-multilateration",
                "--trials",
                "8",
                "--adaptive",
                "--tolerance",
                "5.0",
                "--store",
                str(tmp_path / "store"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "early stop saved" in out
        assert "of 8 budgeted trials" in out
        assert "store:" in out and "misses=1" in out
