"""The documentation layer stays truthful: links resolve, CLI works.

Mirrors the CI docs job (`.github/workflows/ci.yml`) so a broken README
link or a doc pointing at a renamed file fails locally too.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
DOC_FILES = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "architecture.md",
    REPO_ROOT / "docs" / "observability.md",
    REPO_ROOT / "docs" / "linting.md",
]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_doc_exists_and_links_resolve(doc):
    assert doc.exists(), f"{doc} is missing"
    checker = _load_checker()
    problems = checker.broken_links(doc)
    assert not problems, "; ".join(reason for _, reason in problems)


def test_docs_mention_the_verify_command_and_store_contract():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "python -m pytest -x -q" in readme
    assert "REPRO_STORE_DIR" in readme
    assert "python -m repro list" in readme
    architecture = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    for guarantee in ("Bit-identical store hits", "Worker-count independence",
                      "Early-stop prefix property", "Telemetry non-interference"):
        assert guarantee in architecture


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_doc_rule_codes_exist_in_registry(doc):
    checker = _load_checker()
    problems = checker.unknown_rule_codes(doc)
    assert not problems, "; ".join(reason for _, reason in problems)


def test_phantom_rule_code_is_caught(tmp_path):
    checker = _load_checker()
    doc = tmp_path / "doc.md"
    doc.write_text("RPL001 is real but RPL999 is not.\n", encoding="utf-8")
    problems = checker.unknown_rule_codes(doc)
    assert [code for code, _ in problems] == ["RPL999"]


def test_docs_catalog_covers_every_registered_rule():
    from repro.lint import RULES

    catalog = (REPO_ROOT / "docs" / "linting.md").read_text(encoding="utf-8")
    for code in RULES:
        assert code in catalog, f"docs/linting.md is missing {code}"


def test_cli_list_smoke():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "list"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={**__import__("os").environ, "PYTHONPATH": "src"},
    )
    assert result.returncode == 0, result.stderr
    assert "town-distributed-lss" in result.stdout
    assert "ext-distributed" in result.stdout
