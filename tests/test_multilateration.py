"""Tests for repro.core.multilateration."""

import numpy as np
import pytest

from repro.core.measurements import MeasurementSet
from repro.core.multilateration import (
    intersection_consistency_filter,
    localize_network,
    multilaterate,
)
from repro.errors import InsufficientDataError, ValidationError


@pytest.fixture
def anchors():
    return np.array([[0.0, 0.0], [20.0, 0.0], [0.0, 20.0], [20.0, 20.0]])


def distances_to(anchors, target):
    target = np.asarray(target, dtype=float)
    return np.hypot(anchors[:, 0] - target[0], anchors[:, 1] - target[1])


class TestMultilaterate:
    @pytest.mark.parametrize("solver", ["gradient", "lm"])
    def test_exact_recovery(self, anchors, solver):
        target = [7.0, 11.0]
        result = multilaterate(anchors, distances_to(anchors, target), solver=solver)
        assert result.position == pytest.approx(target, abs=1e-4)
        assert result.residual < 1e-6

    def test_noisy_recovery(self, anchors):
        rng = np.random.default_rng(0)
        target = [12.0, 5.0]
        dists = distances_to(anchors, target) + rng.normal(0, 0.2, 4)
        result = multilaterate(anchors, dists)
        assert np.hypot(*(result.position - target)) < 1.0

    def test_three_anchors_minimum(self):
        anchors3 = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        target = [3.0, 4.0]
        result = multilaterate(anchors3, distances_to(anchors3, target))
        assert result.position == pytest.approx(target, abs=1e-3)

    def test_too_few_anchors(self):
        with pytest.raises(InsufficientDataError):
            multilaterate([[0, 0], [1, 0]], [1.0, 1.0])

    def test_collinear_anchors_rejected(self):
        line = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]])
        with pytest.raises(InsufficientDataError):
            multilaterate(line, [5.0, 5.0, 15.0], consistency_check=False)

    def test_negative_distance_rejected(self, anchors):
        with pytest.raises(ValidationError):
            multilaterate(anchors, [-1.0, 5.0, 5.0, 5.0])

    def test_weights_shape_enforced(self, anchors):
        with pytest.raises(ValidationError):
            multilaterate(anchors, distances_to(anchors, [5, 5]), weights=[1.0])

    def test_weight_downweights_bad_anchor(self, anchors):
        target = [10.0, 10.0]
        dists = distances_to(anchors, target)
        dists[0] += 8.0  # corrupt one anchor's range
        heavy = multilaterate(
            anchors, dists, weights=[1.0, 1.0, 1.0, 1.0], consistency_check=False
        )
        light = multilaterate(
            anchors, dists, weights=[0.01, 1.0, 1.0, 1.0], consistency_check=False
        )
        err_heavy = np.hypot(*(heavy.position - target))
        err_light = np.hypot(*(light.position - target))
        assert err_light < err_heavy

    def test_initial_guess_respected(self, anchors):
        target = [4.0, 4.0]
        result = multilaterate(
            anchors, distances_to(anchors, target), initial=[4.5, 4.5]
        )
        assert result.position == pytest.approx(target, abs=1e-3)

    def test_bad_initial_shape(self, anchors):
        with pytest.raises(ValidationError):
            multilaterate(anchors, distances_to(anchors, [5, 5]), initial=[1.0])

    def test_unknown_solver(self, anchors):
        with pytest.raises(ValidationError):
            multilaterate(anchors, distances_to(anchors, [5, 5]), solver="sgd")

    def test_min_anchors_below_three_rejected(self, anchors):
        with pytest.raises(ValidationError):
            multilaterate(anchors, distances_to(anchors, [5, 5]), min_anchors=2)

    def test_consistency_filter_improves_with_bad_anchor(self, anchors):
        target = [10.0, 10.0]
        extra = np.vstack([anchors, [[40.0, 10.0]]])
        dists = distances_to(extra, target)
        dists[4] *= 1.6  # badly wrong range on the extra anchor
        filtered = multilaterate(extra, dists, consistency_check=True)
        unfiltered = multilaterate(extra, dists, consistency_check=False)
        err_f = np.hypot(*(filtered.position - target))
        err_u = np.hypot(*(unfiltered.position - target))
        assert err_f <= err_u + 1e-9
        assert 4 not in filtered.anchors_used


class TestIntersectionConsistencyFilter:
    def test_keeps_consistent(self, anchors):
        target = [9.0, 9.0]
        kept = intersection_consistency_filter(anchors, distances_to(anchors, target))
        assert list(kept) == [0, 1, 2, 3]

    def test_drops_disjoint_circle(self, anchors):
        target = [9.0, 9.0]
        extra = np.vstack([anchors, [[100.0, 100.0]]])
        dists = np.append(distances_to(anchors, target), 5.0)
        kept = intersection_consistency_filter(extra, dists)
        assert 4 not in kept

    def test_returns_all_when_too_few_survive(self):
        anchors = np.array([[0.0, 0.0], [50.0, 0.0], [0.0, 50.0]])
        # Ranges too small to intersect anything.
        kept = intersection_consistency_filter(anchors, [1.0, 1.0, 1.0])
        assert list(kept) == [0, 1, 2]

    def test_two_anchors_passthrough(self):
        kept = intersection_consistency_filter([[0, 0], [5, 0]], [2.0, 2.0])
        assert list(kept) == [0, 1]

    def test_zero_distance_tolerated(self, anchors):
        dists = distances_to(anchors, [9.0, 9.0])
        dists[0] = 0.0
        kept = intersection_consistency_filter(anchors, dists)
        assert 0 not in kept or len(kept) == 4  # must not raise

    def test_bad_radius_count(self, anchors):
        with pytest.raises(ValidationError):
            intersection_consistency_filter(anchors, [1.0, 2.0])


def _network_measurements(positions, anchor_idx, pairs, sigma=0.0, rng=None):
    rng = np.random.default_rng(rng)
    ms = MeasurementSet()
    for i, j in pairs:
        truth = float(np.hypot(*(positions[i] - positions[j])))
        noisy = max(0.0, truth + (rng.normal(0, sigma) if sigma else 0.0))
        ms.add_distance(int(i), int(j), noisy, true_distance=truth)
    return ms


class TestLocalizeNetwork:
    def setup_method(self):
        # 3x3 grid, corners as anchors.
        xs, ys = np.meshgrid([0.0, 10.0, 20.0], [0.0, 10.0, 20.0])
        self.positions = np.stack([xs.ravel(), ys.ravel()], axis=1)
        self.anchor_idx = [0, 2, 6, 8]
        self.all_pairs = [
            (i, j) for i in range(9) for j in range(i + 1, 9)
            if np.hypot(*(self.positions[i] - self.positions[j])) <= 15.0
        ]

    def test_full_localization_exact(self):
        # Corners + center as anchors: every edge node sees three
        # non-collinear anchors within range.
        anchor_idx = [0, 2, 4, 6, 8]
        ms = _network_measurements(self.positions, anchor_idx, self.all_pairs)
        anchors = {i: self.positions[i] for i in anchor_idx}
        result = localize_network(ms, anchors, 9)
        non_anchor = ~result.is_anchor
        assert result.localized[non_anchor].sum() == 4
        localized = result.localized & non_anchor
        errs = np.hypot(
            *(result.positions[localized] - self.positions[localized]).T
        )
        assert errs.max() < 0.5

    def test_corner_anchors_reach_only_center(self):
        # With corner anchors only, just the center node has three
        # anchor measurements within the 15 m cutoff.
        ms = _network_measurements(self.positions, self.anchor_idx, self.all_pairs)
        anchors = {i: self.positions[i] for i in self.anchor_idx}
        result = localize_network(ms, anchors, 9)
        non_anchor = ~result.is_anchor
        localized = result.localized & non_anchor
        assert list(np.nonzero(localized)[0]) == [4]

    def test_anchor_rows_carry_known_positions(self):
        ms = _network_measurements(self.positions, self.anchor_idx, self.all_pairs)
        anchors = {i: self.positions[i] for i in self.anchor_idx}
        result = localize_network(ms, anchors, 9)
        for i in self.anchor_idx:
            assert np.allclose(result.positions[i], self.positions[i])
            assert result.is_anchor[i]

    def test_insufficient_anchor_links_stay_unlocalized(self):
        # Node 4 (center) only measured to one anchor: unlocalizable.
        pairs = [(0, 4)]
        ms = _network_measurements(self.positions, self.anchor_idx, pairs)
        anchors = {i: self.positions[i] for i in self.anchor_idx}
        result = localize_network(ms, anchors, 9)
        assert not result.localized[4]
        assert np.isnan(result.positions[4]).all()
        assert result.anchors_per_node[4] == 1

    def test_progressive_extends_coverage(self):
        # Chain: node 4 sees three anchors; node 1 sees node 4 + two anchors.
        pairs = [(0, 4), (2, 4), (8, 4), (0, 1), (2, 1), (1, 4)]
        ms = _network_measurements(self.positions, self.anchor_idx, pairs)
        anchors = {i: self.positions[i] for i in self.anchor_idx}
        plain = localize_network(ms, anchors, 9, progressive=False)
        progressive = localize_network(ms, anchors, 9, progressive=True)
        assert not plain.localized[1]
        assert progressive.localized[1]

    def test_average_anchors_per_node(self):
        ms = _network_measurements(self.positions, self.anchor_idx, self.all_pairs)
        anchors = {i: self.positions[i] for i in self.anchor_idx}
        result = localize_network(ms, anchors, 9)
        assert result.average_anchors_per_node > 0

    def test_edge_list_input(self):
        ms = _network_measurements(self.positions, self.anchor_idx, self.all_pairs)
        anchors = {i: self.positions[i] for i in self.anchor_idx}
        result = localize_network(ms.to_edge_list(), anchors, 9)
        assert result.localized.sum() >= 5

    def test_invalid_measurement_type(self):
        with pytest.raises(ValidationError):
            localize_network([(0, 1, 5.0)], {0: (0, 0)}, 2)

    def test_anchor_id_out_of_range(self):
        ms = _network_measurements(self.positions, self.anchor_idx, self.all_pairs)
        with pytest.raises(ValidationError):
            localize_network(ms, {99: (0.0, 0.0)}, 9)

    def test_bad_anchor_position_shape(self):
        ms = _network_measurements(self.positions, self.anchor_idx, self.all_pairs)
        with pytest.raises(ValidationError):
            localize_network(ms, {0: (0.0, 0.0, 0.0)}, 9)

    def test_all_anchors_everything_localized(self):
        ms = _network_measurements(self.positions, list(range(9)), self.all_pairs)
        anchors = {i: self.positions[i] for i in range(9)}
        result = localize_network(ms, anchors, 9)
        assert result.localized.all()
