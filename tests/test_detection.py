"""Tests for repro.ranging.detection (the Figure 3 algorithms)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.ranging.detection import (
    accumulate_chirps,
    detect_all_windows,
    detect_signal,
    first_hit,
)


class TestAccumulateChirps:
    def test_sums_binary_streams(self):
        streams = [np.array([0, 1, 0, 1]), np.array([0, 1, 1, 0])]
        counts = accumulate_chirps(streams)
        assert list(counts) == [0, 2, 1, 1]

    def test_clips_at_15(self):
        streams = [np.ones(3, dtype=np.uint8)] * 20
        counts = accumulate_chirps(streams)
        assert list(counts) == [15, 15, 15]

    def test_single_stream(self):
        counts = accumulate_chirps([np.array([1, 0, 1])])
        assert list(counts) == [1, 0, 1]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            accumulate_chirps([])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            accumulate_chirps([np.zeros(3), np.zeros(4)])

    def test_non_binary_rejected(self):
        with pytest.raises(ValidationError):
            accumulate_chirps([np.array([0, 2, 1])])

    def test_non_1d_rejected(self):
        with pytest.raises(ValidationError):
            accumulate_chirps([np.zeros((2, 2))])


def buffer_with_signal(n=200, start=80, length=40, count=8, noise_at=()):
    """A count buffer with a solid block of detections plus point noise."""
    buf = np.zeros(n, dtype=np.int64)
    buf[start : start + length] = count
    for idx in noise_at:
        buf[idx] = max(buf[idx], 3)
    return buf


class TestDetectSignal:
    def test_finds_signal_start(self):
        buf = buffer_with_signal()
        assert detect_signal(buf, k=6, m=32, threshold=2) == 80

    def test_isolated_noise_ignored(self):
        buf = buffer_with_signal(noise_at=(5, 30, 45))
        assert detect_signal(buf, k=6, m=32, threshold=2) == 80

    def test_dense_noise_cluster_triggers_early(self):
        # Six hits inside one 32-sample window *starting on a hit*
        # constitute a (false) detection: the algorithm cannot tell.
        buf = buffer_with_signal(noise_at=(10, 12, 14, 16, 18, 20))
        assert detect_signal(buf, k=6, m=32, threshold=2) == 10

    def test_no_signal_returns_minus_one(self):
        assert detect_signal(np.zeros(100, dtype=int), k=6, m=32, threshold=2) == -1

    def test_threshold_respected(self):
        buf = buffer_with_signal(count=1)
        assert detect_signal(buf, k=6, m=32, threshold=2) == -1
        assert detect_signal(buf, k=6, m=32, threshold=1) == 80

    def test_k_of_m_requirement(self):
        # Exactly 5 hits in a window with k=6: no detection.
        buf = np.zeros(100, dtype=int)
        buf[40:45] = 5
        assert detect_signal(buf, k=6, m=32, threshold=2) == -1
        assert detect_signal(buf, k=5, m=32, threshold=2) == 40

    def test_window_must_start_on_hit(self):
        buf = np.zeros(100, dtype=int)
        buf[50:70] = 5
        # Window starting at 49 has >= k hits, but samples[49] < T.
        assert detect_signal(buf, k=6, m=32, threshold=2) == 50

    def test_signal_at_buffer_start(self):
        buf = buffer_with_signal(start=0)
        assert detect_signal(buf, k=6, m=32, threshold=2) == 0

    def test_signal_at_buffer_end_within_window(self):
        buf = np.zeros(100, dtype=int)
        buf[68:100] = 5
        assert detect_signal(buf, k=6, m=32, threshold=2) == 68

    def test_buffer_shorter_than_window(self):
        assert detect_signal(np.ones(10, dtype=int), k=2, m=32, threshold=1) == -1

    def test_invalid_parameters(self):
        buf = np.zeros(100, dtype=int)
        with pytest.raises(ValidationError):
            detect_signal(buf, k=0, m=32, threshold=2)
        with pytest.raises(ValidationError):
            detect_signal(buf, k=40, m=32, threshold=2)
        with pytest.raises(ValidationError):
            detect_signal(buf, k=6, m=32, threshold=0)
        with pytest.raises(ValidationError):
            detect_signal(np.zeros((2, 50)), k=6, m=32, threshold=2)

    @given(
        start=st.integers(0, 150),
        count=st.integers(2, 15),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_detection_index_satisfies_criterion(self, start, count, seed):
        rng = np.random.default_rng(seed)
        buf = np.zeros(250, dtype=np.int64)
        length = int(rng.integers(35, 80))
        buf[start : start + length] = count
        idx = detect_signal(buf, k=6, m=32, threshold=2)
        assert idx != -1
        window = buf[idx : idx + 32]
        assert buf[idx] >= 2
        assert (window >= 2).sum() >= 6
        # No earlier index satisfies the criterion.
        for s in range(idx):
            w = buf[s : s + 32]
            assert not (buf[s] >= 2 and (w >= 2).sum() >= 6)


class TestDetectAllWindows:
    def test_contiguous_signal_block(self):
        buf = buffer_with_signal(start=80, length=40)
        starts = detect_all_windows(buf, k=6, m=32, threshold=2)
        assert starts[0] == 80
        assert np.all(np.diff(starts) >= 1)

    def test_echo_produces_second_cluster(self):
        buf = np.zeros(400, dtype=int)
        buf[100:140] = 6
        buf[300:340] = 6
        starts = detect_all_windows(buf, k=6, m=32, threshold=2)
        assert 100 in starts
        assert 300 in starts

    def test_empty(self):
        assert detect_all_windows(np.zeros(100, dtype=int), 6, 32, 2).size == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            detect_all_windows(np.zeros(100), 0, 32, 2)


class TestFirstHit:
    def test_first_index(self):
        assert first_hit(np.array([0, 0, 1, 0, 1])) == 2

    def test_threshold(self):
        assert first_hit(np.array([1, 2, 3]), threshold=3) == 2

    def test_none(self):
        assert first_hit(np.zeros(10, dtype=int)) == -1

    def test_invalid(self):
        with pytest.raises(ValidationError):
            first_hit(np.zeros(10), threshold=0)
        with pytest.raises(ValidationError):
            first_hit(np.zeros((2, 5)))
