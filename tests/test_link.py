"""Tests for the signal-level link simulator (repro.ranging.link)."""

import numpy as np
import pytest

from repro.acoustics import get_environment
from repro.acoustics.hardware import HardwareProfile
from repro.ranging.link import AcousticLinkSimulator, LinkRealization
from repro.ranging.tdoa import TdoaConfig


@pytest.fixture
def sim():
    env = get_environment("grass").with_overrides(
        false_positive_rate=0.0,
        noise_burst_rate_hz=0.0,
    )
    simulator = AcousticLinkSimulator(environment=env)
    simulator.long_noise_probability = 0.0
    return simulator


CLEAN_LINK = LinkRealization(link_gain_db=0.0, has_echo=False)


class TestBufferGeometry:
    def test_buffer_length(self, sim):
        counts = sim.simulate_counts(5.0, link=CLEAN_LINK, rng=0)
        assert counts.shape[0] == sim.tdoa.buffer_length

    def test_counts_bounded_by_chirps(self, sim):
        counts = sim.simulate_counts(5.0, link=CLEAN_LINK, rng=0)
        assert counts.max() <= sim.pattern.num_chirps
        assert counts.min() >= 0

    def test_signal_lands_at_expected_index(self, sim):
        distance = 8.0
        counts = sim.simulate_counts(distance, link=CLEAN_LINK, rng=1)
        expected = sim.tdoa.index_from_distance(distance)
        chirp_len = sim.pattern.chirp_samples(sim.tdoa.sampling_rate_hz)
        window = counts[expected - 8 : expected + chirp_len + 8]
        assert window.sum() > 0
        # Nothing before the arrival (no noise in this fixture).
        assert counts[: expected - 8].sum() == 0

    def test_out_of_buffer_distance_empty(self, sim):
        counts = sim.simulate_counts(100.0, link=CLEAN_LINK, rng=0)
        assert counts.sum() == 0

    def test_negative_distance_rejected(self, sim):
        with pytest.raises(Exception):
            sim.simulate_counts(-1.0, link=CLEAN_LINK)


class TestSnrBehaviour:
    def test_snr_decreases_with_distance(self, sim):
        hw = HardwareProfile()
        snr_near = sim.link_snr_db(5.0, hw, hw, CLEAN_LINK)
        snr_far = sim.link_snr_db(18.0, hw, hw, CLEAN_LINK)
        assert snr_near > snr_far

    def test_unit_gains_add(self, sim):
        hw = HardwareProfile()
        loud = HardwareProfile(speaker_gain_db=5.0)
        base = sim.link_snr_db(10.0, hw, hw, CLEAN_LINK)
        boosted = sim.link_snr_db(10.0, loud, hw, CLEAN_LINK)
        assert boosted == pytest.approx(base + 5.0)

    def test_link_gain_applied(self, sim):
        hw = HardwareProfile()
        attenuated = LinkRealization(link_gain_db=-10.0)
        base = sim.link_snr_db(10.0, hw, hw, CLEAN_LINK)
        shadowed = sim.link_snr_db(10.0, hw, hw, attenuated)
        assert shadowed == pytest.approx(base - 10.0)

    def test_weak_signal_fewer_detections(self, sim):
        rng = np.random.default_rng(0)
        strong = sim.simulate_counts(5.0, link=CLEAN_LINK, rng=rng).sum()
        weak = sim.simulate_counts(
            5.0, link=LinkRealization(link_gain_db=-28.0), rng=rng
        ).sum()
        assert weak < strong


class TestErrorSources:
    def test_faulty_receiver_raises_floor(self, sim):
        rng = np.random.default_rng(0)
        faulty = HardwareProfile(faulty=True)
        counts = sim.simulate_counts(
            100.0, receiver_hw=faulty, link=CLEAN_LINK, rng=rng
        )
        # No signal in buffer, yet the faulty detector fires anyway.
        assert counts.sum() > 0

    def test_echo_adds_second_arrival(self, sim):
        rng = np.random.default_rng(3)
        echo = LinkRealization(
            link_gain_db=5.0, has_echo=True, echo_delay_s=0.02
        )
        distance = 5.0
        fs = sim.tdoa.sampling_rate_hz
        chirp_len = sim.pattern.chirp_samples(fs)
        arrival = sim.tdoa.index_from_distance(distance)
        echo_start = arrival + int(0.02 * fs)
        counts = sim.simulate_counts(distance, link=echo, rng=rng)
        gap = counts[arrival + chirp_len + 16 : echo_start - 16]
        echo_zone = counts[echo_start : echo_start + chirp_len]
        assert echo_zone.sum() > gap.sum()

    def test_long_noise_floods_buffer(self, sim):
        sim.long_noise_probability = 1.0
        rng = np.random.default_rng(0)
        counts = sim.simulate_counts(100.0, link=CLEAN_LINK, rng=rng)
        # Elevated false positives across the whole buffer.
        assert counts.sum() > 20

    def test_latency_bias_shifts_arrival(self, sim):
        slow = HardwareProfile(latency_bias_s=0.005)  # ~80 samples
        counts_norm = sim.simulate_counts(8.0, link=CLEAN_LINK, rng=0)
        counts_slow = sim.simulate_counts(
            8.0, source_hw=slow, link=CLEAN_LINK, rng=0
        )
        first_norm = np.nonzero(counts_norm)[0][0]
        first_slow = np.nonzero(counts_slow)[0][0]
        assert first_slow > first_norm + 40


class TestDrawLink:
    def test_echo_probability_zero(self):
        env = get_environment("grass").with_overrides(echo_probability=0.0)
        no_echo_sim = AcousticLinkSimulator(environment=env)
        rng = np.random.default_rng(0)
        links = [no_echo_sim.draw_link(rng) for _ in range(50)]
        assert not any(l.has_echo for l in links)

    def test_echo_probability_one(self):
        env = get_environment("urban").with_overrides(echo_probability=1.0)
        sim = AcousticLinkSimulator(environment=env)
        rng = np.random.default_rng(0)
        link = sim.draw_link(rng)
        assert link.has_echo
        lo, hi = env.echo_delay_range_s
        assert lo <= link.echo_delay_s <= hi

    def test_gain_variance_matches_environment(self):
        env = get_environment("grass")
        sim = AcousticLinkSimulator(environment=env)
        rng = np.random.default_rng(1)
        gains = np.array([sim.draw_link(rng).link_gain_db for _ in range(500)])
        assert abs(gains.std() - env.ground_variation_db) < 1.0


class TestDeterminism:
    def test_same_seed_same_buffer(self, sim):
        a = sim.simulate_counts(7.0, link=CLEAN_LINK, rng=42)
        b = sim.simulate_counts(7.0, link=CLEAN_LINK, rng=42)
        assert np.array_equal(a, b)

    def test_different_seed_differs(self, sim):
        a = sim.simulate_counts(7.0, link=CLEAN_LINK, rng=1)
        b = sim.simulate_counts(7.0, link=CLEAN_LINK, rng=2)
        assert not np.array_equal(a, b)
