"""Tests for the message-passing distributed protocol (repro.core.protocol)."""

import numpy as np
import pytest

from repro.core import (
    DistributedConfig,
    distributed_localize,
    evaluate_localization,
    run_distributed_protocol,
)
from repro.deploy import square_grid
from repro.errors import ValidationError
from repro.network.radio import RadioModel
from repro.ranging import gaussian_ranges


@pytest.fixture(scope="module")
def scenario():
    positions = square_grid(4, 4, spacing_m=10.0)
    ranges = gaussian_ranges(positions, max_range_m=16.0, sigma_m=0.1, rng=3)
    config = DistributedConfig(min_spacing_m=10.0)
    return positions, ranges, config


class TestProtocolExecution:
    def test_localizes_everyone(self, scenario):
        positions, ranges, config = scenario
        result = run_distributed_protocol(ranges, positions, root=5, config=config, rng=2)
        assert result.localized.all()
        report = evaluate_localization(
            result.positions, positions, localized_mask=result.localized, align=True
        )
        assert report.average_error < 1.0

    def test_message_cost_is_linear(self, scenario):
        positions, ranges, config = scenario
        n = len(positions)
        result = run_distributed_protocol(ranges, positions, root=5, config=config, rng=2)
        assert result.messages_per_phase["measurement_exchange"] == n
        assert result.messages_per_phase["map_exchange"] == n
        assert result.messages_per_phase["alignment_flood"] <= n
        assert result.broadcasts_per_node <= 3.0

    def test_matches_computational_pipeline(self, scenario):
        positions, ranges, config = scenario
        protocol = run_distributed_protocol(
            ranges, positions, root=5, config=config, rng=2
        )
        computational = distributed_localize(ranges, 16, 5, config=config, rng=2)
        rep_p = evaluate_localization(
            protocol.positions, positions, localized_mask=protocol.localized, align=True
        )
        rep_c = evaluate_localization(
            computational.positions,
            positions,
            localized_mask=computational.localized,
            align=True,
        )
        # Same math, different plumbing: comparable accuracy.
        assert abs(rep_p.average_error - rep_c.average_error) < 1.0

    def test_invalid_root(self, scenario):
        positions, ranges, config = scenario
        with pytest.raises(ValidationError):
            run_distributed_protocol(ranges, positions, root=99, config=config)

    def test_invalid_measurements(self, scenario):
        positions, _, config = scenario
        with pytest.raises(ValidationError):
            run_distributed_protocol([(0, 1, 5.0)], positions, root=0, config=config)

    def test_radio_partition_limits_flood(self, scenario):
        positions, ranges, config = scenario
        # Radio so short nothing can talk: the flood never leaves root.
        radio = RadioModel(comm_range_m=1.0, delivery_probability=1.0)
        result = run_distributed_protocol(
            ranges, positions, root=5, config=config, radio=radio, rng=2
        )
        assert result.localized.sum() == 1  # only the root knows its frame

    def test_root_position_is_own_map_coordinate(self, scenario):
        positions, ranges, config = scenario
        result = run_distributed_protocol(ranges, positions, root=5, config=config, rng=2)
        assert np.all(np.isfinite(result.positions[5]))
