"""Reproduces Figure 2 of the paper.

Errors of the baseline acoustic ranging service on a 60-node urban
deployment (distances to 30 m; large errors are mostly underestimates
from noise and echoes).

Run with ``pytest benchmarks/test_bench_fig02_baseline_ranging.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig02_baseline_ranging(run_figure):
    run_figure("fig2")
