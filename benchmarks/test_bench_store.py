"""Benchmarks the content-addressed result store.

The store's reason to exist: a repeated campaign must be dramatically
cheaper than a cold run, because the warm path does zero simulation
work — it re-reads a few kilobytes of compressed trial records.  Run
with ``pytest benchmarks/test_bench_store.py -s`` to see the measured
speedup.
"""

import os
import time

import pytest

from repro.scenarios import get_scenario, run_scenario
from repro.store import ResultStore

SPEEDUP_FLOOR = 20.0

#: Wall-clock ratio assertions need a machine that isn't fighting other
#: tenants; on shared CI runners the measured ratio is noise-bound.
quiet_machine_only = pytest.mark.skipif(
    bool(os.environ.get("CI")),
    reason="wall-clock speedup assertions are unreliable on shared CI runners",
)


@quiet_machine_only
def test_store_hit_speedup(tmp_path):
    store = ResultStore(tmp_path, code_version="bench")
    spec = get_scenario("town-multilateration")

    start = time.perf_counter()
    cold = run_scenario(spec, master_seed=0, store=store)
    cold_s = time.perf_counter() - start

    warm_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        warm = run_scenario(spec, master_seed=0, store=store)
        warm_s = min(warm_s, time.perf_counter() - start)

    assert warm.records == cold.records
    assert warm.aggregate() == cold.aggregate()
    speedup = cold_s / warm_s
    print(
        f"\nstore: cold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.3f} ms "
        f"({speedup:.0f}x, floor {SPEEDUP_FLOOR:.0f}x), "
        f"stats {store.stats.as_dict()}"
    )
    assert speedup >= SPEEDUP_FLOOR
