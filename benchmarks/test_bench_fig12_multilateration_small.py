"""Reproduces Figure 12 of the paper.

Multilateration with 15 nodes (5 anchors) in a 25x25 m parking lot: ~0.9
m average error.

Run with ``pytest benchmarks/test_bench_fig12_multilateration_small.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig12_multilateration_small(run_figure):
    run_figure("fig12")
