"""Benchmarks the disabled-telemetry overhead ceiling.

Instrumentation stays in the hot paths permanently (design rule 1 of
``repro/telemetry``), so the null-recorder path must be near-free: the
projected cost of every instrumentation call a Fig. 16 run makes —
measured null-path per-call cost × the run's actual call count — must
stay under 5% of the run's wall time.  Run with ``pytest
benchmarks/test_bench_telemetry.py -s`` to see the measured margin.
"""

import os
import time

import pytest

from repro import telemetry
from repro.experiments import DEFAULT_SEED, get_experiment

#: The acceptance ceiling: projected instrumentation overhead as a
#: fraction of the uninstrumented Fig. 16 wall time.
OVERHEAD_CEILING = 0.05

#: Wall-clock ratio assertions need a machine that isn't fighting other
#: tenants; on shared CI runners the measured ratio is noise-bound.
quiet_machine_only = pytest.mark.skipif(
    bool(os.environ.get("CI")),
    reason="wall-clock overhead assertions are unreliable on shared CI runners",
)


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _null_path_cost_per_call(iterations=200_000):
    """Measured cost of one module-level helper call against the null
    recorder — the exact shape instrumented hot paths use."""
    assert not telemetry.enabled()
    count = telemetry.count
    span = telemetry.span
    start = time.perf_counter()
    for _ in range(iterations):
        count("bench.noop", 1)
    counter_cost = (time.perf_counter() - start) / iterations
    start = time.perf_counter()
    for _ in range(iterations):
        with span("bench.noop"):
            pass
    span_cost = (time.perf_counter() - start) / iterations
    # Spans are the pricier shape (two protocol calls); charge every
    # instrumentation site at the worse rate to keep the bound honest.
    return max(counter_cost, span_cost)


@quiet_machine_only
def test_disabled_telemetry_overhead_on_fig16():
    driver = get_experiment("fig16")

    baseline_s = _best_of(lambda: driver(DEFAULT_SEED))

    # One traced run counts how many instrumentation calls the same
    # workload actually routes through the recorder.
    with telemetry.recording() as recorder:
        driver(DEFAULT_SEED)
    calls = recorder.instrumentation_calls
    assert calls > 0, "fig16 exercised no instrumented code paths"

    per_call_s = _null_path_cost_per_call()
    projected_overhead_s = per_call_s * calls
    ratio = projected_overhead_s / baseline_s

    print()
    print(
        f"fig16 baseline: {baseline_s * 1000:.1f} ms, "
        f"{calls} instrumentation calls, "
        f"null path {per_call_s * 1e9:.0f} ns/call, "
        f"projected overhead {projected_overhead_s * 1000:.3f} ms "
        f"({ratio:.2%} of baseline, ceiling {OVERHEAD_CEILING:.0%})"
    )
    assert ratio <= OVERHEAD_CEILING, (
        f"disabled-telemetry overhead projects to {ratio:.2%} of the "
        f"Fig. 16 wall time (ceiling {OVERHEAD_CEILING:.0%}); either the "
        f"null path got slower or hot loops gained per-iteration "
        f"instrumentation calls"
    )
