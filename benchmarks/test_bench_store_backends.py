"""Benchmarks the store backends against each other.

The SQLite backend's reason to exist: store-wide listings (`list_shards`,
`repro store ls`, the CLI shard status) are answered from the metadata
index instead of decompressing and parsing every entry, so on a
1000-entry store they must be at least 5x faster than the filesystem
full scan — while the warm-hit ``get`` path (one indexed BLOB read)
stays within 1.5x of the filesystem backend's single-file read.  Run
with ``pytest benchmarks/test_bench_store_backends.py -s`` to see the
measured ratios.
"""

import os
import time

import pytest

from repro.engine.campaign import TrialRecord
from repro.engine.sharding import ShardCampaignResult, ShardSpec
from repro.store import ResultStore, shard_to_payload

LISTING_SPEEDUP_FLOOR = 5.0
WARM_GET_RATIO_CEILING = 1.5
N_ENTRIES = 1000
N_RECORDS = 100

#: Wall-clock ratio assertions need a machine that isn't fighting other
#: tenants; on shared CI runners the measured ratio is noise-bound.
quiet_machine_only = pytest.mark.skipif(
    bool(os.environ.get("CI")),
    reason="wall-clock ratio assertions are unreliable on shared CI runners",
)


def _shard_payload(i):
    """A realistic campaign-shard payload (~100 trial records)."""
    result = ShardCampaignResult(
        master_seed=i,
        records=tuple(
            TrialRecord(
                index=j,
                metrics={"mean_error_m": 0.125 * j + i, "localized_fraction": 1.0},
            )
            for j in range(N_RECORDS)
        ),
        campaign_trials=N_RECORDS * 4,
        shard=ShardSpec(index=i % 4, n_shards=4),
    )
    return shard_to_payload(
        result,
        context={
            "scenario_id": f"bench-{i % 7}",
            "spec_hash": "ab" * 32,
            "code_version": "bench",
        },
    )


def _populate(store, n_entries):
    for i in range(n_entries):
        store.put(store.key_for(("bench-entry", i)), _shard_payload(i))


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@quiet_machine_only
def test_sqlite_indexed_listing_speedup(tmp_path):
    fs = ResultStore(tmp_path / "fs", code_version="bench")
    sq = ResultStore(tmp_path / "store.sqlite", code_version="bench")
    _populate(fs, N_ENTRIES)
    _populate(sq, N_ENTRIES)

    fs_listing = _best_of(fs.list_shards)
    sq_listing = _best_of(sq.list_shards)
    assert len(fs.list_shards()) == len(sq.list_shards()) == N_ENTRIES

    # len() rides the same index (COUNT vs directory walk).
    fs_len = _best_of(lambda: len(fs))
    sq_len = _best_of(lambda: len(sq))

    speedup = fs_listing / sq_listing
    print(
        f"\nlist_shards over {N_ENTRIES} entries: filesystem "
        f"{fs_listing * 1e3:.1f} ms, sqlite {sq_listing * 1e3:.2f} ms "
        f"({speedup:.0f}x, floor {LISTING_SPEEDUP_FLOOR:.0f}x); "
        f"len: {fs_len * 1e3:.2f} ms vs {sq_len * 1e3:.3f} ms"
    )
    assert speedup >= LISTING_SPEEDUP_FLOOR


@quiet_machine_only
def test_sqlite_warm_get_stays_close_to_filesystem(tmp_path):
    fs = ResultStore(tmp_path / "fs", code_version="bench")
    sq = ResultStore(tmp_path / "store.sqlite", code_version="bench")
    _populate(fs, 50)
    _populate(sq, 50)
    keys = [fs.key_for(("bench-entry", i)) for i in range(50)]

    def read_all(store):
        def run():
            for key in keys:
                assert store.get(key) is not None

        return run

    fs_get = _best_of(read_all(fs), repeats=5)
    sq_get = _best_of(read_all(sq), repeats=5)
    ratio = sq_get / fs_get
    print(
        f"\nwarm get x50: filesystem {fs_get * 1e3:.2f} ms, sqlite "
        f"{sq_get * 1e3:.2f} ms (ratio {ratio:.2f}, ceiling "
        f"{WARM_GET_RATIO_CEILING:.1f}x)"
    )
    assert ratio <= WARM_GET_RATIO_CEILING
