"""Shared infrastructure for the reproduction benchmarks.

Every ``test_bench_*`` module regenerates one table/figure of the paper:
it runs the corresponding experiment driver under pytest-benchmark,
prints the paper-vs-measured rows (visible with ``pytest benchmarks/
--benchmark-only -s`` and in the captured output on failure), and
asserts the experiment's qualitative shape checks.

Setting ``REPRO_BENCH_JSON=/path/to/record.json`` additionally writes
the session's pytest-benchmark timings as a versioned bench record —
the same schema ``repro bench run`` emits (:mod:`repro.perf.record` is
the one writer), so ``repro bench check``/``history`` work on either
producer's output.
"""

import os

import pytest

from repro.experiments import DEFAULT_SEED, get_experiment


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_store(tmp_path_factory):
    """Benchmarks must measure real simulation work, never a warm hit
    from the user's persistent store (see tests/conftest.py)."""
    root = tmp_path_factory.mktemp("repro-store")
    saved = os.environ.get("REPRO_STORE_DIR")
    os.environ["REPRO_STORE_DIR"] = str(root)
    yield
    if saved is None:
        os.environ.pop("REPRO_STORE_DIR", None)
    else:
        os.environ["REPRO_STORE_DIR"] = saved


def pytest_sessionfinish(session, exitstatus):
    """Opt-in bench-record export (``REPRO_BENCH_JSON=PATH``).

    Collects every pytest-benchmark measurement of the session into one
    ``kind="pytest-benchmark"`` bench record via the shared schema
    module.  Stays silent when the env var is unset, when pytest ran
    with ``--benchmark-disable``, or when no benchmark produced data.
    """
    out_path = os.environ.get("REPRO_BENCH_JSON")
    if not out_path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return

    from repro.perf.record import make_bench_record, make_workload_result, write_bench_record

    results = []
    for meta in bench_session.benchmarks:
        timings = list(meta.stats.data)
        if not timings or meta.has_error:
            continue
        results.append(
            make_workload_result(
                workload_id=meta.fullname,
                kind="pytest-benchmark",
                timings_s=timings,
                metrics={"rounds": float(meta.stats.rounds)},
            )
        )
    if not results:
        return
    record = make_bench_record(
        "pytest-benchmarks",
        results,
        manifest_extra={"pytest_exitstatus": int(exitstatus)},
    )
    write_bench_record(out_path, record)
    print(f"\nwrote bench record ({len(results)} workloads) to {out_path}")


@pytest.fixture
def run_figure(benchmark):
    """Run one experiment driver under the benchmark, print its table,
    and assert its shape checks."""

    def runner(experiment_id, seed=DEFAULT_SEED):
        driver = get_experiment(experiment_id)
        result = benchmark.pedantic(driver, args=(seed,), rounds=1, iterations=1)
        print()
        print(result.summary())
        failed = [c for c in result.checks if not c.passed]
        assert result.passed, "; ".join(
            f"{c.name} ({c.detail})" for c in failed
        )
        return result

    return runner
