"""Shared infrastructure for the reproduction benchmarks.

Every ``test_bench_*`` module regenerates one table/figure of the paper:
it runs the corresponding experiment driver under pytest-benchmark,
prints the paper-vs-measured rows (visible with ``pytest benchmarks/
--benchmark-only -s`` and in the captured output on failure), and
asserts the experiment's qualitative shape checks.
"""

import os

import pytest

from repro.experiments import DEFAULT_SEED, get_experiment


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_store(tmp_path_factory):
    """Benchmarks must measure real simulation work, never a warm hit
    from the user's persistent store (see tests/conftest.py)."""
    root = tmp_path_factory.mktemp("repro-store")
    saved = os.environ.get("REPRO_STORE_DIR")
    os.environ["REPRO_STORE_DIR"] = str(root)
    yield
    if saved is None:
        os.environ.pop("REPRO_STORE_DIR", None)
    else:
        os.environ["REPRO_STORE_DIR"] = saved


@pytest.fixture
def run_figure(benchmark):
    """Run one experiment driver under the benchmark, print its table,
    and assert its shape checks."""

    def runner(experiment_id, seed=DEFAULT_SEED):
        driver = get_experiment(experiment_id)
        result = benchmark.pedantic(driver, args=(seed,), rounds=1, iterations=1)
        print()
        print(result.summary())
        failed = [c for c in result.checks if not c.passed]
        assert result.passed, "; ".join(
            f"{c.name} ({c.detail})" for c in failed
        )
        return result

    return runner
