"""Shared infrastructure for the reproduction benchmarks.

Every ``test_bench_*`` module regenerates one table/figure of the paper:
it runs the corresponding experiment driver under pytest-benchmark,
prints the paper-vs-measured rows (visible with ``pytest benchmarks/
--benchmark-only -s`` and in the captured output on failure), and
asserts the experiment's qualitative shape checks.
"""

import pytest

from repro.experiments import DEFAULT_SEED, get_experiment


@pytest.fixture
def run_figure(benchmark):
    """Run one experiment driver under the benchmark, print its table,
    and assert its shape checks."""

    def runner(experiment_id, seed=DEFAULT_SEED):
        driver = get_experiment(experiment_id)
        result = benchmark.pedantic(driver, args=(seed,), rounds=1, iterations=1)
        print()
        print(result.summary())
        failed = [c for c in result.checks if not c.passed]
        assert result.passed, "; ".join(
            f"{c.name} ({c.detail})" for c in failed
        )
        return result

    return runner
