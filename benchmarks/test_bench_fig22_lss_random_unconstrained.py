"""Reproduces Figure 22 of the paper.

Town LSS without the constraint: ~13.6 m; the lower half of the map
never converges.

Run with ``pytest benchmarks/test_bench_fig22_lss_random_unconstrained.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig22_lss_random_unconstrained(run_figure):
    run_figure("fig22")
