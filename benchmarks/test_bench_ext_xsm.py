"""Reproduces the Section 3.7 claims about the XSM software detector.

The software (sliding-DFT) path reaches a shorter range than the MICA
hardware tone detector and needs several times the buffer memory, at
similar in-range accuracy.
"""


def test_ext_xsm(run_figure):
    run_figure("ext-xsm")
