"""Runs the related-work APS (DV-hop) baseline instead of citing it.

Section 2's claim — DV-hop "work[s] well only for isotropic networks
with uniform node density" — verified on a uniform grid vs a C-shaped
anisotropic cut, with LSS on real ranges as the reference.
"""


def test_ext_aps(run_figure):
    run_figure("ext-aps")
