"""Benchmarks cross-host campaign sharding.

The sharding layer's reason to exist: N hosts each running one shard of
a campaign should each do ~1/N of the single-host work, with the merge
step costing practically nothing (it re-reads and concatenates a few
kilobytes of compressed records).  This simulates an N-host run on one
machine — each "host" executes its shard serially against a shared
store — and asserts near-linear scaling of the per-host wall clock plus
the byte-identity of the merged entry.  Run with ``pytest
benchmarks/test_bench_sharding.py -s`` to see the measured split.
"""

import os
import time

import pytest

from repro.engine.sharding import ShardSpec
from repro.scenarios import (
    get_scenario,
    run_scenario,
    run_scenario_shard,
    scenario_run_key,
)
from repro.store import ResultStore

N_SHARDS = 3
N_TRIALS = 24

#: Per-host speedup floor for the N-way split.  Perfect scaling is N x;
#: trial costs vary by deployment draw, so the slowest shard legally
#: carries somewhat more than 1/N of the work.
SPEEDUP_FLOOR = N_SHARDS / 1.6

#: Wall-clock ratio assertions need a machine that isn't fighting other
#: tenants; on shared CI runners the measured ratio is noise-bound.
quiet_machine_only = pytest.mark.skipif(
    bool(os.environ.get("CI")),
    reason="wall-clock speedup assertions are unreliable on shared CI runners",
)


@quiet_machine_only
def test_shard_scaling_near_linear(tmp_path):
    spec = get_scenario("town-multilateration")
    single_store = ResultStore(tmp_path / "single", code_version="bench")
    shard_store = ResultStore(tmp_path / "sharded", code_version="bench")

    start = time.perf_counter()
    full = run_scenario(spec, master_seed=0, n_trials=N_TRIALS, store=single_store)
    single_s = time.perf_counter() - start

    shard_times = []
    merged = None
    for k in range(N_SHARDS):
        start = time.perf_counter()
        _, merged = run_scenario_shard(
            spec,
            ShardSpec(index=k, n_shards=N_SHARDS),
            master_seed=0,
            n_trials=N_TRIALS,
            store=shard_store,
        )
        shard_times.append(time.perf_counter() - start)

    # A simulated multi-host run's wall clock is its slowest host (the
    # last shard also pays the auto-merge, which must stay negligible).
    slowest_s = max(shard_times)
    speedup = single_s / slowest_s
    print(
        f"\nsharding: single-host {single_s * 1e3:.0f} ms; "
        f"{N_SHARDS} shards "
        f"{', '.join(f'{t * 1e3:.0f}' for t in shard_times)} ms; "
        f"slowest-host speedup {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR:.2f}x, perfect {N_SHARDS}x)"
    )

    assert merged is not None
    assert merged.records == full.records
    key = shard_store.key_for(
        scenario_run_key(spec, master_seed=0, n_trials=N_TRIALS)
    )
    assert (
        shard_store.path_for(key).read_bytes()
        == single_store.path_for(key).read_bytes()
    )
    assert speedup >= SPEEDUP_FLOOR
