"""Reproduces Figure 24 of the paper.

Distributed LSS on the sparse field measurements: one bad pairwise
transform corrupts its whole subtree (~9.5 m).

Run with ``pytest benchmarks/test_bench_fig24_distributed_sparse.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig24_distributed_sparse(run_figure):
    run_figure("fig24")
