"""Benchmarks the array-backend seam's native-path overhead ceiling.

The ``xp`` dispatch stays in every engine kernel permanently, so the
cost it adds to the default NumPy path must be near-free: the projected
cost of every ``resolve_backend`` call a Fig. 16 run makes — measured
``resolve_backend(None)`` per-call cost × the run's actual dispatch
count — must stay under 5% of the run's wall time.  Run with ``pytest
benchmarks/test_bench_backend.py -s`` to see the measured margin.

The slow-marked companion reports the accelerator speedup (or, on this
host, the ``numpy-generic`` twin's slowdown) of the padded LSS descent
stack, the engine's heaviest kernel — a report, not an assertion, since
the ratio is hardware-bound.
"""

import os
import time

import pytest

from repro.engine import available_backends, batch_lss_descend_padded
from repro.engine.backend import resolve_backend
from repro.experiments import DEFAULT_SEED, get_experiment

#: The acceptance ceiling: projected dispatch overhead as a fraction of
#: the Fig. 16 wall time (same bar as the telemetry null path).
OVERHEAD_CEILING = 0.05

#: Wall-clock ratio assertions need a machine that isn't fighting other
#: tenants; on shared CI runners the measured ratio is noise-bound.
quiet_machine_only = pytest.mark.skipif(
    bool(os.environ.get("CI")),
    reason="wall-clock overhead assertions are unreliable on shared CI runners",
)


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _resolve_cost_per_call(iterations=200_000):
    """Measured cost of the hot ``backend=None`` resolution — the exact
    shape every kernel entry runs on the native path."""
    start = time.perf_counter()
    for _ in range(iterations):
        resolve_backend(None)
    return (time.perf_counter() - start) / iterations


def _count_dispatches(fn):
    """Run *fn* with every kernel-entry resolver call counted.

    Kernels reach the resolver through two routes: the name bound into
    ``repro.engine.batch`` at import time, and the lazy
    ``from ..engine.backend import resolve_backend`` the core modules
    do per call.  Both are patched so the count is the true dispatch
    count of the workload.
    """
    import repro.engine.backend as backend_mod
    import repro.engine.batch as batch_mod

    calls = 0
    real = backend_mod.resolve_backend

    def counting(backend=None):
        nonlocal calls
        calls += 1
        return real(backend)

    backend_mod.resolve_backend = counting
    batch_mod.resolve_backend = counting
    try:
        fn()
    finally:
        backend_mod.resolve_backend = real
        batch_mod.resolve_backend = real
    return calls


@quiet_machine_only
def test_backend_dispatch_overhead_on_fig16(monkeypatch):
    # A warm store hit would measure cache lookups, not kernels.
    monkeypatch.setenv("REPRO_STORE_DIR", "off")
    driver = get_experiment("fig16")

    baseline_s = _best_of(lambda: driver(DEFAULT_SEED))
    calls = _count_dispatches(lambda: driver(DEFAULT_SEED))
    assert calls > 0, "fig16 exercised no backend-dispatching kernels"

    per_call_s = _resolve_cost_per_call()
    projected_overhead_s = per_call_s * calls
    ratio = projected_overhead_s / baseline_s

    print()
    print(
        f"fig16 baseline: {baseline_s * 1000:.1f} ms, "
        f"{calls} kernel dispatches, "
        f"resolve_backend(None) {per_call_s * 1e9:.0f} ns/call, "
        f"projected overhead {projected_overhead_s * 1000:.3f} ms "
        f"({ratio:.2%} of baseline, ceiling {OVERHEAD_CEILING:.0%})"
    )
    assert ratio <= OVERHEAD_CEILING, (
        f"backend dispatch projects to {ratio:.2%} of the Fig. 16 wall "
        f"time (ceiling {OVERHEAD_CEILING:.0%}); either resolve_backend "
        f"got slower or a hot loop gained per-iteration dispatch calls"
    )


@pytest.mark.slow
def test_backend_throughput_report():
    """Time the padded descent stack on every available backend.

    With an accelerator installed this is the speedup report; without
    one it documents the ``numpy-generic`` twin's overhead vs the
    native path.  Informational — read it with ``-s``.
    """
    import sys

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
    from _backend_fixtures import padded_problem_stack

    problem = padded_problem_stack(seed=99, n_problems=24)

    def run(backend):
        return batch_lss_descend_padded(
            problem["configs"],
            problem["pairs"],
            problem["dists"],
            problem["weights"],
            constraint_pairs=problem["constraint_pairs"],
            constraint_valid=problem["constraint_valid"],
            min_spacing_m=problem["min_spacing_m"],
            max_epochs=400,
            backend=backend,
        )

    timings = {}
    for name in available_backends():
        run(name)  # warm up (imports, JIT, device transfer paths)
        timings[name] = _best_of(lambda: run(name))

    print()
    base = timings["numpy"]
    for name, seconds in sorted(timings.items(), key=lambda item: item[1]):
        print(
            f"  {name:<18s} {seconds * 1000:8.1f} ms  "
            f"({base / seconds:5.2f}x vs numpy)"
        )
    assert timings, "no backends available"
