"""Reproduces Section 3.1 of the paper.

Clock synchronization contributes ~0.15 cm ranging error at 30 m (50
us/s drift bound).

Run with ``pytest benchmarks/test_bench_text_clock_sync.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_text_clock_sync(run_figure):
    run_figure("text-sync")
