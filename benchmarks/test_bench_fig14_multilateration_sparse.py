"""Reproduces Figures 13-14 of the paper.

Multilateration on real sparse field measurements: only a small minority
of the 33 non-anchors localize (avg anchors/node well below 3).

Run with ``pytest benchmarks/test_bench_fig14_multilateration_sparse.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig14_multilateration_sparse(run_figure):
    run_figure("fig14")
