"""Reproduces Figure 19 of the paper.

Centralized LSS without the constraint fails to converge (~16.6 m even
after long minimization).

Run with ``pytest benchmarks/test_bench_fig19_lss_unconstrained.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig19_lss_unconstrained(run_figure):
    run_figure("fig19")
