"""Reproduces Figure 6 of the paper.

Refined-service ranging error histogram on grass: zero-mean +/-30 cm
core, right-skewed moderate overestimates, rare large outliers.

Run with ``pytest benchmarks/test_bench_fig06_error_histogram.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig06_error_histogram(run_figure):
    run_figure("fig6")
