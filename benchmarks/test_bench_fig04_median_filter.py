"""Reproduces Figure 4 of the paper.

Baseline ranging with median filtering of up to five measurements:
statistical filtering discounts uncorrelated one-time errors.

Run with ``pytest benchmarks/test_bench_fig04_median_filter.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig04_median_filter(run_figure):
    run_figure("fig4")
