"""Reproduces Figures 15-16 of the paper.

Multilateration once synthetic N(0, 0.33 m) ranges fill the gaps: ~80%
localized; a few local-minimum victims dominate the mean.

Run with ``pytest benchmarks/test_bench_fig16_multilateration_extended.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig16_multilateration_extended(run_figure):
    run_figure("fig16")
