"""Reproduces Section 3.6 of the paper.

Chirp-length ablation: 8 ms chirps cap overestimates near 3 m; 64 ms
chirps overestimate far more; 4 ms chirps detect less.

Run with ``pytest benchmarks/test_bench_text_chirp_length.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_text_chirp_length(run_figure):
    run_figure("text-chirp")
