"""Benchmarks the batched distributed-LSS pipeline against the scalar path.

The acceptance bar for the distributed-pipeline refactor:
``distributed_localize`` on a town-scale deployment (the
``town-distributed-lss`` scenario's geometry at its default size class)
must run at least 4x faster through the engine's stacked local-map and
transform kernels than through the per-problem scalar path, while
producing the same node coverage and the same accuracy to solver
tolerance.  Run with ``pytest benchmarks/test_bench_distributed.py -s``
to see the measured ratio.
"""

import os
import time

import numpy as np
import pytest

from repro.core import DistributedConfig, distributed_localize, evaluate_localization
from repro.deploy import town_layout
from repro.ranging import gaussian_ranges

SPEEDUP_FLOOR = 4.0

#: Wall-clock ratio assertions need a machine that isn't fighting other
#: tenants; on shared CI runners the measured ratio is noise-bound.
quiet_machine_only = pytest.mark.skipif(
    bool(os.environ.get("CI")),
    reason="wall-clock speedup assertions are unreliable on shared CI runners",
)


@pytest.fixture(scope="module")
def town_problem():
    """A town-scale deployment with the paper's synthetic ranging model."""
    positions = town_layout(59, min_separation_m=6.0, rng=7)
    ranges = gaussian_ranges(positions, max_range_m=22.0, sigma_m=0.33, rng=8)
    centroid = positions.mean(axis=0)
    root = int(np.argmin(np.hypot(*(positions - centroid).T)))
    return positions, ranges, root


def _run(ranges, n, root, solver, repeats):
    config = DistributedConfig(min_spacing_m=6.0, solver=solver)
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = distributed_localize(ranges, n, root, config=config, rng=2)
        best = min(best, time.perf_counter() - start)
    return result, best


@quiet_machine_only
def test_distributed_speedup_on_town(town_problem):
    positions, ranges, root = town_problem
    n = len(positions)

    batched, batched_t = _run(ranges, n, root, "batched", repeats=2)
    scalar, scalar_t = _run(ranges, n, root, "scalar", repeats=1)

    # Parity first: the speedup claim is meaningless if results differ.
    assert np.array_equal(batched.localized, scalar.localized)
    rep_b = evaluate_localization(
        batched.positions, positions, localized_mask=batched.localized, align=True
    )
    rep_s = evaluate_localization(
        scalar.positions, positions, localized_mask=scalar.localized, align=True
    )
    assert abs(rep_b.average_error - rep_s.average_error) < 0.75

    ratio = scalar_t / batched_t
    print(
        f"\ntown distributed_localize: scalar {scalar_t * 1000:.0f} ms, "
        f"batched {batched_t * 1000:.0f} ms -> {ratio:.1f}x"
    )
    assert ratio >= SPEEDUP_FLOOR, (
        f"batched distributed pipeline only {ratio:.2f}x faster than scalar "
        f"(need >= {SPEEDUP_FLOOR}x)"
    )


def test_batched_distributed_parity_pinned(town_problem):
    """Batched/scalar local-map agreement, independent of wall clock.

    This is the tolerance-parity half of the acceptance bar, kept
    un-skipped on CI: both paths must localize the identical node set
    and agree on town-scale accuracy to solver tolerance.
    """
    positions, ranges, root = town_problem
    n = len(positions)
    batched, _ = _run(ranges, n, root, "batched", repeats=1)
    scalar, _ = _run(ranges, n, root, "scalar", repeats=1)
    assert np.array_equal(batched.localized, scalar.localized)
    rep_b = evaluate_localization(
        batched.positions, positions, localized_mask=batched.localized, align=True
    )
    rep_s = evaluate_localization(
        scalar.positions, positions, localized_mask=scalar.localized, align=True
    )
    assert abs(rep_b.average_error - rep_s.average_error) < 0.75


def test_batched_distributed_speed(town_problem, benchmark):
    """pytest-benchmark row for the batched path (regression tracking)."""
    positions, ranges, root = town_problem
    config = DistributedConfig(min_spacing_m=6.0)
    result = benchmark.pedantic(
        distributed_localize,
        args=(ranges, len(positions), root),
        kwargs={"config": config, "rng": 2},
        rounds=1,
        iterations=1,
    )
    assert result.localized.any()
