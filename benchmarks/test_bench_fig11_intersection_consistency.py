"""Reproduces Figure 11 of the paper.

Intersection consistency check: a collinear anchor with an erroneous
range produces no intersection points near the cluster and is dropped.

Run with ``pytest benchmarks/test_bench_fig11_intersection_consistency.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig11_intersection_consistency(run_figure):
    run_figure("fig11")
