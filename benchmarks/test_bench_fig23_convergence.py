"""Reproduces Figure 23 of the paper.

Error-versus-epoch traces: the soft constraint dramatically accelerates
convergence at equal compute budget.

Run with ``pytest benchmarks/test_bench_fig23_convergence.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig23_convergence(run_figure):
    run_figure("fig23")
