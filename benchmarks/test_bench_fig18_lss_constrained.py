"""Reproduces Figures 17-18 of the paper.

Centralized LSS with the 9.14 m min-spacing soft constraint on sparse
field measurements: ~2.2 m average error, no anchors.

Run with ``pytest benchmarks/test_bench_fig18_lss_constrained.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig18_lss_constrained(run_figure):
    run_figure("fig18")
