"""Measures the scaling motivation for the distributed algorithm.

Centralized LSS per-epoch cost grows with network size while the
distributed pipeline's largest per-node problem stays
neighborhood-sized (Section 4.3).
"""


def test_ext_scaling(run_figure):
    run_figure("ext-scaling")
