"""Reproduces Figure 20 of the paper.

Multilateration on the random 59-node town deployment (18 anchors,
synthetic ranges): ~1 m error, some nodes unlocalizable.

Run with ``pytest benchmarks/test_bench_fig20_multilateration_random.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig20_multilateration_random(run_figure):
    run_figure("fig20")
