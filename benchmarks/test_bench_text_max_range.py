"""Reproduces Section 3.6.2 of the paper.

Maximum/reliable detection range by environment: pavement reaches
roughly twice as far as grass.

Run with ``pytest benchmarks/test_bench_text_max_range.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_text_max_range(run_figure):
    run_figure("text-range")
