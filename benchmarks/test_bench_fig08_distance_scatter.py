"""Reproduces Figure 8 of the paper.

Measured and filtered distances versus actual distance: large-magnitude
errors are more common at longer distances.

Run with ``pytest benchmarks/test_bench_fig08_distance_scatter.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig08_distance_scatter(run_figure):
    run_figure("fig8")
