"""Benchmarks the batched engine against the scalar reference path.

The acceptance bar for the engine refactor: ``localize_network`` on the
Fig. 16 extended-network configuration must run at least 5x faster
through the batched solver than through the per-node scalar path, while
producing the same result.  Run with ``pytest
benchmarks/test_bench_engine.py -s`` to see the measured ratio.
"""

import os
import time

import numpy as np
import pytest

from repro._validation import ensure_rng
from repro.core import localize_network
from repro.deploy import random_anchors
from repro.experiments import DEFAULT_SEED
from repro.experiments.localization_experiments import _grid_setup
from repro.ranging import augment_with_gaussian_ranges

SPEEDUP_FLOOR = 5.0

#: Wall-clock ratio assertions need a machine that isn't fighting other
#: tenants; on shared CI runners the measured ratio is noise-bound.
quiet_machine_only = pytest.mark.skipif(
    bool(os.environ.get("CI")),
    reason="wall-clock speedup assertions are unreliable on shared CI runners",
)


@pytest.fixture(scope="module")
def fig16_problem():
    """The Fig. 16 extended-network configuration at the default seed."""
    positions, _, edges = _grid_setup(DEFAULT_SEED)
    rng = ensure_rng(DEFAULT_SEED)
    n = len(positions)
    anchor_idx = random_anchors(n, 13, rng=rng)
    anchors = {int(i): positions[i] for i in anchor_idx}
    extended = augment_with_gaussian_ranges(
        edges, positions, max_range_m=22.0, sigma_m=0.33, rng=rng
    )
    return extended, anchors, n


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@quiet_machine_only
def test_engine_speedup_on_fig16(fig16_problem):
    measurements, anchors, n = fig16_problem

    def batched():
        return localize_network(measurements, anchors, n)

    def scalar():
        return localize_network(measurements, anchors, n, solver="scalar")

    # Parity first: the speedup claim is meaningless if results differ.
    b = batched()
    s = scalar()
    assert np.array_equal(b.localized, s.localized)
    mask = b.localized & ~b.is_anchor
    np.testing.assert_allclose(b.positions[mask], s.positions[mask], atol=1e-5)

    batched_t = _best_of(batched)
    scalar_t = _best_of(scalar)
    ratio = scalar_t / batched_t
    print(
        f"\nfig16 localize_network: scalar {scalar_t * 1000:.1f} ms, "
        f"batched {batched_t * 1000:.1f} ms -> {ratio:.1f}x"
    )
    assert ratio >= SPEEDUP_FLOOR, (
        f"batched engine only {ratio:.2f}x faster than scalar "
        f"(need >= {SPEEDUP_FLOOR}x)"
    )


def test_batched_localize_network_speed(fig16_problem, benchmark):
    """pytest-benchmark row for the engine path (regression tracking)."""
    measurements, anchors, n = fig16_problem
    result = benchmark(localize_network, measurements, anchors, n)
    assert result.localized.any()


@quiet_machine_only
def test_multistart_lss_faster_than_sequential():
    """Stacked multi-seed LSS beats an equivalent sequential loop."""
    from repro.core import LssConfig, lss_localize
    from repro.deploy import square_grid
    from repro.engine import lss_localize_multistart
    from repro.ranging import gaussian_ranges

    positions = square_grid(5, 5, spacing_m=10.0)
    n = len(positions)
    ranges = gaussian_ranges(positions, max_range_m=16.0, sigma_m=0.33, rng=1)
    config = LssConfig(min_spacing_m=10.0, restarts=2, max_epochs=400)
    seeds = [10, 11, 12, 13]

    stacked_t = _best_of(
        lambda: lss_localize_multistart(ranges, n, config=config, seeds=seeds),
        repeats=3,
    )
    sequential_t = _best_of(
        lambda: [lss_localize(ranges, n, config=config, rng=s) for s in seeds],
        repeats=3,
    )
    ratio = sequential_t / stacked_t
    print(
        f"\n4-seed LSS: sequential {sequential_t * 1000:.0f} ms, "
        f"stacked {stacked_t * 1000:.0f} ms -> {ratio:.1f}x"
    )
    # Lockstep batching must at least clearly beat the loop; the exact
    # factor depends on how unevenly the seeds' rounds terminate.
    assert ratio >= 1.3
