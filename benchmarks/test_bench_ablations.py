"""Ablation benchmarks for the design choices called out in DESIGN.md.

Each ablation compares two implementations of the same stage on
identical inputs and prints the accuracy/cost trade-off:

* LSS minimizer backend: the paper's gradient descent vs L-BFGS.
* Pairwise transform estimator: closed-form (mote-tractable) vs full
  minimization.
* Alignment tree: the paper's plain flood (BFS) vs the minimum-residual
  tree extension.
* Soft-constraint weight ``w_D``: the paper fixed 10; sweep it.
"""

import numpy as np
import pytest

from repro.core import (
    DistributedConfig,
    LssConfig,
    distributed_localize,
    estimate_transform_closed_form,
    estimate_transform_minimize,
    evaluate_localization,
    lss_localize,
)
from repro.core.geometry import apply_transform, rigid_transform_matrix
from repro.deploy import paper_grid
from repro.ranging import augment_with_gaussian_ranges, gaussian_ranges
from repro.experiments.common import DEFAULT_SEED, grass_campaign_edges, grid_positions


@pytest.fixture(scope="module")
def grid_ranges():
    positions = paper_grid(47)
    ranges = gaussian_ranges(positions, max_range_m=22.0, sigma_m=0.33, rng=7)
    return positions, ranges


def test_lss_backend_ablation(benchmark, grid_ranges):
    """Gradient descent (paper) vs L-BFGS: same optimum, different cost."""
    positions, ranges = grid_ranges
    n = len(positions)

    def run_gd():
        return lss_localize(
            ranges, n, config=LssConfig(min_spacing_m=9.0, backend="gd"), rng=7
        )

    gd = benchmark.pedantic(run_gd, rounds=1, iterations=1)
    lbfgs = lss_localize(
        ranges, n, config=LssConfig(min_spacing_m=9.0, backend="lbfgs"), rng=7
    )
    err_gd = evaluate_localization(gd.positions, positions, align=True).average_error
    err_lb = evaluate_localization(lbfgs.positions, positions, align=True).average_error
    print(f"\n  gd:    avg error {err_gd:.3f} m, objective {gd.error:.2f}")
    print(f"  lbfgs: avg error {err_lb:.3f} m, objective {lbfgs.error:.2f}")
    assert err_gd < 1.0 and err_lb < 1.0
    assert abs(err_gd - err_lb) < 0.5


def test_transform_method_ablation(benchmark):
    """Closed-form vs minimization transform estimation accuracy."""
    rng = np.random.default_rng(0)
    cases = []
    for _ in range(60):
        src = rng.uniform(0, 20, (6, 2))
        t = rigid_transform_matrix(
            rng.uniform(-np.pi, np.pi), *rng.uniform(-10, 10, 2), rng.random() < 0.5
        )
        tgt = apply_transform(src, t) + rng.normal(0, 0.2, (6, 2))
        cases.append((src, tgt))

    def run_closed_form():
        return [estimate_transform_closed_form(s, t).rmse for s, t in cases]

    closed = benchmark.pedantic(run_closed_form, rounds=1, iterations=1)
    minimized = [estimate_transform_minimize(s, t).rmse for s, t in cases]
    print(f"\n  closed-form rmse: median {np.median(closed):.4f}")
    print(f"  minimize    rmse: median {np.median(minimized):.4f}")
    # The paper's claim: closed form is "slightly less accurate".
    assert np.median(closed) <= 1.5 * np.median(minimized) + 1e-6


def test_alignment_tree_ablation(benchmark):
    """BFS flood (paper) vs minimum-residual alignment tree."""
    positions = np.asarray(grid_positions(47))
    _, edges = grass_campaign_edges(n_nodes=47, seed=DEFAULT_SEED)
    rng = np.random.default_rng(DEFAULT_SEED)
    extended = augment_with_gaussian_ranges(
        edges, positions, max_range_m=22.0, sigma_m=0.33, n_extra=370, rng=rng
    )
    n = len(positions)

    def run_bfs():
        config = DistributedConfig(min_spacing_m=9.14, tree="bfs")
        return distributed_localize(extended, n, root=24, config=config, rng=5)

    bfs = benchmark.pedantic(run_bfs, rounds=1, iterations=1)
    best_cfg = DistributedConfig(min_spacing_m=9.14, tree="best")
    best = distributed_localize(extended, n, root=24, config=best_cfg, rng=5)
    err_bfs = evaluate_localization(
        bfs.positions, positions, localized_mask=bfs.localized, align=True
    ).average_error
    err_best = evaluate_localization(
        best.positions, positions, localized_mask=best.localized, align=True
    ).average_error
    print(f"\n  bfs tree:  avg error {err_bfs:.3f} m")
    print(f"  best tree: avg error {err_best:.3f} m")
    assert err_best <= 2.0 * err_bfs + 0.5


def test_constraint_weight_sweep(benchmark, grid_ranges):
    """Sweep w_D around the paper's value of 10."""
    positions, ranges = grid_ranges
    n = len(positions)
    results = {}

    def sweep():
        for weight in (1.0, 10.0, 100.0):
            config = LssConfig(
                min_spacing_m=9.0, constraint_weight=weight, restarts=4
            )
            res = lss_localize(ranges, n, config=config, rng=7)
            report = evaluate_localization(res.positions, positions, align=True)
            results[weight] = report.average_error
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for weight, err in results.items():
        print(f"  w_D = {weight:>6.1f}: avg error {err:.3f} m")
    # The paper's choice (10) must be in the working regime.
    assert results[10.0] < 1.5
