"""Reproduces Figure 10 of the paper.

The sliding-DFT software tone detector on clean and noisy periodic-chirp
waveforms (3 of 4 noisy chirps detected, no false positives).

Run with ``pytest benchmarks/test_bench_fig10_dft_filter.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig10_dft_filter(run_figure):
    run_figure("fig10")
