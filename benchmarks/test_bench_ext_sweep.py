"""Regenerates the scenario-sweep extension table.

A density x noise x anchor-fraction sweep through the adaptive campaign
scheduler: dense cells stop early on the confidence-interval criterion
and their committed records are a bit-identical prefix of the same-seed
fixed-count campaign.
"""


def test_ext_sweep(run_figure):
    run_figure("ext-sweep")
