"""Reproduces Figure 5 of the paper.

The 7x7 offset grid deployment pattern with 9 m and ~10 m nearest-
neighbor spacings.

Run with ``pytest benchmarks/test_bench_fig05_grid.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig05_grid(run_figure):
    run_figure("fig5")
