"""Verifies the Section 4.3.1 protocol-cost claim.

"This algorithm requires two local data exchanges per node and one
round of flooding" — counted over the discrete-event radio simulator.
"""


def test_ext_protocol(run_figure):
    run_figure("ext-protocol")
