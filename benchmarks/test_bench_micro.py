"""Micro-benchmarks of the performance-critical kernels.

These time the inner loops a deployment-scale run leans on: the
detection scan, the vectorized LSS gradient, the link-buffer simulation
and the sliding-DFT filter.  They guard against performance regressions
rather than reproducing paper numbers.
"""

import numpy as np
import pytest

from repro.acoustics import get_environment
from repro.core.lss import lss_gradient
from repro.core.measurements import EdgeList
from repro.deploy import paper_grid
from repro.ranging import gaussian_ranges
from repro.ranging.detection import detect_signal
from repro.ranging.dft import filter_waveform
from repro.ranging.link import AcousticLinkSimulator, LinkRealization


def test_detect_signal_speed(benchmark):
    rng = np.random.default_rng(0)
    buf = (rng.random(1250) < 0.01).astype(np.int64) * 3
    buf[800:900] = 8
    result = benchmark(detect_signal, buf, 6, 32, 2)
    assert result == 800 or result >= 0


def test_lss_gradient_speed(benchmark):
    positions = paper_grid(47)
    ranges = gaussian_ranges(positions, max_range_m=22.0, sigma_m=0.33, rng=0)
    edges = ranges.to_edge_list()
    pts = positions + np.random.default_rng(1).normal(0, 1, positions.shape)
    grad = benchmark(lss_gradient, pts, edges)
    assert grad.shape == positions.shape


def test_link_buffer_simulation_speed(benchmark):
    sim = AcousticLinkSimulator(environment=get_environment("grass"))
    link = LinkRealization()
    rng = np.random.default_rng(2)
    counts = benchmark(
        sim.simulate_counts, 12.0, link=link, rng=rng
    )
    assert counts.shape[0] == sim.tdoa.buffer_length


def test_sliding_dft_speed(benchmark):
    rng = np.random.default_rng(3)
    wave = rng.normal(0, 100, 2000)
    energies = benchmark(filter_waveform, wave)
    assert energies.shape == (2000, 2)
