"""Reproduces Figure 21 of the paper.

Centralized LSS on the town data with the constraint and zero anchors:
all nodes localized at ~0.5 m.

Run with ``pytest benchmarks/test_bench_fig21_lss_random.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig21_lss_random(run_figure):
    run_figure("fig21")
