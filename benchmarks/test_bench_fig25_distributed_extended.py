"""Reproduces Figure 25 of the paper.

Distributed LSS with 370 additional synthetic ranges: all 47 nodes
localized at ~0.5 m.

Run with ``pytest benchmarks/test_bench_fig25_distributed_extended.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig25_distributed_extended(run_figure):
    run_figure("fig25")
