"""Benchmarks the seeded Monte-Carlo campaign experiment.

A campaign of randomized multilateration trials through the batched
engine, with bit-reproducible aggregates from the master seed.

Run with ``pytest benchmarks/test_bench_ext_campaign.py --benchmark-only -s``
to see the aggregate table.
"""


def test_ext_campaign_statistics(run_figure):
    run_figure("ext-campaign")
