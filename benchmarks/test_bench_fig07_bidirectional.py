"""Reproduces Figure 7 of the paper.

Ranging errors restricted to bidirectional pairs: the consistency check
eliminates most large-magnitude errors.

Run with ``pytest benchmarks/test_bench_fig07_bidirectional.py --benchmark-only -s`` to see the
paper-vs-measured table.
"""


def test_fig07_bidirectional(run_figure):
    run_figure("fig7")
