"""Clock drift and time-synchronization model.

The ranging service synchronizes a source and sink "for a short period
of time using the very same radio message used for TDoA ranging",
relying on the MAC-layer timestamping of the Flooding Time
Synchronization Protocol (Section 3.1).  The paper bounds the residual
clock-rate difference at 50 microseconds per second, which translates to
at most ~0.15 cm ranging error over 30 m — negligible.  We model it
anyway so that claim is *verified* by the benchmark suite instead of
assumed (see ``benchmarks/test_bench_text_clock_sync.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_non_negative, ensure_rng

__all__ = [
    "MAX_CLOCK_RATE_DIFFERENCE",
    "DriftingClock",
    "FtspSyncModel",
    "sync_ranging_error_m",
]

#: Maximum clock rate difference between a pair of motes (50 us/s).
MAX_CLOCK_RATE_DIFFERENCE = 50e-6


@dataclass
class DriftingClock:
    """A local clock with constant rate skew and offset.

    ``local_time = (1 + skew) * true_time + offset``.
    """

    skew: float = 0.0
    offset: float = 0.0

    def local_time(self, true_time: float) -> float:
        """Local reading for a given true time."""
        return (1.0 + self.skew) * true_time + self.offset

    def true_interval(self, local_interval: float) -> float:
        """Convert an interval measured on this clock back to true time."""
        return local_interval / (1.0 + self.skew)

    def synchronize(self, true_time: float, residual_offset: float = 0.0) -> None:
        """Zero the offset at *true_time* (MAC-layer timestamp exchange).

        After synchronization, ``local_time(true_time) == true_time +
        residual_offset``; only the rate skew keeps accumulating error.
        """
        self.offset = residual_offset - self.skew * true_time

    @classmethod
    def random(cls, rng=None, max_skew: float = MAX_CLOCK_RATE_DIFFERENCE / 2) -> "DriftingClock":
        """A clock with skew uniform in [-max_skew, +max_skew].

        Half the paper's *pairwise* bound per clock, so any two clocks
        differ by at most the full bound.
        """
        rng = ensure_rng(rng)
        check_non_negative(max_skew, "max_skew")
        return cls(skew=float(rng.uniform(-max_skew, max_skew)), offset=float(rng.uniform(0.0, 1.0)))


@dataclass(frozen=True)
class FtspSyncModel:
    """Residual error model for FTSP-style MAC-layer timestamp sync.

    Attributes
    ----------
    timestamp_jitter_s : float
        Standard deviation of the one-shot timestamping error (radio
        stack nondeterminism that MAC-layer stamping does not remove).
    max_rate_difference : float
        Bound on the pairwise clock rate difference.
    """

    timestamp_jitter_s: float = 5e-6
    max_rate_difference: float = MAX_CLOCK_RATE_DIFFERENCE

    def sample_sync_error_s(self, elapsed_s: float, rng=None) -> float:
        """Residual time error *elapsed_s* after a sync exchange."""
        check_non_negative(elapsed_s, "elapsed_s")
        rng = ensure_rng(rng)
        jitter = float(rng.normal(0.0, self.timestamp_jitter_s))
        rate = float(rng.uniform(-self.max_rate_difference, self.max_rate_difference))
        return jitter + rate * elapsed_s


def sync_ranging_error_m(
    distance_m: float,
    *,
    speed_of_sound: float = 340.0,
    rate_difference: float = MAX_CLOCK_RATE_DIFFERENCE,
) -> float:
    """Worst-case ranging error due to clock rate difference alone.

    The TDoA interval a receiver must time is the acoustic flight time
    ``d / v``; with a clock rate error ``r`` the measured interval is off
    by ``r * d / v`` seconds, i.e. ``r * d`` meters.  At 30 m and
    50 us/s this is 1.5 mm — the paper's "about 0.15 cm".
    """
    check_non_negative(distance_m, "distance_m")
    check_non_negative(rate_difference, "rate_difference")
    flight_time = distance_m / speed_of_sound
    return rate_difference * flight_time * speed_of_sound
