"""Network-wide flooding.

The alignment step of the distributed localization algorithm (Section
4.3.1, "Alignment") propagates the root's coordinate frame through "one
round of flooding": every node rebroadcasts the first copy of the flood
payload it receives, after transforming it into its own local frame.

:func:`flood` implements the generic mechanism over the
:class:`~repro.network.simulator.NetworkSimulator`: duplicate
suppression, optional payload transformation per hop, and a resulting
spanning tree (parent pointers + hop counts) that the caller can
inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..errors import ValidationError
from .simulator import NetworkSimulator

__all__ = ["FloodResult", "flood"]


@dataclass
class FloodResult:
    """Outcome of one flood.

    Attributes
    ----------
    root : int
        Originating node.
    payloads : dict
        Node id -> the payload as received at that node (after any
        per-hop transformation).
    parents : dict
        Node id -> the neighbor it first heard the flood from (the
        flood spanning tree; the root maps to None).
    hops : dict
        Node id -> hop distance from the root along the tree.
    """

    root: int
    payloads: Dict[int, Any] = field(default_factory=dict)
    parents: Dict[int, Optional[int]] = field(default_factory=dict)
    hops: Dict[int, int] = field(default_factory=dict)

    @property
    def reached(self) -> int:
        """Number of nodes the flood reached (including the root)."""
        return len(self.payloads)

    def covers(self, node_ids) -> bool:
        """Whether every id in *node_ids* received the flood."""
        return all(n in self.payloads for n in node_ids)


def flood(
    simulator: NetworkSimulator,
    root: int,
    payload: Any,
    *,
    transform: Optional[Callable[[int, int, Any], Any]] = None,
    max_events: int = 1_000_000,
) -> FloodResult:
    """Flood *payload* from *root* through the network.

    Parameters
    ----------
    simulator : NetworkSimulator
        The network to flood.  Handlers for all nodes are temporarily
        installed; any previously registered handlers are restored on
        return.
    root : int
        Originating node id.
    payload : Any
        The initial flood payload.
    transform : callable, optional
        ``transform(receiver_id, sender_id, payload) -> payload`` applied
        when a node first receives the flood, *before* storing and
        rebroadcasting it.  The distributed localization alignment uses
        this hook to re-express the global frame vectors in each node's
        local coordinate system.
    """
    simulator.node(root)  # validate
    result = FloodResult(root=root)
    result.payloads[root] = payload
    result.parents[root] = None
    result.hops[root] = 0

    saved_handlers = dict(simulator._handlers)
    saved_default = simulator._default_handler

    def handler(sim: NetworkSimulator, node_id: int, message) -> None:
        if node_id in result.payloads:
            return  # duplicate suppression
        received = message.payload
        if transform is not None:
            received = transform(node_id, message.sender, received)
        result.payloads[node_id] = received
        result.parents[node_id] = message.sender
        result.hops[node_id] = result.hops[message.sender] + 1
        sim.broadcast(node_id, received)

    try:
        simulator.register_default_handler(handler)
        simulator._handlers = {}
        simulator.broadcast(root, payload)
        simulator.run(max_events=max_events)
    finally:
        simulator._handlers = saved_handlers
        simulator._default_handler = saved_default
    return result
