"""Radio communication model.

Captures the aspects of the MICA2 radio that matter to ranging and to
the distributed protocols:

* a finite communication range (radio reaches further than sound, but
  not unbounded),
* per-message delivery failures,
* the non-deterministic send/receive hardware delay ``delta_xmit``
  (Section 3.1, "Non-deterministic Hardware Delays"), which the ranging
  math must subtract; MAC-layer timestamping leaves a small residual
  jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_non_negative, check_positive, check_probability, ensure_rng

__all__ = ["RadioModel"]


@dataclass(frozen=True)
class RadioModel:
    """Parameters of the radio link model.

    Attributes
    ----------
    comm_range_m : float
        Maximum reliable communication distance.  MICA2 outdoor radio
        range comfortably exceeds the acoustic range; the default 100 m
        keeps radio connectivity a superset of acoustic connectivity for
        the paper's deployments.
    delivery_probability : float
        Probability an in-range unicast/broadcast message is received.
    xmit_delay_mean_s : float
        Mean of ``delta_xmit``, the combined non-deterministic
        sender+receiver processing delay.  It is *calibrated out* by the
        ranging service (part of ``delta_const``); only the jitter below
        leaks into measurements.
    xmit_delay_jitter_s : float
        Standard deviation of the residual delay after MAC-layer
        timestamping.
    """

    comm_range_m: float = 100.0
    delivery_probability: float = 0.98
    xmit_delay_mean_s: float = 0.004
    xmit_delay_jitter_s: float = 15e-6

    def __post_init__(self):
        check_positive(self.comm_range_m, "comm_range_m")
        check_probability(self.delivery_probability, "delivery_probability")
        check_non_negative(self.xmit_delay_mean_s, "xmit_delay_mean_s")
        check_non_negative(self.xmit_delay_jitter_s, "xmit_delay_jitter_s")

    def in_range(self, distance_m: float) -> bool:
        """Whether two nodes at *distance_m* can communicate at all."""
        return 0.0 <= distance_m <= self.comm_range_m

    def delivers(self, distance_m: float, rng=None) -> bool:
        """Sample whether one message at *distance_m* is delivered."""
        if not self.in_range(distance_m):
            return False
        rng = ensure_rng(rng)
        return bool(rng.random() < self.delivery_probability)

    def sample_xmit_delay_s(self, rng=None) -> float:
        """Sample one realization of ``delta_xmit`` (mean + jitter)."""
        rng = ensure_rng(rng)
        return float(self.xmit_delay_mean_s + rng.normal(0.0, self.xmit_delay_jitter_s))
