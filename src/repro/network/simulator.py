"""Discrete-event network simulator.

A deliberately small event-driven core: nodes exchange messages through
a :class:`RadioModel`, message handlers run at delivery time, and the
simulation advances through a priority queue of timestamped events.  It
is the substrate for the flooding protocol and for the message-passing
formulation of the distributed localization algorithm (Section 4.3),
whose cost we account in messages sent/received.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .._validation import ensure_rng
from ..errors import ValidationError
from .node import SensorNode
from .radio import RadioModel

__all__ = ["Message", "NetworkSimulator", "SimulationStats"]


@dataclass(frozen=True)
class Message:
    """A radio message in flight or delivered.

    ``sender`` and ``receiver`` are node ids; ``payload`` is arbitrary
    application data (kept immutable by convention).
    """

    sender: int
    receiver: int
    payload: Any
    sent_at: float
    delivered_at: float


@dataclass
class SimulationStats:
    """Counters for protocol cost accounting."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    broadcasts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "broadcasts": self.broadcasts,
        }


class NetworkSimulator:
    """Event-driven message-passing simulator over a node population.

    Parameters
    ----------
    nodes : sequence of SensorNode
        The deployment.  Node ids must be unique.
    radio : RadioModel, optional
        Link model; defaults to :class:`RadioModel` defaults.
    rng : None, int, or numpy Generator
        Randomness source for delivery and delays.

    Notes
    -----
    Handlers are registered per node with :meth:`register_handler`; a
    handler has signature ``handler(simulator, node_id, message)`` and
    may send further messages, which is how multi-hop protocols unfold.
    """

    def __init__(self, nodes, radio: Optional[RadioModel] = None, rng=None) -> None:
        self._nodes: Dict[int, SensorNode] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise ValidationError(f"duplicate node id {node.node_id}")
            self._nodes[node.node_id] = node
        self.radio = radio if radio is not None else RadioModel()
        self._rng = ensure_rng(rng)
        self._queue: List[Tuple[float, int, Message]] = []
        self._tiebreak = itertools.count()
        self._handlers: Dict[int, Callable] = {}
        self._default_handler: Optional[Callable] = None
        self._now = 0.0
        self.stats = SimulationStats()
        self.delivered_log: List[Message] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def node_ids(self) -> List[int]:
        return sorted(self._nodes)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def node(self, node_id: int) -> SensorNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ValidationError(f"unknown node id {node_id}") from None

    def distance(self, a: int, b: int) -> float:
        """Ground-truth distance between two nodes."""
        return self.node(a).distance_to(self.node(b))

    def radio_neighbors(self, node_id: int) -> List[int]:
        """Nodes within radio range of *node_id*."""
        me = self.node(node_id)
        return [
            other.node_id
            for other in self._nodes.values()
            if other.node_id != node_id and self.radio.in_range(me.distance_to(other))
        ]

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def register_handler(self, node_id: int, handler: Callable) -> None:
        """Set the message handler for one node."""
        self.node(node_id)  # validate id
        self._handlers[node_id] = handler

    def register_default_handler(self, handler: Callable) -> None:
        """Handler used by nodes without a specific registration."""
        self._default_handler = handler

    def send(self, sender: int, receiver: int, payload: Any) -> bool:
        """Unicast *payload*; returns whether the link will deliver it."""
        self.stats.messages_sent += 1
        distance = self.distance(sender, receiver)
        if not self.radio.delivers(distance, self._rng):
            self.stats.messages_dropped += 1
            return False
        delay = max(0.0, self.radio.sample_xmit_delay_s(self._rng))
        message = Message(
            sender=sender,
            receiver=receiver,
            payload=payload,
            sent_at=self._now,
            delivered_at=self._now + delay,
        )
        heapq.heappush(self._queue, (message.delivered_at, next(self._tiebreak), message))
        return True

    def broadcast(self, sender: int, payload: Any) -> int:
        """Broadcast to all radio neighbors; returns receivers reached."""
        self.stats.broadcasts += 1
        reached = 0
        for neighbor in self.radio_neighbors(sender):
            if self.send(sender, neighbor, payload):
                reached += 1
        # send() counts each neighbor transmission; a broadcast is one
        # airtime event, so undo the over-count and charge one send.
        self.stats.messages_sent -= max(0, len(self.radio_neighbors(sender)) - 1)
        return reached

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> Optional[Message]:
        """Deliver the next queued message; None if the queue is empty."""
        if not self._queue:
            return None
        delivered_at, _, message = heapq.heappop(self._queue)
        self._now = delivered_at
        self.stats.messages_delivered += 1
        self.delivered_log.append(message)
        handler = self._handlers.get(message.receiver, self._default_handler)
        if handler is not None:
            handler(self, message.receiver, message)
        return message

    def run(self, max_events: int = 1_000_000) -> int:
        """Deliver messages until the queue drains; returns event count.

        *max_events* guards against protocols that never quiesce.
        """
        count = 0
        while self._queue:
            if count >= max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events}; "
                    "protocol may not terminate"
                )
            self.step()
            count += 1
        return count
