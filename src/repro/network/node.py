"""Sensor node representation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..acoustics.hardware import HardwareProfile
from ..errors import ValidationError
from .clock import DriftingClock

__all__ = ["SensorNode"]


@dataclass
class SensorNode:
    """One mote in a simulated deployment.

    Attributes
    ----------
    node_id : int
        Stable identifier; doubles as the index into position arrays.
    position : tuple of (float, float)
        Ground-truth coordinates in meters.  Algorithms never read this
        directly — it parameterizes the physical simulation and the
        evaluation only.
    is_anchor : bool
        Whether the node knows its own position (Section 4.1's anchors).
    hardware : HardwareProfile
        Per-unit speaker/microphone characteristics.
    clock : DriftingClock
        The node's local clock.
    """

    node_id: int
    position: Tuple[float, float]
    is_anchor: bool = False
    hardware: HardwareProfile = field(default_factory=HardwareProfile)
    clock: DriftingClock = field(default_factory=DriftingClock)

    def __post_init__(self):
        if self.node_id < 0:
            raise ValidationError("node_id must be non-negative")
        x, y = self.position
        if not (np.isfinite(x) and np.isfinite(y)):
            raise ValidationError("position must be finite")
        self.position = (float(x), float(y))

    def distance_to(self, other: "SensorNode") -> float:
        """Ground-truth distance to another node (simulation only)."""
        return float(np.hypot(self.position[0] - other.position[0],
                              self.position[1] - other.position[1]))

    @property
    def position_array(self) -> np.ndarray:
        """Position as a numpy array of shape (2,)."""
        return np.asarray(self.position, dtype=float)
