"""Network substrate: clocks, radio links, nodes, the discrete-event
simulator and flooding."""

from .clock import (
    MAX_CLOCK_RATE_DIFFERENCE,
    DriftingClock,
    FtspSyncModel,
    sync_ranging_error_m,
)
from .flooding import FloodResult, flood
from .node import SensorNode
from .radio import RadioModel
from .simulator import Message, NetworkSimulator, SimulationStats

__all__ = [
    "MAX_CLOCK_RATE_DIFFERENCE",
    "DriftingClock",
    "FtspSyncModel",
    "sync_ranging_error_m",
    "SensorNode",
    "RadioModel",
    "Message",
    "NetworkSimulator",
    "SimulationStats",
    "FloodResult",
    "flood",
]
