"""repro.perf — performance history and trace analytics.

The repo's perf story used to be write-only: the ``benchmarks/``
suite asserts floors and prints tables, but nothing emitted
machine-readable results, so the benchmark trajectory across PRs was
invisible and regressions surfaced only when a hard floor tripped.
This package closes the loop:

- :mod:`repro.perf.record` — the versioned ``BENCH_<label>.json``
  bench-record schema (one writer shared by ``repro bench run`` and
  the ``REPRO_BENCH_JSON`` pytest-benchmark hook in
  ``benchmarks/conftest.py``).
- :mod:`repro.perf.suites` — registered workload suites (``smoke``,
  ``full``) reusing the scenario runner and experiment drivers.
- :mod:`repro.perf.bench` — the harness: store-isolated
  median-of-k timings plus key telemetry counters per workload,
  serialized with the run manifest (host, python, array backend, code
  version, spec hashes) embedded.
- :mod:`repro.perf.history` — append/list bench records in a history
  directory, with a per-workload trajectory rendering.
- :mod:`repro.perf.regression` — noise-aware baseline comparison with
  CI exit semantics (0 pass / 1 regression / 2 incomparable), gated by
  ``tools/check_perf.py``.
- :mod:`repro.perf.analytics` — trace analytics over the PR-6
  telemetry schema: Chrome trace-event export (Perfetto/speedscope)
  and critical-path extraction.

Design rule (determinism guarantee #10, ``docs/architecture.md``):
benchmarking and trace analytics *observe* runs, they never steer
them — a benched run publishes store payload bytes identical to an
unbenched run, and trace analytics never mutates the trace it reads.
"""

from __future__ import annotations

from .analytics import build_span_forest, chrome_trace, critical_path
from .bench import run_suite, run_workload
from .history import append_record, history_filename, list_records
from .record import (
    BENCH_SCHEMA_VERSION,
    bench_filename,
    make_bench_record,
    make_workload_result,
    read_bench_record,
    validate_bench_record,
    write_bench_record,
)
from .regression import BenchComparison, compare_records
from .suites import Workload, all_suites, get_suite, register_suite

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "bench_filename",
    "make_bench_record",
    "make_workload_result",
    "read_bench_record",
    "validate_bench_record",
    "write_bench_record",
    "Workload",
    "all_suites",
    "get_suite",
    "register_suite",
    "run_suite",
    "run_workload",
    "append_record",
    "history_filename",
    "list_records",
    "BenchComparison",
    "compare_records",
    "build_span_forest",
    "chrome_trace",
    "critical_path",
]
