"""The perf-history store: a directory of validated bench records.

History is deliberately dumb — one ``BENCH_<label>_<stamp>_<digest>.json``
file per record, no index — so it works as a checked-in directory, a
CI artifact bucket, or a scratch dir alike, and ``git diff`` on it is
meaningful.  The digest suffix (first 10 hex chars of the record's
canonical SHA-256) makes appends idempotent: re-adding the same record
is a no-op, and two records from the same second never collide.

:func:`list_records` returns records oldest-first by their manifest
``created_unix`` stamp (digest as tiebreaker), which is the order the
``repro bench history`` listing and any trajectory analysis want.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Any, Dict, List, Tuple

from ..errors import ValidationError
from .record import canonical_record_bytes, read_bench_record, validate_bench_record

__all__ = ["history_filename", "append_record", "list_records", "render_history"]


def _digest(record: Dict[str, Any]) -> str:
    return hashlib.sha256(canonical_record_bytes(record)).hexdigest()[:10]


def history_filename(record: Dict[str, Any]) -> str:
    """Content-addressed history file name for *record*."""
    validate_bench_record(record)
    stamp = int(record["manifest"]["created_unix"])
    return f"BENCH_{record['label']}_{stamp}_{_digest(record)}.json"


def append_record(history_dir, record: Dict[str, Any]) -> Tuple[Path, bool]:
    """Add *record* to the history directory (created on demand).

    Returns ``(path, appended)``; ``appended`` is False when an
    identical record (same canonical bytes) is already present.
    """
    from .record import write_bench_record

    directory = Path(history_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / history_filename(record)
    if path.exists():
        return path, False
    write_bench_record(path, record)
    return path, True


def list_records(history_dir) -> List[Tuple[Path, Dict[str, Any]]]:
    """All valid history records, oldest first.

    A file that no longer validates (schema bump, hand edit) fails
    loudly — history exists to be compared against, and silently
    skipping a record would turn a broken baseline into a vacuous pass.
    """
    directory = Path(history_dir)
    if not directory.exists():
        raise ValidationError(f"history directory not found: {directory}")
    entries = []
    for name in sorted(os.listdir(directory)):
        if name.startswith("BENCH_") and name.endswith(".json"):
            path = directory / name
            entries.append((path, read_bench_record(path)))
    entries.sort(key=lambda item: (item[1]["manifest"]["created_unix"], item[0].name))
    return entries


def render_history(entries: List[Tuple[Path, Dict[str, Any]]]) -> str:
    """Per-workload trajectory table across the listed records."""
    if not entries:
        return "history is empty"
    lines = [f"history: {len(entries)} records"]
    width = max(
        len(result["id"]) for _, record in entries for result in record["results"]
    )
    for path, record in entries:
        manifest = record["manifest"]
        lines.append(
            f"\n{path.name}  [{record['label']}] "
            f"host={manifest['host']} code={manifest['code_version']}"
        )
        for result in record["results"]:
            throughput = result["metrics"].get("trials_per_s")
            suffix = f"  {throughput:>8.1f} trials/s" if throughput else ""
            lines.append(
                f"  {result['id']:<{width}}  median {result['median_s']:>9.4f} s"
                f"  min {result['min_s']:>9.4f} s  x{result['repeats']}{suffix}"
            )
    return "\n".join(lines)
