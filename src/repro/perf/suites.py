"""Registered benchmark suites: named sets of workloads to time.

A :class:`Workload` names one unit the harness knows how to execute —
a scenario campaign (through :func:`repro.scenarios.run_scenario`,
store-isolated) or an experiment driver (through
:func:`repro.experiments.get_experiment`) — with the seed and trial
budget pinned so every run of the suite does the same work.

Two suites ship by default:

- ``smoke`` — seconds-scale, one workload per solver family plus one
  figure driver; the CI perf gate (``tools/check_perf.py``) runs it on
  every push.
- ``full`` — the smoke workloads at larger trial budgets plus the
  remaining solver families; for local before/after comparisons.

:func:`register_suite` is the extension point (mirrors
``scenarios/registry.py``); suite names share the bench-label alphabet
since ``repro bench run`` defaults the record label to the suite name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ValidationError
from .record import _LABEL_RE

__all__ = ["Workload", "register_suite", "get_suite", "all_suites"]

_WORKLOAD_KINDS = ("scenario", "experiment")


@dataclass(frozen=True)
class Workload:
    """One benchmarkable unit with its execution parameters pinned.

    ``workload_id`` is the stable identity bench records key results on
    (regression checks match baseline to current by it); ``target_id``
    is the scenario or experiment registry id to execute.  ``n_trials``
    applies to scenario campaigns only (experiments own their budgets).
    """

    workload_id: str
    kind: str
    target_id: str
    seed: int = 0
    n_trials: int = 0

    def __post_init__(self):
        if self.kind not in _WORKLOAD_KINDS:
            raise ValidationError(
                f"workload kind must be one of {_WORKLOAD_KINDS}; "
                f"got {self.kind!r}"
            )
        if self.kind == "scenario" and self.n_trials < 1:
            raise ValidationError(
                f"scenario workload {self.workload_id!r} needs n_trials >= 1"
            )


_SUITES: Dict[str, Tuple[Workload, ...]] = {}


def register_suite(name: str, workloads: Tuple[Workload, ...]) -> None:
    """Register a named suite; duplicate names and ids are rejected."""
    if not _LABEL_RE.match(name):
        raise ValidationError(
            f"suite name must match {_LABEL_RE.pattern} (it becomes the "
            f"default bench label); got {name!r}"
        )
    if name in _SUITES:
        raise ValidationError(f"suite {name!r} is already registered")
    if not workloads:
        raise ValidationError(f"suite {name!r} must contain workloads")
    ids = [w.workload_id for w in workloads]
    if len(set(ids)) != len(ids):
        raise ValidationError(f"suite {name!r} has duplicate workload ids")
    _SUITES[name] = tuple(workloads)


def get_suite(name: str) -> Tuple[Workload, ...]:
    """Look up a registered suite, naming the alternatives on a miss."""
    try:
        return _SUITES[name]
    except KeyError:
        known = ", ".join(sorted(_SUITES))
        raise ValidationError(
            f"unknown bench suite {name!r}; registered suites: {known}"
        ) from None


def all_suites() -> Dict[str, Tuple[Workload, ...]]:
    """All registered suites, by name."""
    return dict(_SUITES)


# -- shipped suites ------------------------------------------------------
# Budgets are sized so `smoke` finishes in a few seconds per repeat
# (it runs in CI on every push) while still touching each solver
# family: plain multilateration, centralized LSS via the town layout,
# the batched distributed-LSS pipeline, and one figure driver.

register_suite(
    "smoke",
    (
        Workload(
            workload_id="uniform-multilateration-8",
            kind="scenario",
            target_id="uniform-multilateration",
            n_trials=8,
        ),
        Workload(
            workload_id="town-multilateration-4",
            kind="scenario",
            target_id="town-multilateration",
            n_trials=4,
        ),
        Workload(
            workload_id="town-distributed-lss-2",
            kind="scenario",
            target_id="town-distributed-lss",
            n_trials=2,
        ),
        Workload(
            workload_id="fig12-multilateration",
            kind="experiment",
            target_id="fig12",
            seed=2005,
        ),
    ),
)

register_suite(
    "full",
    (
        Workload(
            workload_id="uniform-multilateration-32",
            kind="scenario",
            target_id="uniform-multilateration",
            n_trials=32,
        ),
        Workload(
            workload_id="town-multilateration-16",
            kind="scenario",
            target_id="town-multilateration",
            n_trials=16,
        ),
        Workload(
            workload_id="town-lss-8",
            kind="scenario",
            target_id="town-lss",
            n_trials=8,
        ),
        Workload(
            workload_id="town-distributed-lss-4",
            kind="scenario",
            target_id="town-distributed-lss",
            n_trials=4,
        ),
        Workload(
            workload_id="uniform-dv-hop-16",
            kind="scenario",
            target_id="uniform-dv-hop",
            n_trials=16,
        ),
        Workload(
            workload_id="fig12-multilateration",
            kind="experiment",
            target_id="fig12",
            seed=2005,
        ),
        Workload(
            workload_id="fig16-multilateration-extended",
            kind="experiment",
            target_id="fig16",
            seed=2005,
        ),
    ),
)
