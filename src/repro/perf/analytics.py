"""Trace analytics: Chrome trace-event export and critical-path extraction.

Works on parsed telemetry traces (the output of
:func:`repro.telemetry.read_trace`).  Span records carry durations and
a global exit-order ``seq``, not start timestamps (the recorder appends
each span when it *closes*), so both analyses first rebuild the span
forest from that post-order stream:

- a span's children are exactly the already-emitted spans whose path
  extends its own path by one or more segments and that are still
  unadopted when it closes;
- roots are whatever remains unadopted at the end.

For the Chrome export, start times are then *synthesized*: roots are
laid out back to back from t=0, and each span's children are packed
sequentially from its start (in seq order — which is execution order
for sibling spans).  The layout is deterministic, preserves every
duration and the full nesting structure, and loads in any
``chrome://tracing``-compatible viewer (Perfetto, speedscope); only
the gaps *between* sibling spans are reconstructions, since the trace
never recorded wall-clock starts.

The critical path is the root-to-leaf chain that follows the child
with the largest total wall time at every level, annotated with each
hop's self time (wall minus direct children) and CPU utilization —
the "where does the time actually go" answer ``repro trace
critical-path`` renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = [
    "SpanNode",
    "build_span_forest",
    "chrome_trace",
    "critical_path",
    "render_critical_path",
]


@dataclass
class SpanNode:
    """One span instance with its adopted children (execution order)."""

    record: Dict[str, Any]
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record["name"]

    @property
    def path(self) -> str:
        return self.record["path"]

    @property
    def wall_s(self) -> float:
        return self.record["wall_s"]

    @property
    def cpu_s(self) -> float:
        return self.record["cpu_s"]

    @property
    def self_wall_s(self) -> float:
        """Wall time not attributed to any direct child."""
        return max(0.0, self.wall_s - sum(c.wall_s for c in self.children))


def build_span_forest(records: List[Dict[str, Any]]) -> List[SpanNode]:
    """Rebuild span nesting from the exit-ordered (post-order) stream.

    Spans are processed in ``seq`` order.  Each closing span adopts the
    pending spans whose path lies strictly under its own; a span whose
    parent never closes (e.g. a truncated trace) stays a root, so the
    forest degrades gracefully instead of dropping data.
    """
    spans = sorted(
        (r for r in records if r.get("type") == "span"), key=lambda r: r["seq"]
    )
    pending: List[SpanNode] = []
    for record in spans:
        node = SpanNode(record)
        prefix = record["path"] + "/"
        adopted = [n for n in pending if n.path.startswith(prefix)]
        if adopted:
            # Children were appended in exit order; within one parent
            # that matches execution order for sibling spans.
            node.children = adopted
            pending = [n for n in pending if not n.path.startswith(prefix)]
        pending.append(node)
    return pending


def _layout(
    node: SpanNode,
    start_s: float,
    out: List[Dict[str, Any]],
    starts: Dict[int, float],
) -> None:
    starts[node.record["seq"]] = start_s
    args = {"cpu_s": node.cpu_s, "path": node.path}
    args.update(node.record.get("attrs", {}))
    out.append(
        {
            "name": node.name,
            "cat": "span",
            "ph": "X",
            "ts": round(start_s * 1e6, 3),
            "dur": round(node.wall_s * 1e6, 3),
            "pid": 1,
            "tid": 1,
            "args": args,
        }
    )
    cursor = start_s
    for child in node.children:
        _layout(child, cursor, out, starts)
        cursor += child.wall_s


def _event_timestamps(
    records: List[Dict[str, Any]], starts: Dict[int, float]
) -> List[Dict[str, Any]]:
    """Instant events, pinned to the start of their enclosing span.

    An event fired inside a span has a smaller ``seq`` than that span
    (the span record is appended at close); the enclosing instance is
    the one with the event's path and the smallest such larger seq.
    """
    spans = [r for r in records if r.get("type") == "span"]
    out = []
    for event in (r for r in records if r.get("type") == "event"):
        candidates = [
            s["seq"]
            for s in spans
            if s["path"] == event.get("path") and s["seq"] > event["seq"]
        ]
        ts = starts.get(min(candidates), 0.0) if candidates else 0.0
        out.append(
            {
                "name": event["name"],
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": round(ts * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": dict(event.get("fields", {})),
            }
        )
    return out


def chrome_trace(
    manifest: Dict[str, Any], records: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Convert a parsed telemetry trace to Chrome trace-event JSON.

    Returns the standard object form (``traceEvents`` plus metadata),
    loadable in Perfetto / ``chrome://tracing`` / speedscope.  Spans
    become complete (``"X"``) events on a synthesized timeline (module
    docstring), telemetry events become instant (``"i"``) events, and
    counters/gauges travel in ``otherData`` alongside the manifest.
    """
    forest = build_span_forest(records)
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": f"repro {manifest.get('repro_version', '')}".strip()},
        }
    ]
    # Each span instance's synthesized start, by seq (for event pinning).
    starts: Dict[int, float] = {}
    cursor = 0.0
    for root in forest:
        _layout(root, cursor, events, starts)
        cursor += root.wall_s
    events.extend(_event_timestamps(records, starts))
    other: Dict[str, Any] = {
        key: value for key, value in manifest.items() if key != "type"
    }
    other["counters"] = {
        r["name"]: r["value"] for r in records if r.get("type") == "counter"
    }
    other["gauges"] = {
        r["name"]: r["value"] for r in records if r.get("type") == "gauge"
    }
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def critical_path(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The slowest root-to-leaf span chain, one row per hop.

    Starts at the root with the largest total wall time and descends
    into the child with the largest total wall time at every level.
    Each row carries the hop's wall/CPU seconds, self time, share of
    the root's wall time, and CPU utilization (``cpu_s / wall_s`` —
    > 1 means the span's subtree ran on multiple cores).
    """
    forest = build_span_forest(records)
    if not forest:
        return []
    node = max(forest, key=lambda n: n.wall_s)
    total = node.wall_s
    rows: List[Dict[str, Any]] = []
    depth = 0
    while node is not None:
        rows.append(
            {
                "depth": depth,
                "name": node.name,
                "path": node.path,
                "wall_s": node.wall_s,
                "cpu_s": node.cpu_s,
                "self_wall_s": node.self_wall_s,
                "share_of_root": (node.wall_s / total) if total > 0 else 0.0,
                "utilization": (node.cpu_s / node.wall_s) if node.wall_s > 0 else 0.0,
                "calls_at_path": sum(
                    1 for r in records if r.get("type") == "span" and r["path"] == node.path
                ),
            }
        )
        node = max(node.children, key=lambda n: n.wall_s) if node.children else None
        depth += 1
    return rows


def render_critical_path(rows: List[Dict[str, Any]]) -> str:
    """Human-readable rendering for ``repro trace critical-path``."""
    if not rows:
        return "no spans in trace"
    total = rows[0]["wall_s"]
    out = [
        f"critical path ({len(rows)} hops, root wall {total:.4f} s):",
        "  span                        wall s     self s   share   cpu util",
    ]
    for row in rows:
        label = "  " * row["depth"] + row["name"]
        out.append(
            f"  {label:<24}  {row['wall_s']:>9.4f}  {row['self_wall_s']:>9.4f}"
            f"  {row['share_of_root']:>5.0%}  {row['utilization']:>7.2f}x"
        )
    hottest = max(rows, key=lambda r: r["self_wall_s"])
    share = (hottest["self_wall_s"] / total) if total > 0 else 0.0
    out.append(
        f"  hottest self time: {hottest['path']} "
        f"({hottest['self_wall_s']:.4f} s, {share:.0%} of root)"
    )
    return "\n".join(out)
