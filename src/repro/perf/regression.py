"""Noise-aware bench-record comparison: the CI regression gate's brain.

:func:`compare_records` diffs a current bench record against a
baseline, workload by workload.  Timing comparisons are **noise
aware**: each side's relative spread ``(max - min) / median`` over its
raw repeat timings estimates the run-to-run jitter, and the allowed
slowdown for a workload is::

    allowed = max(rel_tol, noise_mult * max(spread_baseline, spread_current))

so a jittery workload does not flap the gate, while a stable workload
is held to the configured tolerance.  Only slowdowns gate; speedups
and counter drifts are reported as informational findings (counters
move legitimately whenever algorithms change — the record exists so
such moves are *visible*, not forbidden).

Exit-code contract (consumed by ``repro bench check`` and
``tools/check_perf.py``):

- ``0`` — every common workload within tolerance;
- ``1`` — at least one regression;
- ``2`` — records are not comparable (no overlapping workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["Finding", "BenchComparison", "compare_records"]

#: Default allowed relative slowdown before noise widening (25%).
DEFAULT_REL_TOL = 0.25

#: How many spreads of measured jitter the tolerance widens to.
DEFAULT_NOISE_MULT = 3.0


@dataclass(frozen=True)
class Finding:
    """One per-workload observation from a comparison."""

    workload_id: str
    kind: str  # "regression" | "improvement" | "counter-drift" | "coverage"
    detail: str
    gating: bool


@dataclass
class BenchComparison:
    """Outcome of one baseline-vs-current comparison."""

    baseline_label: str
    current_label: str
    compared: int = 0
    findings: List[Finding] = field(default_factory=list)

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.gating]

    @property
    def exit_code(self) -> int:
        if self.compared == 0:
            return 2
        return 1 if self.regressions else 0

    def render(self) -> str:
        lines = [
            f"bench check: {self.current_label} vs baseline "
            f"{self.baseline_label} ({self.compared} workloads compared)"
        ]
        for finding in self.findings:
            marker = "FAIL" if finding.gating else "info"
            lines.append(f"  [{marker}] {finding.workload_id}: {finding.detail}")
        if self.compared == 0:
            lines.append(
                "  [FAIL] records share no workload ids — nothing to compare"
            )
        elif not self.regressions:
            lines.append("  ok: no regressions beyond tolerance")
        return "\n".join(lines)


def _spread(result: Dict[str, Any]) -> float:
    timings = result["timings_s"]
    return (max(timings) - min(timings)) / result["median_s"]


def compare_records(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    *,
    rel_tol: float = DEFAULT_REL_TOL,
    noise_mult: float = DEFAULT_NOISE_MULT,
    counter_tol: float = 0.0,
) -> BenchComparison:
    """Compare two validated bench records (see module docstring).

    ``counter_tol`` is the relative counter change beyond which a
    counter-drift finding is emitted (0.0 reports any change); counter
    drifts never gate.
    """
    base_results = {r["id"]: r for r in baseline["results"]}
    curr_results = {r["id"]: r for r in current["results"]}
    comparison = BenchComparison(
        baseline_label=baseline["label"], current_label=current["label"]
    )
    for workload_id in sorted(set(base_results) | set(curr_results)):
        if workload_id not in curr_results:
            comparison.findings.append(
                Finding(workload_id, "coverage", "in baseline only (skipped)", False)
            )
            continue
        if workload_id not in base_results:
            comparison.findings.append(
                Finding(workload_id, "coverage", "in current only (no baseline)", False)
            )
            continue
        base, curr = base_results[workload_id], curr_results[workload_id]
        comparison.compared += 1

        ratio = curr["median_s"] / base["median_s"]
        allowed = max(rel_tol, noise_mult * max(_spread(base), _spread(curr)))
        detail = (
            f"median {base['median_s']:.4f}s -> {curr['median_s']:.4f}s "
            f"({ratio - 1.0:+.0%} vs allowed +{allowed:.0%})"
        )
        if ratio - 1.0 > allowed:
            comparison.findings.append(
                Finding(workload_id, "regression", detail, True)
            )
        elif ratio < 1.0 - allowed:
            comparison.findings.append(
                Finding(workload_id, "improvement", detail, False)
            )

        for name in sorted(set(base["counters"]) & set(curr["counters"])):
            before, after = base["counters"][name], curr["counters"][name]
            if before == after:
                continue
            drift = abs(after - before) / abs(before) if before else float("inf")
            if drift > counter_tol:
                comparison.findings.append(
                    Finding(
                        workload_id,
                        "counter-drift",
                        f"counter {name}: {before} -> {after}",
                        False,
                    )
                )
    return comparison
