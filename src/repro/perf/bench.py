"""The bench harness: median-of-k timings plus telemetry counters.

:func:`run_suite` executes a registered suite
(:mod:`repro.perf.suites`) and assembles one versioned bench record
(:mod:`repro.perf.record`).  Per workload, each of the *k* repeats:

- runs **store-isolated** (the same rule as ``benchmarks/conftest.py``):
  a fresh throwaway store root per repeat, so timings always measure
  real simulation work, never a warm hit from the user's persistent
  store — and the user's store is never touched;
- runs under its own :func:`repro.telemetry.recording` scope, so the
  run's counters (solves, cache misses/puts, committed trials) ride
  into the record without perturbing any ambient recorder;
- is timed with ``time.perf_counter`` around the whole workload call.

The record keeps the raw per-repeat timings (the regression checker
derives its noise floor from their spread), the median and min, the
final repeat's counters (identical across repeats — the work is
deterministic), and derived throughput metrics (``trials_per_s``).

Benchmarking observes, never steers (determinism guarantee #10): a
workload benched into a caller-supplied store publishes entries
byte-identical to an unbenched :func:`repro.scenarios.run_scenario`
of the same ``(spec, seed, budget)`` — pinned by
``tests/test_perf.py``.
"""

from __future__ import annotations

import os
import statistics
import tempfile
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, List, Optional

from .. import telemetry
from ..errors import ValidationError
from ..telemetry.recorder import _scrub
from .record import make_bench_record, make_workload_result
from .suites import Workload, get_suite

__all__ = ["run_workload", "run_suite"]


@contextmanager
def _store_env(root: str):
    """Point ``REPRO_STORE_DIR`` at *root* for the scope.

    Experiment drivers memoize through the environment-selected default
    store; scenarios receive their store explicitly.  Both must land in
    the isolation root, so the env var is scoped around every repeat.
    """
    saved = os.environ.get("REPRO_STORE_DIR")
    os.environ["REPRO_STORE_DIR"] = root
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_STORE_DIR", None)
        else:
            os.environ["REPRO_STORE_DIR"] = saved


def _execute(workload: Workload, store) -> None:
    """Run one repeat of *workload* against *store* (scenarios) or the
    ambient default store (experiments)."""
    if workload.kind == "scenario":
        from ..scenarios import get_scenario, run_scenario

        run_scenario(
            get_scenario(workload.target_id),
            master_seed=workload.seed,
            n_trials=workload.n_trials,
            store=store,
            # Never consult the cache: a caller-supplied store persists
            # across repeats, and a warm hit would time deserialization
            # instead of simulation.  Publication still happens, which
            # is what the guarantee-#10 byte-identity pin inspects.
            use_cache=False,
        )
    else:
        from ..experiments import get_experiment

        get_experiment(workload.target_id)(workload.seed)


def run_workload(
    workload: Workload,
    *,
    repeats: int = 3,
    store=None,
) -> Dict[str, Any]:
    """Time *workload* ``repeats`` times; return one bench result entry.

    With ``store=None`` (the default) every repeat gets a fresh
    throwaway store root; passing a store benches against it without
    cache hits (``use_cache=False``), which is how the byte-identity
    pin inspects what a benched run publishes.
    """
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1; got {repeats}")
    timings: List[float] = []
    counters: Dict[str, float] = {}
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            rep_store = store
            if workload.kind == "scenario" and store is None:
                from ..store import ResultStore

                rep_store = ResultStore(os.path.join(tmp, "store"))
            env_root = str(rep_store.root) if rep_store is not None else tmp
            with _store_env(env_root):
                with telemetry.recording() as recorder:
                    start = perf_counter()
                    _execute(workload, rep_store)
                    timings.append(perf_counter() - start)
        # Last repeat wins: the counters are deterministic functions of
        # (workload, seed), so any repeat reports the same values.
        counters = {name: _scrub(value) for name, value in recorder.counters.items()}
    metrics: Dict[str, float] = {}
    trials = counters.get("engine.campaign.trials")
    median = statistics.median(timings)
    if trials:
        metrics["trials_per_s"] = trials / median
    solves = sum(
        value
        for name, value in counters.items()
        if name.startswith("engine.batch.") and name.endswith("_solves")
    )
    if solves:
        metrics["solves_per_s"] = solves / median
    return make_workload_result(
        workload_id=workload.workload_id,
        kind=workload.kind,
        timings_s=timings,
        counters=counters,
        metrics=metrics,
    )


def run_suite(
    suite_name: str,
    *,
    repeats: int = 3,
    label: Optional[str] = None,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Execute a registered suite; return its validated bench record.

    The record label defaults to the suite name.  The embedded manifest
    carries the environment fields (host, python, numpy, repro version,
    array backend, code version) plus the suite name, repeat count, and
    the spec hash of every scenario workload — so a regression check
    can tell "the code got slower" apart from "the workload changed".
    """
    workloads = get_suite(suite_name)
    results = [run_workload(w, repeats=repeats) for w in workloads]
    spec_hashes: Dict[str, str] = {}
    for workload in workloads:
        if workload.kind == "scenario":
            from ..scenarios import get_scenario

            spec_hashes[workload.target_id] = get_scenario(
                workload.target_id
            ).spec_hash()
    return make_bench_record(
        label or suite_name,
        results,
        manifest_extra={
            "suite": suite_name,
            "repeats": int(repeats),
            "spec_hashes": spec_hashes,
        },
        now=now,
    )
