"""The versioned bench-record schema: one writer, shared by every emitter.

A bench record is a single JSON object (conventionally stored as
``BENCH_<label>.json``) describing one benchmark session: the run
**manifest** (host, platform, python, numpy, repro version, array
backend, code version — the same environment fields a telemetry trace
manifest carries) plus one **result** entry per workload with the raw
repeat timings, their median/min, the key telemetry counters of the
run, and derived throughput metrics.

Both producers — the ``repro bench run`` harness
(:mod:`repro.perf.bench`) and the opt-in ``REPRO_BENCH_JSON``
pytest-benchmark hook in ``benchmarks/conftest.py`` — build records
through :func:`make_bench_record` and serialize through
:func:`write_bench_record`, so the schema cannot fork.  Validation is
hand-rolled (no external JSON-schema dependency), mirrors
:mod:`repro.telemetry.schema`, and raises
:class:`repro.errors.ValidationError` with a field-level message;
readers tolerate *extra* keys (forward-compatible minor additions) but
reject records whose ``schema`` version they do not know.
"""

from __future__ import annotations

import json
import os
import re
import statistics
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ValidationError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "bench_filename",
    "make_workload_result",
    "make_bench_record",
    "validate_bench_record",
    "read_bench_record",
    "write_bench_record",
    "canonical_record_bytes",
]

#: Bump on any backward-incompatible change to the record shape.
BENCH_SCHEMA_VERSION = 1

#: Labels become file names (``BENCH_<label>.json``), so they are
#: restricted to a filesystem- and shell-safe alphabet.
_LABEL_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_NUMBER = (int, float)

#: Workload kinds the harness knows how to execute; bench records may
#: also carry ``pytest-benchmark`` entries from the conftest hook.
RESULT_KINDS = ("scenario", "experiment", "pytest-benchmark")


def bench_filename(label: str) -> str:
    """The conventional file name for a bench record with *label*."""
    _require_label(label)
    return f"BENCH_{label}.json"


def _require_label(label: Any) -> str:
    if not isinstance(label, str) or not _LABEL_RE.match(label):
        raise ValidationError(
            f"bench label must match {_LABEL_RE.pattern} "
            f"(it becomes a file name); got {label!r}"
        )
    return label


def make_workload_result(
    *,
    workload_id: str,
    kind: str,
    timings_s: Sequence[float],
    counters: Optional[Dict[str, float]] = None,
    metrics: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """One result entry: raw repeat timings plus derived summary stats.

    ``median_s``/``min_s``/``repeats`` are always derived here from the
    raw timings, so no producer can emit an inconsistent summary.
    """
    timings = [float(t) for t in timings_s]
    if not timings or any(t <= 0 for t in timings):
        raise ValidationError(
            f"workload {workload_id!r}: timings must be a non-empty "
            f"sequence of positive seconds; got {timings!r}"
        )
    return {
        "id": str(workload_id),
        "kind": str(kind),
        "repeats": len(timings),
        "timings_s": timings,
        "median_s": statistics.median(timings),
        "min_s": min(timings),
        "counters": dict(counters or {}),
        "metrics": dict(metrics or {}),
    }


def make_bench_record(
    label: str,
    results: Sequence[Dict[str, Any]],
    *,
    manifest_extra: Optional[Dict[str, Any]] = None,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Assemble and validate a complete bench record.

    The environment manifest comes from
    :func:`repro.telemetry.manifest.base_manifest` (same provenance
    fields as a trace manifest; ``now`` is the test seam for the
    ``created_unix`` stamp) with the store's code version added;
    *manifest_extra* layers run-specific fields (suite name, repeat
    count, spec hashes) on top.
    """
    from ..store.result_store import default_code_version
    from ..telemetry.manifest import base_manifest

    manifest = base_manifest(now=now)
    manifest["code_version"] = default_code_version()
    manifest.update(manifest_extra or {})
    record = {
        "type": "bench",
        "schema": BENCH_SCHEMA_VERSION,
        "label": _require_label(label),
        "manifest": manifest,
        "results": [dict(result) for result in results],
    }
    validate_bench_record(record)
    return record


def _require(record: Dict[str, Any], field: str, types, where: str) -> Any:
    if field not in record:
        raise ValidationError(f"{where}: missing required field {field!r}")
    value = record[field]
    if isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        raise ValidationError(f"{where}: field {field!r} must not be a bool")
    if not isinstance(value, types):
        raise ValidationError(
            f"{where}: field {field!r} has type {type(value).__name__}"
        )
    return value


def _validate_result(entry: Any, where: str) -> None:
    if not isinstance(entry, dict):
        raise ValidationError(f"{where}: result must be a JSON object")
    workload_id = _require(entry, "id", str, where)
    if not workload_id:
        raise ValidationError(f"{where}: result id must be non-empty")
    _require(entry, "kind", str, where)
    repeats = _require(entry, "repeats", int, where)
    timings = _require(entry, "timings_s", list, where)
    if repeats < 1 or len(timings) != repeats:
        raise ValidationError(
            f"{where}: repeats ({repeats}) must be >= 1 and match "
            f"len(timings_s) ({len(timings)})"
        )
    for timing in timings:
        if isinstance(timing, bool) or not isinstance(timing, _NUMBER) or timing <= 0:
            raise ValidationError(
                f"{where}: timings_s entries must be positive numbers; "
                f"got {timing!r}"
            )
    for field in ("median_s", "min_s"):
        if _require(entry, field, _NUMBER, where) <= 0:
            raise ValidationError(f"{where}: {field} must be > 0")
    for table in ("counters", "metrics"):
        mapping = _require(entry, table, dict, where)
        for name, value in mapping.items():
            if not isinstance(name, str):
                raise ValidationError(f"{where}: {table} keys must be strings")
            if isinstance(value, bool) or not isinstance(value, _NUMBER):
                raise ValidationError(
                    f"{where}: {table}[{name!r}] must be a number; got {value!r}"
                )


def validate_bench_record(record: Any) -> None:
    """Check one parsed bench record; raise ValidationError if invalid."""
    where = "bench record"
    if not isinstance(record, dict):
        raise ValidationError(f"{where}: record must be a JSON object")
    if record.get("type") != "bench":
        raise ValidationError(
            f"{where}: type must be 'bench'; got {record.get('type')!r}"
        )
    schema = _require(record, "schema", int, where)
    if schema != BENCH_SCHEMA_VERSION:
        raise ValidationError(
            f"{where}: schema version {schema} is not supported "
            f"(this build reads version {BENCH_SCHEMA_VERSION})"
        )
    _require_label(record.get("label"))
    manifest = _require(record, "manifest", dict, where)
    for field, types in (
        ("created_unix", _NUMBER),
        ("host", str),
        ("repro_version", str),
        ("code_version", str),
    ):
        _require(manifest, field, types, f"{where} manifest")
    results = _require(record, "results", list, where)
    if not results:
        raise ValidationError(f"{where}: results must be non-empty")
    seen = set()
    for i, entry in enumerate(results):
        _validate_result(entry, f"{where} result {i + 1}")
        if entry["id"] in seen:
            raise ValidationError(
                f"{where}: duplicate result id {entry['id']!r}"
            )
        seen.add(entry["id"])


def read_bench_record(path) -> Dict[str, Any]:
    """Parse and validate a bench-record JSON file."""
    if not os.path.exists(path):
        raise ValidationError(f"bench record not found: {path}")
    with open(path, "r", encoding="utf-8") as fh:
        try:
            record = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"bench record {path}: malformed JSON ({exc.msg}, "
                f"line {exc.lineno})"
            ) from exc
    try:
        validate_bench_record(record)
    except ValidationError as exc:
        raise ValidationError(f"bench record {path}: {exc}") from None
    return record


def write_bench_record(path, record: Dict[str, Any]) -> None:
    """Validate and write *record* as stable, diff-friendly JSON."""
    validate_bench_record(record)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, sort_keys=True, indent=2)
        fh.write("\n")


def canonical_record_bytes(record: Dict[str, Any]) -> bytes:
    """The record's canonical encoding (history dedup keys hash this)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
