"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch a single base class.  Input-validation problems raise
:class:`ValidationError` (a subclass of :class:`ValueError` as well, for
compatibility with code that expects standard exceptions).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """Raised when an input fails validation (shape, range, type)."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative solver fails to converge and the caller
    requested strict behaviour."""


class InsufficientDataError(ReproError, ValueError):
    """Raised when an algorithm does not have enough measurements to
    produce a solution (e.g. fewer than three non-collinear anchors for
    multilateration, or an empty measurement set for LSS)."""


class GraphDisconnectedError(ReproError, RuntimeError):
    """Raised by the distributed localization pipeline when the
    measurement graph is disconnected and a full alignment flood cannot
    reach every node."""


class CalibrationError(ReproError, RuntimeError):
    """Raised when a ranging-service calibration step cannot be completed
    (e.g. no detections at any calibration distance)."""
