"""Command-line entry point: ``python -m repro``.

Subcommands
-----------
``list``
    Registered experiment drivers and scenario specs, plus the shard
    status of any in-flight sharded campaigns found in the store.
``run <id>``
    Run one experiment (paper figure / extension claim) or one scenario
    campaign by id.  Scenario runs honor ``--workers``, the result store
    (``--store DIR`` / ``--no-store`` / ``--no-cache``), optional
    adaptive early stopping (``--adaptive``), and cross-host sharding
    (``--shard K/N``).  Experiment runs accept only ``--seed``; passing
    a scenario-only flag with an experiment id is an error.  Both kinds
    honor ``--array-backend`` (or ``REPRO_ARRAY_BACKEND``) to route the
    engine kernels through an alternate array namespace; the default
    ``numpy`` is the byte-exact reference path.
``merge <id>``
    Merge an N-shard campaign's published shard entries into the
    canonical full-campaign store entry.
``store <subcommand>``
    Operate on result stores themselves: ``stats`` (backend, entry and
    byte counts), ``ls`` (indexed entry listing), ``gc`` (size-budget
    LRU eviction + orphaned staging-file sweep), ``sync SRC DST``
    (exchange entries between two stores — the cross-host path), and
    ``migrate SRC DST`` (move a store between backends byte-identically).
    Store paths accept both backend forms: a directory is the
    filesystem layout, a ``.sqlite``/``.db`` path the SQLite backend.
``lint [PATHS...]``
    Statically check source against the repo's invariant rules
    (global-RNG use, Array-API kernel purity, wall-clock reads, and the
    rest of RPL001-RPL008 — see ``docs/linting.md``).  With no paths it
    lints the installed ``repro`` package; ``--json`` emits a versioned
    machine-readable report; exit 1 means findings.
``trace <subcommand>``
    Inspect telemetry traces written by ``run --trace PATH`` (or the
    ``REPRO_TRACE`` environment variable): ``summarize`` renders one
    trace's span tree, counters, and scheduler decisions; ``compare``
    diffs two traces' phase times and counters; ``export`` converts a
    trace to Chrome trace-event JSON (loadable in Perfetto /
    ``chrome://tracing`` / speedscope); ``critical-path`` prints the
    slowest root-to-leaf span chain with per-hop self times and CPU
    utilization.  All four tolerate a crashed-writer trace whose final
    line is truncated (the readable records are reported, with a
    warning).  Tracing never changes results — see determinism
    guarantee #8 in ``docs/architecture.md``.
``bench <subcommand>``
    Machine-readable performance tracking (``repro.perf``): ``run``
    executes a registered workload suite store-isolated, takes
    median-of-k timings plus key telemetry counters, and writes a
    versioned ``BENCH_<label>.json`` record embedding the run manifest;
    ``history`` appends records to / lists a perf-history directory;
    ``check`` compares a record against a baseline with noise-aware
    relative thresholds and exits 0 (pass) / 1 (regression) /
    2 (incomparable) for CI.  Benchmarking never perturbs results —
    determinism guarantee #10.

Examples::

    python -m repro list
    python -m repro run fig18 --seed 7
    python -m repro run town-multilateration --workers 4 --trials 32
    python -m repro run uniform-multilateration --adaptive --tolerance 0.1
    python -m repro run town-multilateration --shard 2/3
    python -m repro run fig16 --trace t.jsonl
    python -m repro trace summarize t.jsonl
    python -m repro lint --json
    python -m repro trace compare baseline.jsonl current.jsonl
    python -m repro trace export t.jsonl -o t.chrome.json
    python -m repro trace critical-path t.jsonl
    python -m repro bench run --suite smoke --repeats 3
    python -m repro bench history --add BENCH_smoke.json --dir perf-history
    python -m repro bench check BENCH_smoke.json --baseline old/BENCH_smoke.json
    python -m repro merge town-multilateration --shards 3
    python -m repro store stats
    python -m repro store gc --max-bytes 256M
    python -m repro store sync /mnt/hostB-store ~/.cache/repro/store
    python -m repro store migrate ~/.cache/repro/store /tmp/store.sqlite
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from . import telemetry
from .engine.backend import ARRAY_BACKEND_ENV_VAR, BACKEND_NAMES, get_backend, use_backend
from .engine.campaign import CampaignResult
from .engine.scheduler import ConfidenceStop, ScheduledCampaignResult
from .engine.sharding import ShardSpec
from .errors import ValidationError
from .experiments import all_experiments, get_experiment
from .scenarios import (
    all_scenarios,
    get_scenario,
    merge_scenario_shards,
    run_scenario,
    run_scenario_shard,
    scenario_run_key,
    scenario_shard_status,
)
from .store import ResultStore, default_store_root
from .store.gc import DEFAULT_GRACE_SECONDS, collect
from .store.result_store import default_code_version
from .store.sync import diff, migrate, push

#: Environment variable naming a trace file to write for every
#: ``repro run`` (the ``--trace`` flag takes precedence when both are
#: set; empty/whitespace values mean unset).
TRACE_ENV_VAR = "REPRO_TRACE"

#: Flags only meaningful for scenario campaigns (flag, argparse attr).
#: An experiment run that sets any of them gets a clear usage error
#: instead of a silently ignored flag; defaults are read back from the
#: ``run`` subparser so this table cannot drift from the definitions.
_SCENARIO_ONLY_FLAGS = (
    ("--workers", "workers"),
    ("--trials", "trials"),
    ("--store", "store"),
    ("--no-store", "no_store"),
    ("--no-cache", "no_cache"),
    ("--adaptive", "adaptive"),
    ("--metric", "metric"),
    ("--tolerance", "tolerance"),
    ("--shard", "shard"),
)


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="result store: a directory (filesystem backend) or a "
        ".sqlite/.db file (SQLite backend); default: $REPRO_STORE_DIR "
        "or ~/.cache/repro/store",
    )
    parser.add_argument(
        "--no-store", action="store_true", help="disable the result store entirely"
    )


def _build_parser():
    """The top-level parser and the ``run`` subparser (returned so flag
    validation can read argparse defaults back instead of copying them)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Kwon et al. (ICDCS 2005) reproduction: experiments, "
        "scenario campaigns, and the content-addressed result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser(
        "list", help="list registered experiments, scenarios, and shard status"
    )
    _add_store_arguments(list_parser)

    run = sub.add_parser("run", help="run an experiment or scenario by id")
    run.add_argument("id", help="experiment id (fig18, ext-sweep, ...) or scenario id")
    run.add_argument("--seed", type=int, default=None, help="master seed")
    run.add_argument(
        "--workers", type=int, default=1, help="worker processes (scenarios only)"
    )
    run.add_argument(
        "--trials", type=int, default=None, help="trial budget override (scenarios only)"
    )
    _add_store_arguments(run)
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="skip cache lookups (recompute and republish)",
    )
    run.add_argument(
        "--adaptive",
        action="store_true",
        help="run the scenario through the early-stopping scheduler",
    )
    run.add_argument(
        "--metric",
        default="mean_error_m",
        help="target metric for --adaptive (default: mean_error_m)",
    )
    run.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        help="CI half-width tolerance for --adaptive (default: 0.1)",
    )
    run.add_argument(
        "--shard",
        default=None,
        metavar="K/N",
        help="run only shard K of an N-way cross-host split (e.g. 2/3); "
        "requires the result store and a fixed trial count",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL telemetry trace of this run to PATH (also "
        f"via ${TRACE_ENV_VAR}; inspect with `repro trace summarize`)",
    )
    run.add_argument(
        "--array-backend",
        default=None,
        metavar="NAME",
        help="array namespace for the engine kernels: "
        f"{', '.join(BACKEND_NAMES)} (also via ${ARRAY_BACKEND_ENV_VAR}; "
        "default numpy, which is the byte-exact reference path)",
    )

    trace = sub.add_parser(
        "trace", help="inspect telemetry traces written by `run --trace`"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="render a trace: span tree, counters, scheduler decisions",
    )
    summarize.add_argument("path", metavar="TRACE", help="JSONL trace file")
    compare = trace_sub.add_parser(
        "compare", help="diff two traces' phase times and counters"
    )
    compare.add_argument("a", metavar="A", help="baseline trace")
    compare.add_argument("b", metavar="B", help="comparison trace")
    export = trace_sub.add_parser(
        "export",
        help="convert a trace to Chrome trace-event JSON "
        "(Perfetto / chrome://tracing / speedscope)",
    )
    export.add_argument("path", metavar="TRACE", help="JSONL trace file")
    export.add_argument(
        "--format",
        default="chrome",
        choices=("chrome",),
        help="output format (only 'chrome' today)",
    )
    export.add_argument(
        "--out",
        "-o",
        default=None,
        metavar="PATH",
        help="output file (default: TRACE with a .chrome.json suffix)",
    )
    crit = trace_sub.add_parser(
        "critical-path",
        help="slowest root-to-leaf span chain: wall/self time, CPU utilization",
    )
    crit.add_argument("path", metavar="TRACE", help="JSONL trace file")

    bench = sub.add_parser(
        "bench",
        help="machine-readable benchmarks: run suites, track history, "
        "gate regressions (run/history/check)",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_sub.add_parser(
        "run",
        help="time a registered suite (store-isolated, median-of-k) and "
        "write a versioned BENCH_<label>.json record",
    )
    bench_run.add_argument(
        "--suite", default="smoke", help="registered suite name (default: smoke)"
    )
    bench_run.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per workload (default: 3; median is reported)",
    )
    bench_run.add_argument(
        "--label",
        default=None,
        help="record label (default: the suite name; names the output file)",
    )
    bench_run.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="record path (default: BENCH_<label>.json in the cwd)",
    )
    bench_run.add_argument(
        "--history",
        default=None,
        metavar="DIR",
        help="also append the record to this perf-history directory",
    )
    bench_history = bench_sub.add_parser(
        "history", help="append to / list a directory of bench records"
    )
    bench_history.add_argument(
        "--dir",
        default="bench-history",
        metavar="DIR",
        help="history directory (default: ./bench-history)",
    )
    bench_history.add_argument(
        "--add",
        default=None,
        metavar="RECORD",
        help="append this bench record before listing (idempotent)",
    )
    bench_check = bench_sub.add_parser(
        "check",
        help="compare a bench record against a baseline; exit 0 pass / "
        "1 regression / 2 incomparable",
    )
    bench_check.add_argument(
        "current", metavar="CURRENT", help="bench record to check"
    )
    bench_check.add_argument(
        "--baseline", required=True, metavar="PATH", help="baseline bench record"
    )
    bench_check.add_argument(
        "--rel-tol",
        type=float,
        default=None,
        help="allowed relative slowdown before noise widening (default: 0.25)",
    )
    bench_check.add_argument(
        "--noise-mult",
        type=float,
        default=None,
        help="noise widening: tolerance grows to this many measured "
        "spreads (default: 3.0)",
    )

    merge = sub.add_parser(
        "merge",
        help="merge an N-shard campaign's store entries into the canonical entry",
    )
    merge.add_argument("id", help="scenario id the shards were run under")
    merge.add_argument("--seed", type=int, default=None, help="master seed")
    merge.add_argument(
        "--trials", type=int, default=None, help="trial budget override"
    )
    merge.add_argument(
        "--shards",
        type=int,
        required=True,
        metavar="N",
        help="total shard count of the split being merged",
    )
    _add_store_arguments(merge)

    store = sub.add_parser(
        "store",
        help="inspect and maintain result stores (stats/ls/gc/sync/migrate)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    stats = store_sub.add_parser(
        "stats", help="backend kind, entry count, stored bytes, shard entries"
    )
    _add_store_arguments(stats)

    ls = store_sub.add_parser(
        "ls", help="list entries from the store index (no decompression)"
    )
    _add_store_arguments(ls)
    ls.add_argument(
        "--limit", type=int, default=None, metavar="N", help="show at most N entries"
    )
    ls.add_argument(
        "--shards",
        action="store_true",
        help="list campaign-shard entries (scenario, seed, shard K/N) instead",
    )

    gc = store_sub.add_parser(
        "gc", help="evict to a size budget (LRU) and sweep orphaned staging files"
    )
    _add_store_arguments(gc)
    gc.add_argument(
        "--max-bytes",
        default=None,
        metavar="SIZE",
        help="size budget, e.g. 500000, 64K, 256M, 2G (omit to only sweep orphans)",
    )
    gc.add_argument(
        "--pin",
        action="append",
        default=[],
        metavar="KEY",
        help="store key that must never be evicted (repeatable)",
    )
    gc.add_argument(
        "--grace",
        type=float,
        default=DEFAULT_GRACE_SECONDS,
        metavar="SECONDS",
        help=f"min age before a .tmp/.quarantine staging file is swept "
        f"(default {DEFAULT_GRACE_SECONDS:.0f}s)",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )

    sync = store_sub.add_parser(
        "sync",
        help="copy SRC entries missing from DST (cross-host shard exchange)",
    )
    sync.add_argument("src", metavar="SRC", help="source store (directory or .sqlite)")
    sync.add_argument("dst", metavar="DST", help="destination store")
    sync.add_argument(
        "--two-way",
        action="store_true",
        help="also copy DST entries missing from SRC (full set union)",
    )

    mig = store_sub.add_parser(
        "migrate",
        help="copy every SRC entry into DST (backend migration, byte-identical)",
    )
    mig.add_argument("src", metavar="SRC", help="source store (directory or .sqlite)")
    mig.add_argument("dst", metavar="DST", help="destination store")

    lint = sub.add_parser(
        "lint",
        help="statically check the repro tree against its invariant rules "
        "(RPL001-RPL008; see docs/linting.md)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit the versioned JSON report instead of text",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry (code, name, summary) and exit",
    )
    return parser, run


def _parse_size(text: str) -> int:
    """``"500000"``/``"64K"``/``"256M"``/``"2G"`` → bytes."""
    value = str(text).strip()
    scale = 1
    suffixes = {"K": 1024, "M": 1024**2, "G": 1024**3}
    if value and value[-1].upper() in suffixes:
        scale = suffixes[value[-1].upper()]
        value = value[:-1]
    try:
        n = int(value)
        if n < 0:
            raise ValueError(value)
    except ValueError:
        raise ValidationError(
            f"sizes look like 500000, 64K, 256M, or 2G; got {text!r}"
        ) from None
    return n * scale


def _format_bytes(n: int) -> str:
    for unit, scale in (("GiB", 1024**3), ("MiB", 1024**2), ("KiB", 1024)):
        if n >= scale:
            return f"{n / scale:.1f} {unit}"
    return f"{n} B"


def _cmd_store(args) -> int:
    if args.store_command == "sync":
        return _cmd_store_sync(args)
    if args.store_command == "migrate":
        return _cmd_store_migrate(args)
    store = _open_store(args)
    if store is None:
        print(
            "no result store (REPRO_STORE_DIR is off); pass --store PATH",
            file=sys.stderr,
        )
        return 2
    if not store.root.exists():
        # Inspection/maintenance must not conjure an empty store at a
        # typo'd path and report success against it.
        print(f"store {str(store.root)!r} does not exist", file=sys.stderr)
        return 2
    if args.store_command == "stats":
        return _cmd_store_stats(args, store)
    if args.store_command == "ls":
        return _cmd_store_ls(args, store)
    return _cmd_store_gc(args, store)


def _cmd_store_stats(args, store: ResultStore) -> int:
    if store.backend.indexed_shard_meta:
        # Indexed backend: count and bytes are O(1) SQL aggregates.
        count, total = len(store), store.total_bytes()
    else:
        # Filesystem: one directory walk yields both.
        infos = list(store.iter_entry_info())
        count, total = len(infos), sum(info.size for info in infos)
    print(f"store: {store.root} ({store.backend.kind} backend)")
    print(f"entries: {count} ({total} bytes, {_format_bytes(total)})")
    # Shard-entry counts come only from an index; stats stays cheap on
    # backends where counting would mean decompressing every entry.
    if store.backend.indexed_shard_meta:
        print(f"shard entries: {len(store.list_shards())}")
    else:
        print("shard entries: not indexed (`repro store ls --shards` scans)")
    return 0


def _cmd_store_ls(args, store: ResultStore) -> int:
    if args.limit is not None and args.limit < 0:
        # A negative limit would silently drop entries off the *end*
        # via Python slicing — a plausible-looking but wrong listing.
        print("--limit must be >= 0", file=sys.stderr)
        return 2
    if args.shards:
        listed = store.list_shards()
        print(f"shard entries ({len(listed)}):")
        for meta in listed[: args.limit]:
            shard = meta.get("shard", {})
            context = meta.get("context", {})
            k, n = shard.get("index"), shard.get("n_shards")
            cli_form = "?/?" if k is None or n is None else f"{k + 1}/{n}"
            print(
                f"  {str(context.get('scenario_id', '?')):<28s} "
                f"shard {cli_form} seed={meta.get('master_seed')} "
                f"trials={meta.get('campaign_trials')}"
            )
        return 0
    infos = list(store.iter_entry_info())
    total = sum(info.size for info in infos)
    print(f"entries ({len(infos)}, {total} bytes):")
    # Most recently used first — the entries eviction would keep longest.
    infos.sort(key=lambda info: (-info.accessed_at, info.key))
    for info in infos[: args.limit]:
        print(f"  {info.key}  {info.size:>8d} B")
    return 0


def _cmd_store_gc(args, store: ResultStore) -> int:
    try:
        max_bytes = None if args.max_bytes is None else _parse_size(args.max_bytes)
        report = collect(
            store,
            max_bytes=max_bytes,
            pinned=args.pin,
            grace_seconds=args.grace,
            dry_run=args.dry_run,
        )
    except ValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"store: {store.root} ({store.backend.kind} backend)")
    print(f"gc: {report.summary()}")
    if not report.under_budget:
        print(
            f"gc: pinned entries alone exceed the {max_bytes}-byte budget "
            f"({report.bytes_after} bytes remain)",
            file=sys.stderr,
        )
        return 1
    return 0


def _open_source_store(path: str) -> ResultStore:
    """A store at *path* that must already exist: sync/migrate sources
    are read-only, so a typo'd path must fail loudly instead of opening
    an empty store and 'successfully' copying nothing."""
    from pathlib import Path

    if not Path(path).exists():
        raise ValidationError(f"source store {path!r} does not exist")
    return ResultStore(path)


def _cmd_store_sync(args) -> int:
    try:
        src = _open_source_store(args.src)
    except ValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    dst = ResultStore(args.dst)
    report = push(src, dst)
    print(f"sync {src.root} -> {dst.root}: {report.summary()}")
    corrupt = list(report.skipped_corrupt)
    if args.two_way:
        back = push(dst, src)
        print(f"sync {dst.root} -> {src.root}: {back.summary()}")
        corrupt.extend(back.skipped_corrupt)
    # Name the actual cause before the generic divergence check: corrupt
    # entries are the one thing that legitimately leaves a two-way pass
    # out of sync, and "heal or invalidate them" is the actionable fix.
    if corrupt:
        print(
            f"sync: {len(corrupt)} corrupt source entries were not copied",
            file=sys.stderr,
        )
        return 1
    if args.two_way and not diff(src, dst).in_sync:
        print("sync: stores still differ after two-way pass", file=sys.stderr)
        return 1
    return 0


def _cmd_store_migrate(args) -> int:
    try:
        src = _open_source_store(args.src)
    except ValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    dst = ResultStore(args.dst)
    try:
        report = migrate(src, dst)
    except ValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(
        f"migrate {src.root} ({src.backend.kind}) -> "
        f"{dst.root} ({dst.backend.kind}): {report.summary()}"
    )
    return 0


def _shard_status_lines(store: ResultStore) -> list:
    """Group the store's shard entries into campaigns and render one
    status line per campaign (complete campaigns are not listed — their
    canonical entry has been published and they no longer need merging).

    The code version is part of the grouping key: shards published by a
    different repro version live under keys the current merge path can
    never address, so pooling them with current-version shards would
    misreport completeness.  Stale groups are flagged instead.
    """
    groups = {}
    for meta in store.list_shards():
        shard = meta.get("shard", {})
        context = meta.get("context", {})
        group = (
            str(context.get("scenario_id", "?")),
            str(context.get("spec_hash", ""))[:12],
            str(context.get("code_version", "?")),
            meta.get("master_seed"),
            meta.get("campaign_trials"),
            shard.get("n_shards"),
        )
        groups.setdefault(group, set()).add(shard.get("index"))
    lines = []
    for (scenario_id, spec_hash, code_version, seed, trials, n_shards), present in sorted(
        groups.items(), key=lambda item: item[0]
    ):
        if n_shards is None:
            continue
        missing = sorted(set(range(n_shards)) - present)
        if not missing:
            # All shards present — hidden only once the canonical merged
            # entry actually exists.  A crash between the last shard's
            # publish and the auto-merge, or shard entries copied in from
            # per-host stores, leaves the campaign complete but unmerged
            # — exactly the case the `merge` command recovers.
            if code_version != store.code_version:
                continue  # stale keys the current merge path cannot address
            try:
                spec = get_scenario(scenario_id)
            except KeyError:
                continue
            if spec.spec_hash()[:12] != spec_hash or seed is None or trials is None:
                continue
            canonical = store.key_for(
                scenario_run_key(spec, master_seed=seed, n_trials=trials)
            )
            if store.contains(canonical):
                continue
            lines.append(
                f"  {scenario_id:<28s} [{spec_hash}] seed={seed} trials={trials}: "
                f"all {n_shards} shards present, unmerged (run "
                f"`python -m repro merge {scenario_id} --seed {seed} "
                f"--trials {trials} --shards {n_shards}`)"
            )
            continue
        missing_text = ", ".join(f"{k + 1}/{n_shards}" for k in missing)
        stale = (
            ""
            if code_version == store.code_version
            else f" [stale code version {code_version}]"
        )
        lines.append(
            f"  {scenario_id:<28s} [{spec_hash}] seed={seed} trials={trials}: "
            f"{len(present)}/{n_shards} shards present (missing {missing_text})"
            f"{stale}"
        )
    return lines


def _cmd_list(args) -> int:
    experiments = all_experiments()
    scenarios = all_scenarios()
    print(f"experiments ({len(experiments)}):")
    for experiment_id in sorted(experiments):
        doc = (experiments[experiment_id].__doc__ or "").strip().splitlines()
        print(f"  {experiment_id:<28s} {doc[0] if doc else ''}")
    print(f"\nscenarios ({len(scenarios)}):")
    for scenario_id in sorted(scenarios):
        spec = scenarios[scenario_id]
        print(
            f"  {scenario_id:<28s} {spec.solver.algorithm}, "
            f"{spec.deployment.kind} n={spec.deployment.n_nodes}, "
            f"{spec.ranging.model} ranging, {spec.n_trials} trials "
            f"[{spec.spec_hash()[:12]}]"
        )
    store = _open_store(args)
    if store is not None:
        lines = _shard_status_lines(store)
        if lines:
            print(f"\nincomplete sharded campaigns ({len(lines)}):")
            for line in lines:
                print(line)
            print("  (run the missing shards, or `python -m repro merge <id>`)")
    return 0


def _open_store(args) -> Optional[ResultStore]:
    if args.no_store:
        return None
    if args.store is not None:
        return ResultStore(args.store)
    root = default_store_root()
    return None if root is None else ResultStore(root)


def _print_store_line(store: ResultStore) -> None:
    """Completion line surfacing the run's cache behavior directly
    (previously visible only through `repro store stats`)."""
    stats = store.stats
    print(
        f"store: {store.root} ({store.backend.kind} backend) "
        f"hits={stats.hits} misses={stats.misses} puts={stats.puts}"
    )


def _print_nan_warning(result: CampaignResult) -> None:
    """Flag silently-degraded campaigns: trials whose metrics include a
    non-finite value would otherwise surface only in the per-metric
    ``nan=`` columns (or nowhere, if nobody reads them)."""
    if result.n_nan_trials:
        print(
            f"warning: {result.n_nan_trials} of {result.n_trials} trials "
            f"reported non-finite metrics (see the nan= columns above)"
        )


def _resolve_trace_path(args) -> Optional[str]:
    """``--trace PATH``, else ``$REPRO_TRACE`` (empty means unset)."""
    if getattr(args, "trace", None):
        return args.trace
    configured = os.environ.get(TRACE_ENV_VAR, "").strip()
    return configured or None


def _resolve_array_backend(args) -> Optional[str]:
    """``--array-backend NAME``, else ``$REPRO_ARRAY_BACKEND`` (empty
    means unset).  Validated eagerly — an unknown or unavailable name
    raises :class:`ValidationError` (→ exit 2 via the ``main``
    backstop) *before* any trial runs, instead of a traceback from the
    first kernel call deep inside a campaign."""
    name = getattr(args, "array_backend", None)
    if name is None:
        name = os.environ.get(ARRAY_BACKEND_ENV_VAR, "").strip() or None
    if name is not None:
        get_backend(name)
    return name


def _cmd_run(args, run_parser) -> int:
    # The backend scope covers the trace write too: the manifest is
    # snapshot at write time and must record the run's actual backend.
    with use_backend(_resolve_array_backend(args)):
        trace_path = _resolve_trace_path(args)
        if trace_path is None:
            return _cmd_run_inner(args, run_parser)
        with telemetry.recording() as recorder:
            recorder.set_manifest(
                argv=["run", args.id], code_version=default_code_version()
            )
            code = _cmd_run_inner(args, run_parser)
            written = recorder.write(trace_path)
        print(f"trace: {written} records -> {trace_path}")
        return code


def _cmd_run_inner(args, run_parser) -> int:
    experiments = all_experiments()
    scenarios = all_scenarios()
    if args.id in experiments:
        from .experiments import DEFAULT_SEED

        offending = [
            flag
            for flag, attr in _SCENARIO_ONLY_FLAGS
            if getattr(args, attr) != run_parser.get_default(attr)
        ]
        if offending:
            print(
                f"{args.id!r} is an experiment id; {', '.join(offending)} "
                f"only appl{'ies' if len(offending) == 1 else 'y'} to scenario "
                f"campaigns (experiments accept --seed alone)",
                file=sys.stderr,
            )
            return 2
        seed = DEFAULT_SEED if args.seed is None else args.seed
        telemetry.set_manifest(
            kind="experiment", experiment_id=args.id, master_seed=int(seed)
        )
        with telemetry.span("experiment", id=args.id, seed=int(seed)):
            result = get_experiment(args.id)(seed)
        print(result.summary())
        return 0 if result.passed else 1
    if args.id in scenarios:
        spec = get_scenario(args.id)
        store = _open_store(args)
        telemetry.set_manifest(kind="scenario")
        if store is not None:
            telemetry.set_manifest(
                store_backend=store.backend.kind, store_root=str(store.root)
            )
        if args.shard is not None:
            return _run_scenario_shard(args, spec, store)
        stopping = None
        if args.adaptive:
            stopping = ConfidenceStop(metric=args.metric, tolerance=args.tolerance)
        result = run_scenario(
            spec,
            master_seed=0 if args.seed is None else args.seed,
            n_trials=args.trials,
            n_workers=args.workers,
            stopping=stopping,
            store=store,
            use_cache=not args.no_cache,
        )
        print(f"scenario: {spec.scenario_id} [{spec.spec_hash()[:12]}]")
        print(result.summary())
        _print_nan_warning(result)
        if isinstance(result, ScheduledCampaignResult):
            print(
                f"scheduler: {result.stop_reason} (early stop saved "
                f"{result.trials_saved} of {result.max_trials} budgeted trials)"
            )
        if store is not None:
            _print_store_line(store)
        return 0
    print(
        f"unknown id {args.id!r}; run `python -m repro list` for "
        f"{len(experiments)} experiments and {len(scenarios)} scenarios",
        file=sys.stderr,
    )
    return 2


def _read_trace_reporting(path):
    """Lenient trace read for the inspection commands: a crashed-writer
    truncated tail is dropped with a stderr warning instead of failing
    the whole file (strict reading stays the default everywhere a trace
    is consumed programmatically)."""
    manifest, records, warnings = telemetry.read_trace_lenient(path)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    return manifest, records


def _cmd_trace(args) -> int:
    from .telemetry.report import compare_traces, summarize_trace

    if args.trace_command == "summarize":
        manifest, records = _read_trace_reporting(args.path)
        print(f"trace: {args.path} ({1 + len(records)} records)")
        print(summarize_trace(manifest, records))
        return 0
    if args.trace_command == "export":
        return _cmd_trace_export(args)
    if args.trace_command == "critical-path":
        from .perf.analytics import critical_path, render_critical_path

        _, records = _read_trace_reporting(args.path)
        print(f"trace: {args.path}")
        print(render_critical_path(critical_path(records)))
        return 0
    trace_a = _read_trace_reporting(args.a)
    trace_b = _read_trace_reporting(args.b)
    print(compare_traces(trace_a, trace_b, label_a=args.a, label_b=args.b))
    return 0


def _cmd_trace_export(args) -> int:
    import json

    from .perf.analytics import chrome_trace

    manifest, records = _read_trace_reporting(args.path)
    converted = chrome_trace(manifest, records)
    out = args.out
    if out is None:
        base = args.path[: -len(".jsonl")] if args.path.endswith(".jsonl") else args.path
        out = f"{base}.chrome.json"
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(converted, fh, sort_keys=True)
        fh.write("\n")
    print(
        f"export: {len(converted['traceEvents'])} trace events -> {out} "
        f"(open in Perfetto, chrome://tracing, or speedscope)"
    )
    return 0


def _cmd_bench(args) -> int:
    if args.bench_command == "run":
        return _cmd_bench_run(args)
    if args.bench_command == "history":
        return _cmd_bench_history(args)
    return _cmd_bench_check(args)


def _cmd_bench_run(args) -> int:
    from .perf import append_record, bench_filename, run_suite, write_bench_record

    if args.repeats < 1:
        print("--repeats must be >= 1", file=sys.stderr)
        return 2
    record = run_suite(args.suite, repeats=args.repeats, label=args.label)
    out = args.out or bench_filename(record["label"])
    write_bench_record(out, record)
    width = max(len(result["id"]) for result in record["results"])
    print(f"bench suite {args.suite!r} (median of {args.repeats}):")
    for result in record["results"]:
        throughput = result["metrics"].get("trials_per_s")
        suffix = f"  {throughput:>8.1f} trials/s" if throughput else ""
        print(
            f"  {result['id']:<{width}}  median {result['median_s']:>9.4f} s"
            f"  min {result['min_s']:>9.4f} s{suffix}"
        )
    print(f"bench: {len(record['results'])} workloads -> {out}")
    if args.history is not None:
        path, appended = append_record(args.history, record)
        verb = "appended to" if appended else "already present in"
        print(f"history: {verb} {path}")
    return 0


def _cmd_bench_history(args) -> int:
    from .perf import append_record, list_records, read_bench_record
    from .perf.history import render_history

    if args.add is not None:
        record = read_bench_record(args.add)
        path, appended = append_record(args.dir, record)
        verb = "appended" if appended else "already present:"
        print(f"history: {verb} {path.name}")
    print(render_history(list_records(args.dir)))
    return 0


def _cmd_bench_check(args) -> int:
    from .perf import compare_records, read_bench_record
    from .perf.regression import DEFAULT_NOISE_MULT, DEFAULT_REL_TOL

    baseline = read_bench_record(args.baseline)
    current = read_bench_record(args.current)
    comparison = compare_records(
        baseline,
        current,
        rel_tol=DEFAULT_REL_TOL if args.rel_tol is None else args.rel_tol,
        noise_mult=DEFAULT_NOISE_MULT if args.noise_mult is None else args.noise_mult,
    )
    print(comparison.render())
    return comparison.exit_code


def _run_scenario_shard(args, spec, store: Optional[ResultStore]) -> int:
    if args.adaptive:
        print(
            "--shard cannot combine with --adaptive: the stopping rule "
            "needs the global record prefix no shard can see",
            file=sys.stderr,
        )
        return 2
    if store is None:
        print(
            "--shard requires a result store (the cross-host exchange "
            "point); drop --no-store or pass --store DIR",
            file=sys.stderr,
        )
        return 2
    try:
        shard = ShardSpec.parse(args.shard)
    except ValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    master_seed = 0 if args.seed is None else args.seed
    try:
        shard_result, merged = run_scenario_shard(
            spec,
            shard,
            master_seed=master_seed,
            n_trials=args.trials,
            n_workers=args.workers,
            store=store,
            use_cache=not args.no_cache,
        )
    except ValidationError as exc:
        # e.g. more shards than trials: no non-empty contiguous split.
        print(str(exc), file=sys.stderr)
        return 2
    print(f"scenario: {spec.scenario_id} [{spec.spec_hash()[:12]}]")
    print(shard_result.describe())
    print(shard_result.summary())
    _print_nan_warning(shard_result)
    if merged is not None:
        print(
            f"merge: all {shard.n_shards} shards present; canonical "
            f"campaign entry published ({merged.n_trials} trials)"
        )
    else:
        status = scenario_shard_status(
            spec,
            master_seed=master_seed,
            n_trials=args.trials,
            n_shards=shard.n_shards,
            store=store,
        )
        missing = [s.cli_form for s, present in status if not present]
        print(f"merge: waiting on shards {', '.join(missing)}")
    _print_store_line(store)
    return 0


def _cmd_merge(args) -> int:
    scenarios = all_scenarios()
    if args.id not in scenarios:
        hint = (
            " (an experiment id — only scenario campaigns shard)"
            if args.id in all_experiments()
            else ""
        )
        print(f"unknown scenario id {args.id!r}{hint}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    store = _open_store(args)
    if store is None:
        print("merge requires a result store; pass --store DIR", file=sys.stderr)
        return 2
    spec = get_scenario(args.id)
    try:
        merged = merge_scenario_shards(
            spec,
            master_seed=0 if args.seed is None else args.seed,
            n_trials=args.trials,
            n_shards=args.shards,
            store=store,
        )
    except ValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"scenario: {spec.scenario_id} [{spec.spec_hash()[:12]}]")
    print(
        f"merge: {args.shards} shards -> canonical campaign entry published"
    )
    print(merged.summary())
    _print_nan_warning(merged)
    _print_store_line(store)
    return 0


def main(argv=None) -> int:
    import sqlite3

    parser, run_parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "merge":
            return _cmd_merge(args)
        if args.command == "lint":
            from .lint.cli import run_lint

            return run_lint(args)
        if args.command == "store":
            try:
                return _cmd_store(args)
            except OSError as exc:
                # Environmental I/O failures on store maintenance
                # (read-only mount, permission denied, disk full) get a
                # one-line diagnostic.  Scoped to the store group: an
                # OSError elsewhere (e.g. a broken pipe while printing
                # `list`) is not a store error and must not be
                # mislabeled as one.
                print(f"store I/O error: {exc}", file=sys.stderr)
                return 2
        return _cmd_run(args, run_parser)
    except ValidationError as exc:
        # Backstop for usage-level errors raised below argument parsing
        # — e.g. a --store path that exists but is not a store.
        print(str(exc), file=sys.stderr)
        return 2
    except sqlite3.Error as exc:
        # A damaged SQLite store (truncated copy whose magic header
        # survived) fails mid-query, from any command that opens it;
        # sqlite is only ever a store backend, so the label is accurate
        # globally.
        print(f"SQLite store error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
