"""Command-line entry point: ``python -m repro``.

Subcommands
-----------
``list``
    Registered experiment drivers and scenario specs, plus the shard
    status of any in-flight sharded campaigns found in the store.
``run <id>``
    Run one experiment (paper figure / extension claim) or one scenario
    campaign by id.  Scenario runs honor ``--workers``, the result store
    (``--store DIR`` / ``--no-store`` / ``--no-cache``), optional
    adaptive early stopping (``--adaptive``), and cross-host sharding
    (``--shard K/N``).  Experiment runs accept only ``--seed``; passing
    a scenario-only flag with an experiment id is an error.
``merge <id>``
    Merge an N-shard campaign's published shard entries into the
    canonical full-campaign store entry.

Examples::

    python -m repro list
    python -m repro run fig18 --seed 7
    python -m repro run town-multilateration --workers 4 --trials 32
    python -m repro run uniform-multilateration --adaptive --tolerance 0.1
    python -m repro run town-multilateration --shard 2/3
    python -m repro merge town-multilateration --shards 3
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .engine.scheduler import ConfidenceStop, ScheduledCampaignResult
from .engine.sharding import ShardSpec
from .errors import ValidationError
from .experiments import all_experiments, get_experiment
from .scenarios import (
    all_scenarios,
    get_scenario,
    merge_scenario_shards,
    run_scenario,
    run_scenario_shard,
    scenario_run_key,
    scenario_shard_status,
)
from .store import ResultStore, default_store_root

#: Flags only meaningful for scenario campaigns (flag, argparse attr).
#: An experiment run that sets any of them gets a clear usage error
#: instead of a silently ignored flag; defaults are read back from the
#: ``run`` subparser so this table cannot drift from the definitions.
_SCENARIO_ONLY_FLAGS = (
    ("--workers", "workers"),
    ("--trials", "trials"),
    ("--store", "store"),
    ("--no-store", "no_store"),
    ("--no-cache", "no_cache"),
    ("--adaptive", "adaptive"),
    ("--metric", "metric"),
    ("--tolerance", "tolerance"),
    ("--shard", "shard"),
)


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="result store directory (default: $REPRO_STORE_DIR or ~/.cache/repro/store)",
    )
    parser.add_argument(
        "--no-store", action="store_true", help="disable the result store entirely"
    )


def _build_parser():
    """The top-level parser and the ``run`` subparser (returned so flag
    validation can read argparse defaults back instead of copying them)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Kwon et al. (ICDCS 2005) reproduction: experiments, "
        "scenario campaigns, and the content-addressed result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser(
        "list", help="list registered experiments, scenarios, and shard status"
    )
    _add_store_arguments(list_parser)

    run = sub.add_parser("run", help="run an experiment or scenario by id")
    run.add_argument("id", help="experiment id (fig18, ext-sweep, ...) or scenario id")
    run.add_argument("--seed", type=int, default=None, help="master seed")
    run.add_argument(
        "--workers", type=int, default=1, help="worker processes (scenarios only)"
    )
    run.add_argument(
        "--trials", type=int, default=None, help="trial budget override (scenarios only)"
    )
    _add_store_arguments(run)
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="skip cache lookups (recompute and republish)",
    )
    run.add_argument(
        "--adaptive",
        action="store_true",
        help="run the scenario through the early-stopping scheduler",
    )
    run.add_argument(
        "--metric",
        default="mean_error_m",
        help="target metric for --adaptive (default: mean_error_m)",
    )
    run.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        help="CI half-width tolerance for --adaptive (default: 0.1)",
    )
    run.add_argument(
        "--shard",
        default=None,
        metavar="K/N",
        help="run only shard K of an N-way cross-host split (e.g. 2/3); "
        "requires the result store and a fixed trial count",
    )

    merge = sub.add_parser(
        "merge",
        help="merge an N-shard campaign's store entries into the canonical entry",
    )
    merge.add_argument("id", help="scenario id the shards were run under")
    merge.add_argument("--seed", type=int, default=None, help="master seed")
    merge.add_argument(
        "--trials", type=int, default=None, help="trial budget override"
    )
    merge.add_argument(
        "--shards",
        type=int,
        required=True,
        metavar="N",
        help="total shard count of the split being merged",
    )
    _add_store_arguments(merge)
    return parser, run


def _shard_status_lines(store: ResultStore) -> list:
    """Group the store's shard entries into campaigns and render one
    status line per campaign (complete campaigns are not listed — their
    canonical entry has been published and they no longer need merging).

    The code version is part of the grouping key: shards published by a
    different repro version live under keys the current merge path can
    never address, so pooling them with current-version shards would
    misreport completeness.  Stale groups are flagged instead.
    """
    groups = {}
    for meta in store.list_shards():
        shard = meta.get("shard", {})
        context = meta.get("context", {})
        group = (
            str(context.get("scenario_id", "?")),
            str(context.get("spec_hash", ""))[:12],
            str(context.get("code_version", "?")),
            meta.get("master_seed"),
            meta.get("campaign_trials"),
            shard.get("n_shards"),
        )
        groups.setdefault(group, set()).add(shard.get("index"))
    lines = []
    for (scenario_id, spec_hash, code_version, seed, trials, n_shards), present in sorted(
        groups.items(), key=lambda item: item[0]
    ):
        if n_shards is None:
            continue
        missing = sorted(set(range(n_shards)) - present)
        if not missing:
            # All shards present — hidden only once the canonical merged
            # entry actually exists.  A crash between the last shard's
            # publish and the auto-merge, or shard entries copied in from
            # per-host stores, leaves the campaign complete but unmerged
            # — exactly the case the `merge` command recovers.
            if code_version != store.code_version:
                continue  # stale keys the current merge path cannot address
            try:
                spec = get_scenario(scenario_id)
            except KeyError:
                continue
            if spec.spec_hash()[:12] != spec_hash or seed is None or trials is None:
                continue
            canonical = store.key_for(
                scenario_run_key(spec, master_seed=seed, n_trials=trials)
            )
            if store.contains(canonical):
                continue
            lines.append(
                f"  {scenario_id:<28s} [{spec_hash}] seed={seed} trials={trials}: "
                f"all {n_shards} shards present, unmerged (run "
                f"`python -m repro merge {scenario_id} --seed {seed} "
                f"--trials {trials} --shards {n_shards}`)"
            )
            continue
        missing_text = ", ".join(f"{k + 1}/{n_shards}" for k in missing)
        stale = (
            ""
            if code_version == store.code_version
            else f" [stale code version {code_version}]"
        )
        lines.append(
            f"  {scenario_id:<28s} [{spec_hash}] seed={seed} trials={trials}: "
            f"{len(present)}/{n_shards} shards present (missing {missing_text})"
            f"{stale}"
        )
    return lines


def _cmd_list(args) -> int:
    experiments = all_experiments()
    scenarios = all_scenarios()
    print(f"experiments ({len(experiments)}):")
    for experiment_id in sorted(experiments):
        doc = (experiments[experiment_id].__doc__ or "").strip().splitlines()
        print(f"  {experiment_id:<28s} {doc[0] if doc else ''}")
    print(f"\nscenarios ({len(scenarios)}):")
    for scenario_id in sorted(scenarios):
        spec = scenarios[scenario_id]
        print(
            f"  {scenario_id:<28s} {spec.solver.algorithm}, "
            f"{spec.deployment.kind} n={spec.deployment.n_nodes}, "
            f"{spec.ranging.model} ranging, {spec.n_trials} trials "
            f"[{spec.spec_hash()[:12]}]"
        )
    store = _open_store(args)
    if store is not None:
        lines = _shard_status_lines(store)
        if lines:
            print(f"\nincomplete sharded campaigns ({len(lines)}):")
            for line in lines:
                print(line)
            print("  (run the missing shards, or `python -m repro merge <id>`)")
    return 0


def _open_store(args) -> Optional[ResultStore]:
    if args.no_store:
        return None
    if args.store is not None:
        return ResultStore(args.store)
    root = default_store_root()
    return None if root is None else ResultStore(root)


def _cmd_run(args, run_parser) -> int:
    experiments = all_experiments()
    scenarios = all_scenarios()
    if args.id in experiments:
        from .experiments import DEFAULT_SEED

        offending = [
            flag
            for flag, attr in _SCENARIO_ONLY_FLAGS
            if getattr(args, attr) != run_parser.get_default(attr)
        ]
        if offending:
            print(
                f"{args.id!r} is an experiment id; {', '.join(offending)} "
                f"only appl{'ies' if len(offending) == 1 else 'y'} to scenario "
                f"campaigns (experiments accept --seed alone)",
                file=sys.stderr,
            )
            return 2
        seed = DEFAULT_SEED if args.seed is None else args.seed
        result = get_experiment(args.id)(seed)
        print(result.summary())
        return 0 if result.passed else 1
    if args.id in scenarios:
        spec = get_scenario(args.id)
        store = _open_store(args)
        if args.shard is not None:
            return _run_scenario_shard(args, spec, store)
        stopping = None
        if args.adaptive:
            stopping = ConfidenceStop(metric=args.metric, tolerance=args.tolerance)
        result = run_scenario(
            spec,
            master_seed=0 if args.seed is None else args.seed,
            n_trials=args.trials,
            n_workers=args.workers,
            stopping=stopping,
            store=store,
            use_cache=not args.no_cache,
        )
        print(f"scenario: {spec.scenario_id} [{spec.spec_hash()[:12]}]")
        print(result.summary())
        if isinstance(result, ScheduledCampaignResult):
            print(f"scheduler: {result.stop_reason}")
        if store is not None:
            print(f"store: {store.root} {store.stats.as_dict()}")
        return 0
    print(
        f"unknown id {args.id!r}; run `python -m repro list` for "
        f"{len(experiments)} experiments and {len(scenarios)} scenarios",
        file=sys.stderr,
    )
    return 2


def _run_scenario_shard(args, spec, store: Optional[ResultStore]) -> int:
    if args.adaptive:
        print(
            "--shard cannot combine with --adaptive: the stopping rule "
            "needs the global record prefix no shard can see",
            file=sys.stderr,
        )
        return 2
    if store is None:
        print(
            "--shard requires a result store (the cross-host exchange "
            "point); drop --no-store or pass --store DIR",
            file=sys.stderr,
        )
        return 2
    try:
        shard = ShardSpec.parse(args.shard)
    except ValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    master_seed = 0 if args.seed is None else args.seed
    try:
        shard_result, merged = run_scenario_shard(
            spec,
            shard,
            master_seed=master_seed,
            n_trials=args.trials,
            n_workers=args.workers,
            store=store,
            use_cache=not args.no_cache,
        )
    except ValidationError as exc:
        # e.g. more shards than trials: no non-empty contiguous split.
        print(str(exc), file=sys.stderr)
        return 2
    print(f"scenario: {spec.scenario_id} [{spec.spec_hash()[:12]}]")
    print(shard_result.describe())
    print(shard_result.summary())
    if merged is not None:
        print(
            f"merge: all {shard.n_shards} shards present; canonical "
            f"campaign entry published ({merged.n_trials} trials)"
        )
    else:
        status = scenario_shard_status(
            spec,
            master_seed=master_seed,
            n_trials=args.trials,
            n_shards=shard.n_shards,
            store=store,
        )
        missing = [s.cli_form for s, present in status if not present]
        print(f"merge: waiting on shards {', '.join(missing)}")
    print(f"store: {store.root} {store.stats.as_dict()}")
    return 0


def _cmd_merge(args) -> int:
    scenarios = all_scenarios()
    if args.id not in scenarios:
        hint = (
            " (an experiment id — only scenario campaigns shard)"
            if args.id in all_experiments()
            else ""
        )
        print(f"unknown scenario id {args.id!r}{hint}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    store = _open_store(args)
    if store is None:
        print("merge requires a result store; pass --store DIR", file=sys.stderr)
        return 2
    spec = get_scenario(args.id)
    try:
        merged = merge_scenario_shards(
            spec,
            master_seed=0 if args.seed is None else args.seed,
            n_trials=args.trials,
            n_shards=args.shards,
            store=store,
        )
    except ValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"scenario: {spec.scenario_id} [{spec.spec_hash()[:12]}]")
    print(
        f"merge: {args.shards} shards -> canonical campaign entry published"
    )
    print(merged.summary())
    print(f"store: {store.root} {store.stats.as_dict()}")
    return 0


def main(argv=None) -> int:
    parser, run_parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "merge":
        return _cmd_merge(args)
    return _cmd_run(args, run_parser)


if __name__ == "__main__":
    sys.exit(main())
