"""Command-line entry point: ``python -m repro``.

Subcommands
-----------
``list``
    Registered experiment drivers and scenario specs.
``run <id>``
    Run one experiment (paper figure / extension claim) or one scenario
    campaign by id.  Scenario runs honor ``--workers``, the result store
    (``--store DIR`` / ``--no-store`` / ``--no-cache``), and optional
    adaptive early stopping (``--adaptive``).

Examples::

    python -m repro list
    python -m repro run fig18 --seed 7
    python -m repro run town-multilateration --workers 4 --trials 32
    python -m repro run uniform-multilateration --adaptive --tolerance 0.1
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .engine.scheduler import ConfidenceStop, ScheduledCampaignResult
from .experiments import all_experiments, get_experiment
from .scenarios import all_scenarios, get_scenario, run_scenario
from .store import ResultStore, default_store_root


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Kwon et al. (ICDCS 2005) reproduction: experiments, "
        "scenario campaigns, and the content-addressed result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments and scenarios")

    run = sub.add_parser("run", help="run an experiment or scenario by id")
    run.add_argument("id", help="experiment id (fig18, ext-sweep, ...) or scenario id")
    run.add_argument("--seed", type=int, default=None, help="master seed")
    run.add_argument(
        "--workers", type=int, default=1, help="worker processes (scenarios only)"
    )
    run.add_argument(
        "--trials", type=int, default=None, help="trial budget override (scenarios only)"
    )
    run.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="result store directory (default: $REPRO_STORE_DIR or ~/.cache/repro/store)",
    )
    run.add_argument(
        "--no-store", action="store_true", help="disable the result store entirely"
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="skip cache lookups (recompute and republish)",
    )
    run.add_argument(
        "--adaptive",
        action="store_true",
        help="run the scenario through the early-stopping scheduler",
    )
    run.add_argument(
        "--metric",
        default="mean_error_m",
        help="target metric for --adaptive (default: mean_error_m)",
    )
    run.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        help="CI half-width tolerance for --adaptive (default: 0.1)",
    )
    return parser


def _cmd_list() -> int:
    experiments = all_experiments()
    scenarios = all_scenarios()
    print(f"experiments ({len(experiments)}):")
    for experiment_id in sorted(experiments):
        doc = (experiments[experiment_id].__doc__ or "").strip().splitlines()
        print(f"  {experiment_id:<28s} {doc[0] if doc else ''}")
    print(f"\nscenarios ({len(scenarios)}):")
    for scenario_id in sorted(scenarios):
        spec = scenarios[scenario_id]
        print(
            f"  {scenario_id:<28s} {spec.solver.algorithm}, "
            f"{spec.deployment.kind} n={spec.deployment.n_nodes}, "
            f"{spec.ranging.model} ranging, {spec.n_trials} trials "
            f"[{spec.spec_hash()[:12]}]"
        )
    return 0


def _open_store(args) -> Optional[ResultStore]:
    if args.no_store:
        return None
    if args.store is not None:
        return ResultStore(args.store)
    root = default_store_root()
    return None if root is None else ResultStore(root)


def _cmd_run(args) -> int:
    experiments = all_experiments()
    scenarios = all_scenarios()
    if args.id in experiments:
        from .experiments import DEFAULT_SEED

        seed = DEFAULT_SEED if args.seed is None else args.seed
        result = get_experiment(args.id)(seed)
        print(result.summary())
        return 0 if result.passed else 1
    if args.id in scenarios:
        spec = get_scenario(args.id)
        store = _open_store(args)
        stopping = None
        if args.adaptive:
            stopping = ConfidenceStop(metric=args.metric, tolerance=args.tolerance)
        result = run_scenario(
            spec,
            master_seed=0 if args.seed is None else args.seed,
            n_trials=args.trials,
            n_workers=args.workers,
            stopping=stopping,
            store=store,
            use_cache=not args.no_cache,
        )
        print(f"scenario: {spec.scenario_id} [{spec.spec_hash()[:12]}]")
        print(result.summary())
        if isinstance(result, ScheduledCampaignResult):
            print(f"scheduler: {result.stop_reason}")
        if store is not None:
            print(f"store: {store.root} {store.stats.as_dict()}")
        return 0
    print(
        f"unknown id {args.id!r}; run `python -m repro list` for "
        f"{len(experiments)} experiments and {len(scenarios)} scenarios",
        file=sys.stderr,
    )
    return 2


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
