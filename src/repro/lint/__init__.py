"""``repro.lint`` — static enforcement of the repo's invariants.

The runtime test suites prove the nine determinism guarantees hold for
the code as it is; this package rejects code that *couldn't* uphold
them, at CI time, before a golden pin or spec hash ever moves.  Rules
are small AST visitors registered by ``RPLxxx`` code (``rules.RULES``),
findings carry file/line locations, and the two escape hatches —
inline ``# repro-lint: disable=RPLxxx`` comments and the scoped
allowlist — both leave a written justification.  See
``docs/linting.md`` for the rule catalog.
"""

from .config import (
    DEFAULT_ALLOWLIST,
    DEFAULT_CONFIG,
    AllowEntry,
    LintConfig,
    scope_matches,
    suppressions_for,
)
from .diagnostics import LINT_SCHEMA_VERSION, Finding, LintReport
from .rules import RULES, LintRule, RawFinding
from .runner import lint_paths, lint_source

__all__ = [
    "AllowEntry",
    "DEFAULT_ALLOWLIST",
    "DEFAULT_CONFIG",
    "Finding",
    "LINT_SCHEMA_VERSION",
    "LintConfig",
    "LintReport",
    "LintRule",
    "RULES",
    "RawFinding",
    "lint_paths",
    "lint_source",
    "scope_matches",
    "suppressions_for",
]
