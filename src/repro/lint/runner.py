"""Run the rule set over sources and fold in suppressions/allowlist.

:func:`lint_source` checks one in-memory module (the unit the fixture
tests drive); :func:`lint_paths` walks real files and directories in
sorted order — the linter is itself held to the determinism bar it
enforces, so two runs over the same tree produce byte-identical
reports.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import ValidationError
from .config import DEFAULT_CONFIG, LintConfig, suppressions_for
from .diagnostics import Finding, LintReport
from .rules import RULES

__all__ = ["lint_source", "lint_paths"]


def _check_one(
    source: str, relpath: str, config: LintConfig
) -> Tuple[List[Finding], List[Finding], List[Finding]]:
    """(findings, suppressed, allowed) for one module's source."""
    import ast

    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        raise ValidationError(
            f"cannot lint {relpath}: {exc.msg} (line {exc.lineno})"
        ) from exc
    suppressions = suppressions_for(source)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    allowed: List[Finding] = []
    for code in sorted(RULES):
        rule = RULES[code]
        if not rule.applies_to(relpath):
            continue
        for raw in rule.check(tree, source, relpath):
            finding = Finding(
                path=relpath,
                line=raw.line,
                col=raw.col,
                code=code,
                message=raw.message,
            )
            if code in suppressions.get(raw.line, ()):
                suppressed.append(finding)
                continue
            entry = config.allow_entry_for(code, relpath)
            if entry is not None:
                allowed.append(
                    Finding(
                        path=relpath,
                        line=raw.line,
                        col=raw.col,
                        code=code,
                        message=raw.message,
                        justification=entry.justification,
                    )
                )
                continue
            findings.append(finding)
    return findings, suppressed, allowed


def lint_source(
    source: str,
    relpath: str = "<string>",
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint one module given as a string; *relpath* decides rule scope."""
    config = DEFAULT_CONFIG if config is None else config
    findings, suppressed, allowed = _check_one(source, relpath, config)
    return LintReport(
        findings=tuple(sorted(findings)),
        suppressed=tuple(sorted(suppressed)),
        allowed=tuple(sorted(allowed)),
        files_scanned=1,
    )


def _iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    yield candidate
        elif path.suffix == ".py":
            yield path
        else:
            raise ValidationError(f"not a Python file or directory: {path}")


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint files/directories; *root* anchors the relative paths in
    findings (defaults to the first path's directory, or the path
    itself for directories)."""
    config = DEFAULT_CONFIG if config is None else config
    resolved = [Path(p).resolve() for p in paths]
    for path in resolved:
        if not path.exists():
            raise ValidationError(f"no such file or directory: {path}")
    if root is None:
        root = resolved[0] if resolved[0].is_dir() else resolved[0].parent
    root = Path(root).resolve()

    findings: List[Finding] = []
    suppressed: List[Finding] = []
    allowed: List[Finding] = []
    files_scanned = 0
    for file_path in _iter_python_files(resolved):
        try:
            relpath = file_path.relative_to(root).as_posix()
        except ValueError:
            relpath = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        got, sup, alw = _check_one(source, relpath, config)
        findings.extend(got)
        suppressed.extend(sup)
        allowed.extend(alw)
        files_scanned += 1
    return LintReport(
        findings=tuple(sorted(findings)),
        suppressed=tuple(sorted(suppressed)),
        allowed=tuple(sorted(allowed)),
        files_scanned=files_scanned,
    )
