"""``python -m repro lint`` — the CLI face of the invariant linter.

Exit codes: 0 clean, 1 findings, 2 usage/parse errors (the standard
``ValidationError`` path in ``repro.__main__``).
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from .config import DEFAULT_CONFIG
from .diagnostics import LintReport
from .rules import RULES
from .runner import lint_paths

__all__ = ["run_lint", "default_lint_root"]


def default_lint_root() -> Path:
    """The installed ``repro`` package directory — what ``repro lint``
    checks when no paths are given."""
    return Path(__file__).resolve().parents[1]


def _print_rules() -> None:
    for code in sorted(RULES):
        rule = RULES[code]
        print(f"{code}  {rule.name}")
        print(f"        {rule.summary}")


def run_lint(args) -> int:
    if getattr(args, "list_rules", False):
        _print_rules()
        return 0
    paths: List[Path] = [Path(p) for p in args.paths] or [default_lint_root()]
    root = default_lint_root() if not args.paths else None
    report: LintReport = lint_paths(paths, root=root, config=DEFAULT_CONFIG)
    if getattr(args, "json", False):
        print(report.to_json())
    else:
        for finding in report.findings:
            print(finding.render())
        for finding in report.allowed:
            print(f"{finding.render()} [allowlisted: {finding.justification}]")
        print(report.summary())
    return 0 if report.clean else 1
