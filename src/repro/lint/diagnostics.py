"""Findings, reports, and their text/JSON renderings.

A :class:`Finding` is one rule violation at one source location; a
:class:`LintReport` is the outcome of one lint pass — the findings that
survived, plus the ones discharged by inline suppressions or allowlist
entries (kept visible so "clean" never silently means "ignored").

The JSON rendering is versioned (:data:`LINT_SCHEMA_VERSION`) and
round-trips through :meth:`LintReport.from_json`, so CI gates and
editor integrations can consume ``python -m repro lint --json`` without
parsing the human-readable text.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = ["LINT_SCHEMA_VERSION", "Finding", "LintReport"]

#: Bump when the ``--json`` output shape changes.
LINT_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the posix-style path relative to the lint root (the
    package directory for the default invocation), so findings are
    stable across machines and checkouts.  ``justification`` is set
    only on allowlisted findings — it carries the allowlist entry's
    declared reason.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    justification: Optional[str] = None

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
        if self.justification is not None:
            out["justification"] = self.justification
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            code=str(data["code"]),
            message=str(data["message"]),
            justification=data.get("justification"),
        )


@dataclass(frozen=True)
class LintReport:
    """What one lint pass found (and what it deliberately let pass)."""

    findings: Tuple[Finding, ...]
    suppressed: Tuple[Finding, ...]
    allowed: Tuple[Finding, ...]
    files_scanned: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        return (
            f"repro-lint: {len(self.findings)} finding(s) in "
            f"{self.files_scanned} file(s) "
            f"({len(self.suppressed)} suppressed, {len(self.allowed)} allowlisted)"
        )

    def to_json(self) -> str:
        payload = {
            "schema": LINT_SCHEMA_VERSION,
            "files_scanned": self.files_scanned,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "allowed": [f.as_dict() for f in self.allowed],
            "counts": {
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "allowed": len(self.allowed),
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LintReport":
        data = json.loads(text)
        schema = data.get("schema")
        if schema != LINT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported lint report schema {schema!r} "
                f"(this reader understands {LINT_SCHEMA_VERSION})"
            )
        return cls(
            findings=tuple(Finding.from_dict(d) for d in data["findings"]),
            suppressed=tuple(Finding.from_dict(d) for d in data["suppressed"]),
            allowed=tuple(Finding.from_dict(d) for d in data["allowed"]),
            files_scanned=int(data["files_scanned"]),
        )
