"""The RPL rule set: one visitor per repo invariant.

Every rule targets a *load-bearing* guarantee from
``docs/architecture.md`` — these are not style checks.  A rule is a
small class registered in :data:`RULES` under its ``RPLxxx`` code with
a path scope (:meth:`LintRule.applies_to`) and a ``check`` that walks
one parsed module and yields raw findings.  The runner layers inline
suppressions and the scoped allowlist on top
(:mod:`repro.lint.runner`), so rules themselves stay absolute.

Rules reason about source *syntax*, not runtime values, so each states
its heuristic precisely; ``docs/linting.md`` is the user-facing
catalog.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set

__all__ = ["RawFinding", "LintRule", "RULES", "register"]


@dataclass(frozen=True)
class RawFinding:
    """A violation before path/suppression/allowlist handling."""

    line: int
    col: int
    message: str


class LintRule:
    """Base class: code, human name, one-line summary, scope, check."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def applies_to(self, relpath: str) -> bool:  # pragma: no cover - trivial
        return True

    def check(
        self, tree: ast.Module, source: str, relpath: str
    ) -> List[RawFinding]:
        raise NotImplementedError


RULES: Dict[str, LintRule] = {}


def register(cls):
    """Class decorator adding one rule instance to the registry."""
    instance = cls()
    if not instance.code or instance.code in RULES:
        raise ValueError(f"rule code {instance.code!r} missing or duplicated")
    RULES[instance.code] = instance
    return cls


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted path, from the module's imports.

    ``import numpy as np`` binds ``np -> numpy``; ``from numpy import
    random as npr`` binds ``npr -> numpy.random``; ``from time import
    time`` binds ``time -> time.time``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                canonical = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[bound] = canonical
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                bound = alias.asname or alias.name
                aliases[bound] = f"{node.module}.{alias.name}"
    return aliases


def _canonical_dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """The canonical dotted path of a Name/Attribute chain, resolving
    the root through the module's import aliases."""
    dotted = _dotted_name(node)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    canonical_root = aliases.get(root)
    if canonical_root is None:
        return dotted
    return f"{canonical_root}.{rest}" if rest else canonical_root


def _path_has_dir(relpath: str, directory: str) -> bool:
    return directory in PurePosixPath(relpath).parts[:-1]


def _filename(relpath: str) -> str:
    return PurePosixPath(relpath).name


def _subscript_root(node: ast.AST) -> Optional[str]:
    """The root Name of a ``a[i][j]``/``a.b[i]`` chain."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


# ---------------------------------------------------------------------------
# RPL001 — no global-RNG APIs
# ---------------------------------------------------------------------------

#: The seedable/threadable surface of ``numpy.random`` that determinism
#: guarantee #1 is built on; everything else on the module (legacy
#: module-level draw functions, ``seed``, ``RandomState``) is hidden
#: process-global state.
_NP_RANDOM_ALLOWED = {
    "Generator",
    "SeedSequence",
    "default_rng",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


@register
class GlobalRNGRule(LintRule):
    """Guarantee #1: a trial's randomness comes only from its threaded
    per-trial generator.  Any ``numpy.random`` module-level function
    (``np.random.seed``, ``np.random.normal``, ...) or use of the
    stdlib ``random`` module draws from process-global state that no
    seed thread controls."""

    code = "RPL001"
    name = "no-global-rng"
    summary = (
        "no np.random module functions / stdlib random — thread a "
        "seeded Generator/SeedSequence instead"
    )

    def check(self, tree, source, relpath):
        aliases = _import_aliases(tree)
        findings: List[RawFinding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(
                            RawFinding(
                                node.lineno,
                                node.col_offset,
                                "stdlib `random` is process-global state; use the "
                                "trial's numpy Generator",
                            )
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    findings.append(
                        RawFinding(
                            node.lineno,
                            node.col_offset,
                            "stdlib `random` is process-global state; use the "
                            "trial's numpy Generator",
                        )
                    )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _NP_RANDOM_ALLOWED:
                            findings.append(
                                RawFinding(
                                    node.lineno,
                                    node.col_offset,
                                    f"numpy.random.{alias.name} is a global-RNG "
                                    "API; thread a Generator/SeedSequence",
                                )
                            )
            elif isinstance(node, ast.Attribute):
                dotted = _canonical_dotted(node, aliases)
                if (
                    dotted
                    and dotted.startswith("numpy.random.")
                    and dotted.count(".") == 2
                ):
                    attr = dotted.rsplit(".", 1)[1]
                    if attr not in _NP_RANDOM_ALLOWED:
                        findings.append(
                            RawFinding(
                                node.lineno,
                                node.col_offset,
                                f"np.random.{attr} draws from the hidden global "
                                "RNG; thread a Generator/SeedSequence",
                            )
                        )
        return findings


# ---------------------------------------------------------------------------
# RPL002 — Array-API kernel purity
# ---------------------------------------------------------------------------


class _XpTaintVisitor:
    """Function-local taint: names bound to arrays produced by the
    ``xp``/``backend`` namespace.  Mutating such a name in place breaks
    the portable-kernel contract (immutable-array namespaces like JAX,
    guarantee #9)."""

    #: Backend attributes whose result is a *host* numpy array again.
    _HOST_TRANSFER = {"to_host"}

    def __init__(self) -> None:
        self.findings: List[RawFinding] = []

    def run(self, body: Sequence[ast.stmt]) -> None:
        self._block(body, set())

    # -- taint of an expression ----------------------------------------

    def _tainted(self, node: ast.AST, tainted: Set[str]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                root = _subscript_root(func)
                if root in ("xp",) or root in tainted:
                    return True
                if root == "backend" and func.attr not in self._HOST_TRANSFER:
                    return True
            return any(self._tainted(arg, tainted) for arg in node.args)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "backend":
                return True  # e.g. `xp = backend.xp`
            return self._tainted(node.value, tainted)
        if isinstance(node, ast.BinOp):
            return self._tainted(node.left, tainted) or self._tainted(
                node.right, tainted
            )
        if isinstance(node, ast.UnaryOp):
            return self._tainted(node.operand, tainted)
        if isinstance(node, (ast.Compare,)):
            return self._tainted(node.left, tainted) or any(
                self._tainted(c, tainted) for c in node.comparators
            )
        if isinstance(node, ast.BoolOp):
            return any(self._tainted(v, tainted) for v in node.values)
        if isinstance(node, ast.IfExp):
            return self._tainted(node.body, tainted) or self._tainted(
                node.orelse, tainted
            )
        if isinstance(node, ast.Subscript):
            return self._tainted(node.value, tainted)
        if isinstance(node, ast.Starred):
            return self._tainted(node.value, tainted)
        # Container literals (dict/list/tuple/set) do NOT propagate:
        # staging a tainted array inside a dict is host bookkeeping.
        return False

    # -- statement walk ------------------------------------------------

    def _taint_targets(self, target: ast.AST, tainted: Set[str]) -> None:
        if isinstance(target, ast.Name):
            tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._taint_targets(element, tainted)

    def _block(self, body: Sequence[ast.stmt], tainted: Set[str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Subscript):
                        root = _subscript_root(target)
                        if root is not None and root in tainted:
                            self.findings.append(
                                RawFinding(
                                    stmt.lineno,
                                    stmt.col_offset,
                                    f"in-place subscript assignment to Array-API "
                                    f"array {root!r}; use xp.where(...) selection",
                                )
                            )
                if self._tainted(stmt.value, tainted):
                    for target in stmt.targets:
                        self._taint_targets(target, tainted)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if self._tainted(stmt.value, tainted):
                    self._taint_targets(stmt.target, tainted)
            elif isinstance(stmt, ast.AugAssign):
                target = stmt.target
                root = (
                    target.id
                    if isinstance(target, ast.Name)
                    else _subscript_root(target)
                )
                if root is not None and root in tainted:
                    self.findings.append(
                        RawFinding(
                            stmt.lineno,
                            stmt.col_offset,
                            f"augmented assignment mutates Array-API array "
                            f"{root!r} in place; rebind via xp ops instead",
                        )
                    )
            elif isinstance(stmt, ast.For):
                if self._tainted(stmt.iter, tainted):
                    self._taint_targets(stmt.target, tainted)
                self._block(stmt.body, tainted)
                self._block(stmt.orelse, tainted)
            elif isinstance(stmt, ast.While):
                self._block(stmt.body, tainted)
                self._block(stmt.orelse, tainted)
            elif isinstance(stmt, ast.If):
                self._block(stmt.body, tainted)
                self._block(stmt.orelse, tainted)
            elif isinstance(stmt, ast.With):
                self._block(stmt.body, tainted)
            elif isinstance(stmt, ast.Try):
                self._block(stmt.body, tainted)
                for handler in stmt.handlers:
                    self._block(handler.body, tainted)
                self._block(stmt.orelse, tainted)
                self._block(stmt.finalbody, tainted)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._block(stmt.body, set(tainted))


@register
class XpKernelPurityRule(LintRule):
    """Guarantee #9: the portable kernels in ``engine/xp_kernels.py``
    stay on the Array-API standard surface — no direct numpy imports
    (host staging excepted via an inline suppression that says so) and
    no in-place mutation of arrays produced by the ``xp`` namespace."""

    code = "RPL002"
    name = "xp-kernel-purity"
    summary = (
        "xp_kernels.py: no direct numpy import, no in-place mutation "
        "of xp-namespace arrays"
    )

    def applies_to(self, relpath: str) -> bool:
        return _filename(relpath) == "xp_kernels.py"

    def check(self, tree, source, relpath):
        findings: List[RawFinding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        findings.append(
                            RawFinding(
                                node.lineno,
                                node.col_offset,
                                "Array-API kernels must not import numpy "
                                "directly; compute through the xp namespace",
                            )
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module and (
                    node.module == "numpy" or node.module.startswith("numpy.")
                ):
                    findings.append(
                        RawFinding(
                            node.lineno,
                            node.col_offset,
                            "Array-API kernels must not import numpy "
                            "directly; compute through the xp namespace",
                        )
                    )
        visitor = _XpTaintVisitor()
        visitor.run(tree.body)
        findings.extend(visitor.findings)
        return findings


# ---------------------------------------------------------------------------
# RPL003 — no wall-clock / host-entropy calls
# ---------------------------------------------------------------------------

_ENTROPY_CALLS = {
    "time.time": "wall-clock stamp",
    "time.time_ns": "wall-clock stamp",
    "datetime.datetime.now": "wall-clock stamp",
    "datetime.datetime.utcnow": "wall-clock stamp",
    "datetime.datetime.today": "wall-clock stamp",
    "datetime.date.today": "wall-clock stamp",
    "uuid.uuid1": "host entropy",
    "uuid.uuid3": "host entropy",
    "uuid.uuid4": "host entropy",
    "uuid.uuid5": "host entropy",
    "os.urandom": "host entropy",
    "secrets.token_bytes": "host entropy",
    "secrets.token_hex": "host entropy",
    "secrets.token_urlsafe": "host entropy",
    "secrets.randbits": "host entropy",
    "secrets.choice": "host entropy",
}


@register
class WallClockEntropyRule(LintRule):
    """Guarantees #1/#3: results are pure functions of (spec, seed), so
    nothing that feeds them may read the wall clock or host entropy.
    ``time.perf_counter``/``process_time`` stay legal — durations
    measure, they never address.  The declared exceptions (store access
    stamps, staging-file names, the trace manifest timestamp) live in
    the allowlist with their justifications."""

    code = "RPL003"
    name = "no-wall-clock-entropy"
    summary = (
        "no time.time / datetime.now / uuid / os.urandom outside "
        "allowlisted store/telemetry scopes"
    )

    def check(self, tree, source, relpath):
        aliases = _import_aliases(tree)
        findings: List[RawFinding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _canonical_dotted(node.func, aliases)
            if dotted in _ENTROPY_CALLS:
                findings.append(
                    RawFinding(
                        node.lineno,
                        node.col_offset,
                        f"{dotted}() is a {_ENTROPY_CALLS[dotted]}: results "
                        "must be pure functions of (spec, seed)",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# RPL004 — filesystem iteration must be sorted in store/
# ---------------------------------------------------------------------------

_FS_ITER_ATTRS = {"iterdir", "glob", "rglob"}
_FS_ITER_CALLS = {"os.listdir", "os.scandir"}


@register
class UnsortedFsIterationRule(LintRule):
    """Guarantees #6/#7: everything the store derives from directory
    listings (entry enumeration for sync/GC/merge probes, key
    iteration) must be order-deterministic, and directory iteration
    order is filesystem-dependent.  Every ``iterdir``/``glob``/
    ``listdir`` result in ``store/`` must pass through ``sorted(...)``
    at the call site."""

    code = "RPL004"
    name = "sorted-fs-iteration"
    summary = "store/: iterdir/glob/listdir results must be wrapped in sorted(...)"

    def applies_to(self, relpath: str) -> bool:
        return _path_has_dir(relpath, "store")

    def check(self, tree, source, relpath):
        sorted_wrapped: Set[int] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sorted"
                and node.args
            ):
                sorted_wrapped.add(id(node.args[0]))
        aliases = _import_aliases(tree)
        findings: List[RawFinding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or id(node) in sorted_wrapped:
                continue
            name = None
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _FS_ITER_ATTRS
            ):
                name = node.func.attr
            else:
                dotted = _canonical_dotted(node.func, aliases)
                if dotted in _FS_ITER_CALLS:
                    name = dotted
            if name is not None:
                findings.append(
                    RawFinding(
                        node.lineno,
                        node.col_offset,
                        f"{name}() iteration order is filesystem-dependent; "
                        "wrap the call in sorted(...)",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# RPL005 — pool-dispatched callables must be module-level
# ---------------------------------------------------------------------------

_POOL_METHODS = {"map", "imap", "imap_unordered", "starmap", "apply_async", "submit"}
_DISPATCH_FUNCTIONS = {"run_monte_carlo", "run_adaptive"}


@register
class PicklablePoolCallableRule(LintRule):
    """Guarantee #2 rests on trials fanning out over multiprocessing
    workers, and ``spawn``-method pools pickle the dispatched callable:
    a lambda or nested closure works under ``fork`` on the developer's
    Linux box and then dies on any ``spawn`` platform.  Callables
    handed to pool dispatch must be module-level functions."""

    code = "RPL005"
    name = "picklable-pool-callables"
    summary = (
        "callables handed to pool.map/run_monte_carlo must be "
        "module-level, not lambdas/closures"
    )

    @staticmethod
    def _collect_bindings(tree: ast.Module):
        module_level: Set[str] = set()
        nested: Set[str] = set()
        lambda_bound: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module_level.add(stmt.name)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if (
                        isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and child is not node
                    ):
                        nested.add(child.name)
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        lambda_bound.add(target.id)
        return module_level, nested, lambda_bound

    def check(self, tree, source, relpath):
        module_level, nested, lambda_bound = self._collect_bindings(tree)
        findings: List[RawFinding] = []

        def judge(callable_node: ast.AST, site: str) -> None:
            if isinstance(callable_node, ast.Lambda):
                findings.append(
                    RawFinding(
                        callable_node.lineno,
                        callable_node.col_offset,
                        f"lambda handed to {site} cannot pickle under the "
                        "spawn start method; use a module-level function",
                    )
                )
            elif isinstance(callable_node, ast.Name):
                name = callable_node.id
                if name in lambda_bound or (
                    name in nested and name not in module_level
                ):
                    findings.append(
                        RawFinding(
                            callable_node.lineno,
                            callable_node.col_offset,
                            f"{name!r} handed to {site} is a nested/lambda "
                            "binding; pool callables must be module-level",
                        )
                    )

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_METHODS
                and isinstance(node.func.value, ast.Name)
                and "pool" in node.func.value.id.lower()
            ):
                if node.args:
                    judge(node.args[0], f"pool.{node.func.attr}")
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in _DISPATCH_FUNCTIONS
            ):
                target = node.args[0] if node.args else None
                for keyword in node.keywords:
                    if keyword.arg == "trial_fn":
                        target = keyword.value
                if target is not None:
                    judge(target, node.func.id)
        return findings


# ---------------------------------------------------------------------------
# RPL006 — canonical() pops must match the declared exclusion registry
# ---------------------------------------------------------------------------


@register
class HashExclusionRegistryRule(LintRule):
    """Spec hashes are content addresses shared by the store, sharding,
    and every golden pin; which fields ``ScenarioSpec.canonical()``
    strips is therefore a cross-module contract.  The pops must match
    the module's declared ``HASH_EXCLUDED_FIELDS`` registry exactly —
    a popped-but-undeclared field moves every content address silently,
    a declared-but-unpopped field means the registry (and whatever
    reads it) lies."""

    code = "RPL006"
    name = "hash-exclusion-registry"
    summary = (
        "ScenarioSpec.canonical() pops must match the declared "
        "HASH_EXCLUDED_FIELDS registry"
    )

    _REGISTRY_NAME = "HASH_EXCLUDED_FIELDS"

    @staticmethod
    def _subscript_key_path(node: ast.AST) -> Optional[str]:
        """``payload["solver"]["a"]`` -> ``solver.a`` (None if any key
        is non-literal)."""
        keys: List[str] = []
        while isinstance(node, ast.Subscript):
            key = node.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.append(key.value)
                node = node.value
            else:
                return None
        if not isinstance(node, ast.Name):
            return None
        return ".".join(reversed(keys))

    def _declared(self, tree: ast.Module) -> Optional[Dict[str, int]]:
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == self._REGISTRY_NAME
                        and isinstance(stmt.value, (ast.Tuple, ast.List))
                    ):
                        fields: Dict[str, int] = {}
                        for element in stmt.value.elts:
                            if isinstance(element, ast.Constant) and isinstance(
                                element.value, str
                            ):
                                fields[element.value] = element.lineno
                        return fields
        return None

    def check(self, tree, source, relpath):
        spec_class = next(
            (
                node
                for node in tree.body
                if isinstance(node, ast.ClassDef) and node.name == "ScenarioSpec"
            ),
            None,
        )
        if spec_class is None:
            return []
        canonical = next(
            (
                node
                for node in spec_class.body
                if isinstance(node, ast.FunctionDef) and node.name == "canonical"
            ),
            None,
        )
        if canonical is None:
            return []
        findings: List[RawFinding] = []
        declared = self._declared(tree)
        if declared is None:
            return [
                RawFinding(
                    spec_class.lineno,
                    spec_class.col_offset,
                    f"ScenarioSpec.canonical() pops fields but the module "
                    f"declares no {self._REGISTRY_NAME} registry",
                )
            ]
        popped: Dict[str, int] = {}
        for node in ast.walk(canonical):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and node.args
            ):
                arg = node.args[0]
                if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                    findings.append(
                        RawFinding(
                            node.lineno,
                            node.col_offset,
                            "canonical() pops a non-literal field name; "
                            "hash exclusions must be statically checkable",
                        )
                    )
                    continue
                prefix = self._subscript_key_path(node.func.value)
                field = f"{prefix}.{arg.value}" if prefix else arg.value
                popped[field] = node.lineno
        for field, lineno in popped.items():
            if field not in declared:
                findings.append(
                    RawFinding(
                        lineno,
                        0,
                        f"canonical() pops {field!r} but {self._REGISTRY_NAME} "
                        "does not declare it — spec hashes would move silently",
                    )
                )
        for field, lineno in declared.items():
            if field not in popped:
                findings.append(
                    RawFinding(
                        lineno,
                        0,
                        f"{self._REGISTRY_NAME} declares {field!r} but "
                        "canonical() never pops it — the registry lies",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# RPL007 — store writes must be atomic (tmp + rename)
# ---------------------------------------------------------------------------

_WRITE_MODES = {"w", "wb", "wt", "a", "ab", "at", "x", "xb", "xt", "w+", "wb+"}
_STAGING_MARKERS = ("tmp", "temp", "staging", "quarantine")


@register
class AtomicStoreWriteRule(LintRule):
    """The store's crash-safety story (guarantee #3's "bit-identical
    hits" assumes entries are never half-written) is atomic tmp-file +
    ``os.replace`` publication.  A direct write-mode ``open`` /
    ``write_bytes`` / ``write_text`` on a non-staging path in
    ``store/`` can expose a torn entry to concurrent readers."""

    code = "RPL007"
    name = "atomic-store-writes"
    summary = (
        "store/: no direct write-mode open()/write_bytes() on entry "
        "paths — stage to a tmp file and os.replace"
    )

    def applies_to(self, relpath: str) -> bool:
        return _path_has_dir(relpath, "store")

    @staticmethod
    def _mentions_staging(node: ast.AST) -> bool:
        for child in ast.walk(node):
            name = None
            if isinstance(child, ast.Name):
                name = child.id
            elif isinstance(child, ast.Attribute):
                name = child.attr
            elif isinstance(child, ast.Constant) and isinstance(child.value, str):
                name = child.value
            if name and any(marker in name.lower() for marker in _STAGING_MARKERS):
                return True
        return False

    @staticmethod
    def _is_backend_dispatch(node: ast.AST) -> bool:
        """``self.backend.write_bytes(...)`` is the StoreBackend seam —
        its implementations own the tmp+``os.replace`` publication, so
        calling it *is* the atomic path, not a bypass of it."""
        for child in ast.walk(node):
            name = None
            if isinstance(child, ast.Name):
                name = child.id
            elif isinstance(child, ast.Attribute):
                name = child.attr
            if name and "backend" in name.lower():
                return True
        return False

    @classmethod
    def _write_mode(cls, node: ast.Call, mode_position: int) -> bool:
        mode = None
        if len(node.args) > mode_position:
            mode = node.args[mode_position]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if mode is None:
            return False  # open() defaults to read
        return (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and mode.value in _WRITE_MODES
        )

    def check(self, tree, source, relpath):
        aliases = _import_aliases(tree)
        findings: List[RawFinding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            # open(path, "w") / gzip.open(path, "wt")
            dotted = _canonical_dotted(node.func, aliases)
            if dotted in ("open", "gzip.open", "io.open"):
                if (
                    node.args
                    and self._write_mode(node, 1)
                    and not self._mentions_staging(node.args[0])
                ):
                    findings.append(
                        RawFinding(
                            node.lineno,
                            node.col_offset,
                            f"direct write-mode {dotted}() on a store path; "
                            "stage to a .tmp file and os.replace into place",
                        )
                    )
                continue
            # path.write_bytes(...) / path.write_text(...) / path.open("w")
            if isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if (
                    attr in ("write_bytes", "write_text")
                    and not self._mentions_staging(node.func.value)
                    and not self._is_backend_dispatch(node.func.value)
                ):
                    findings.append(
                        RawFinding(
                            node.lineno,
                            node.col_offset,
                            f".{attr}() writes a store path directly; stage "
                            "to a .tmp file and os.replace into place",
                        )
                    )
                elif (
                    attr == "open"
                    and self._write_mode(node, 0)
                    and not self._mentions_staging(node.func.value)
                ):
                    findings.append(
                        RawFinding(
                            node.lineno,
                            node.col_offset,
                            ".open() in write mode on a store path; stage to "
                            "a .tmp file and os.replace into place",
                        )
                    )
        return findings


# ---------------------------------------------------------------------------
# RPL008 — telemetry names in engine hot loops must be precomputed
# ---------------------------------------------------------------------------

_TELEMETRY_METHODS = {"count", "observe", "gauge", "event", "span", "add_span"}


@register
class EagerTelemetryFormatRule(LintRule):
    """The null-recorder contract (guarantee #8's performance face,
    ``benchmarks/test_bench_telemetry.py``): disabled telemetry must
    cost a no-op call, but an f-string/``%``/``.format`` *argument* is
    rendered by the caller before the no-op ever runs — paying string
    formatting per kernel call forever.  Metric names in ``engine/``
    must be constants (or precomputed/cached outside the call)."""

    code = "RPL008"
    name = "no-eager-telemetry-format"
    summary = (
        "engine/: telemetry metric names must be constants, not "
        "f-strings formatted on every call"
    )

    def applies_to(self, relpath: str) -> bool:
        return _path_has_dir(relpath, "engine")

    @staticmethod
    def _eagerly_formatted(node: ast.AST) -> bool:
        if isinstance(node, ast.JoinedStr):
            return any(
                isinstance(part, ast.FormattedValue) for part in node.values
            )
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Mod, ast.Add)):
            return any(
                isinstance(side, ast.JoinedStr)
                or (isinstance(side, ast.Constant) and isinstance(side.value, str))
                for side in (node.left, node.right)
            )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "format"
        ):
            return True
        return False

    def check(self, tree, source, relpath):
        findings: List[RawFinding] = []
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _TELEMETRY_METHODS
                and node.args
            ):
                continue
            name_arg = node.args[0]
            if self._eagerly_formatted(name_arg):
                findings.append(
                    RawFinding(
                        node.lineno,
                        node.col_offset,
                        f"telemetry .{node.func.attr}() name is formatted on "
                        "every call; the disabled-recorder path pays it too — "
                        "precompute the name (e.g. an lru_cache'd table)",
                    )
                )
        return findings
