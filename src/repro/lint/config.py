"""Suppression comments and the scoped allowlist.

Two mechanisms discharge a finding without weakening the rule for
everyone else, and both leave a written trace:

**Inline suppression** — a ``# repro-lint: disable=RPL003`` comment on
the offending line (multiple codes comma-separated).  Scoped to exactly
that line; the surrounding code should say *why* in a neighboring
comment.

**Scoped allowlist** — an :class:`AllowEntry` declaring that one rule
code is expected in one path scope, with a mandatory justification.
This is for structural exceptions (a whole module whose job is the
exception — e.g. wall-clock access stamps in the store backends), where
per-line suppressions would just be noise.  The shipped default
(:data:`DEFAULT_ALLOWLIST`) is the complete set of declared exceptions
for the ``repro`` tree; every entry says what invariant makes the
exception safe.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

__all__ = [
    "AllowEntry",
    "LintConfig",
    "DEFAULT_ALLOWLIST",
    "DEFAULT_CONFIG",
    "suppressions_for",
    "scope_matches",
]

#: ``# repro-lint: disable=RPL001`` or ``disable=RPL001,RPL007``.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)")


def suppressions_for(source: str) -> Dict[int, Set[str]]:
    """Map of 1-based line number -> rule codes suppressed on that line."""
    out: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            out[lineno] = {code.strip() for code in match.group(1).split(",")}
    return out


def scope_matches(scope: str, relpath: str) -> bool:
    """True when *relpath* (posix, relative to the lint root) falls in
    *scope*.

    A scope ending in ``/`` is a directory: it matches any file under a
    directory of that name anywhere in the path (``store/`` matches
    ``store/gc.py`` and ``src/repro/store/gc.py`` alike, so fixtures
    and installed trees resolve the same way).  Any other scope is a
    file path suffix (``telemetry/manifest.py``, or a bare filename).
    """
    rel = "/" + relpath.strip("/")
    if scope.endswith("/"):
        return f"/{scope.strip('/')}/" in rel
    return rel.endswith("/" + scope.strip("/"))


@dataclass(frozen=True)
class AllowEntry:
    """One declared exception: *code* is expected within *scope*."""

    code: str
    scope: str
    justification: str

    def matches(self, code: str, relpath: str) -> bool:
        return code == self.code and scope_matches(self.scope, relpath)


#: The repo's declared exceptions.  Each must say why the rule's
#: invariant still holds; an entry without a defensible justification
#: is a bug, not a convenience.
DEFAULT_ALLOWLIST: Tuple[AllowEntry, ...] = (
    AllowEntry(
        "RPL003",
        "store/backends.py",
        "wall-clock access stamps (LRU eviction metadata) and "
        "pid+uuid staging-file names are operational state that never "
        "reaches payload bytes, so backend-invariance (guarantee #7) "
        "is untouched",
    ),
    AllowEntry(
        "RPL003",
        "store/gc.py",
        "the orphan-sweep grace window defaults to the real clock; "
        "callers and tests inject the documented now= seam, and GC "
        "only deletes cache entries that regenerate byte-identically",
    ),
    AllowEntry(
        "RPL003",
        "telemetry/manifest.py",
        "created_unix is a provenance stamp in the trace manifest, "
        "outside every determinism guarantee (telemetry never feeds "
        "back into results, guarantee #8); tests inject the now= seam",
    ),
)


@dataclass(frozen=True)
class LintConfig:
    """Which declared exceptions apply to this lint pass."""

    allowlist: Tuple[AllowEntry, ...] = field(default=DEFAULT_ALLOWLIST)

    def allow_entry_for(self, code: str, relpath: str) -> Optional[AllowEntry]:
        for entry in self.allowlist:
            if entry.matches(code, relpath):
                return entry
        return None


DEFAULT_CONFIG = LintConfig()
