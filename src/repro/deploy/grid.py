"""Grid deployment generators.

The field experiments (Sections 3.6 and 4.2.2) used a 7x7 *offset grid*
"with 9 m and 10 m grid spacing between the nearest neighbors"
(Figure 5): columns 9 m apart, nodes within a column 9 m apart, odd
columns shifted down by half a step — making the nearest inter-column
neighbor distance sqrt(9^2 + 4.5^2) ~= 10.06 m.  Node coordinates quoted
in the paper ((9, 18), (18, 4.5), (27, 36), ...) confirm this layout.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import check_positive, ensure_rng
from ..errors import ValidationError

__all__ = ["offset_grid", "paper_grid", "square_grid"]


def offset_grid(
    columns: int = 7,
    rows: int = 7,
    *,
    column_spacing_m: float = 9.0,
    row_spacing_m: float = 9.0,
    offset_m: float = 4.5,
) -> np.ndarray:
    """Offset (staggered) grid of ``columns x rows`` positions.

    Column ``c`` sits at ``x = c * column_spacing_m``; its nodes at
    ``y = r * row_spacing_m`` shifted by ``offset_m`` on even columns
    (the paper's grid has a node at (0, 4.5), so column 0 carries the
    offset).  Returns positions ordered column-major, shape
    ``(columns * rows, 2)``.
    """
    if columns < 1 or rows < 1:
        raise ValidationError("columns and rows must be >= 1")
    check_positive(column_spacing_m, "column_spacing_m")
    check_positive(row_spacing_m, "row_spacing_m")
    if offset_m < 0:
        raise ValidationError("offset_m must be non-negative")
    positions = []
    for c in range(columns):
        shift = offset_m if c % 2 == 0 else 0.0
        for r in range(rows):
            positions.append((c * column_spacing_m, r * row_spacing_m + shift))
    return np.asarray(positions, dtype=float)


def paper_grid(n_nodes: int = 47, *, rng=None) -> np.ndarray:
    """The paper's deployment: the 7x7 offset grid minus failed nodes.

    The full pattern has 49 slots; the experiments report 46-47 working
    motes (e.g. "the node at (0, 4.5) failed to report its existence" —
    Figure 13).  Dropped slots are chosen deterministically from the
    given *rng* seed; with the default seed the first drop is the
    paper's (0, 4.5) node.
    """
    if not 1 <= n_nodes <= 49:
        raise ValidationError("n_nodes must be in [1, 49]")
    grid = offset_grid()
    n_drop = 49 - n_nodes
    if n_drop == 0:
        return grid
    # The paper names (0, 4.5) as a failed node; drop it first, then
    # random further slots.
    drop = []
    failed_idx = int(np.nonzero((grid[:, 0] == 0.0) & (grid[:, 1] == 4.5))[0][0])
    drop.append(failed_idx)
    if n_drop > 1:
        rng = ensure_rng(rng if rng is not None else 20050600)
        remaining = [i for i in range(49) if i != failed_idx]
        extra = rng.choice(len(remaining), size=n_drop - 1, replace=False)
        drop.extend(remaining[k] for k in extra)
    keep = [i for i in range(49) if i not in set(drop)]
    return grid[keep]


def square_grid(
    columns: int,
    rows: int,
    spacing_m: float = 10.0,
) -> np.ndarray:
    """Plain rectangular grid (baseline topology for scaling studies)."""
    if columns < 1 or rows < 1:
        raise ValidationError("columns and rows must be >= 1")
    check_positive(spacing_m, "spacing_m")
    xs, ys = np.meshgrid(np.arange(columns) * spacing_m, np.arange(rows) * spacing_m)
    return np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float)
