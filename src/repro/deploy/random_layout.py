"""Random and structured-random deployment generators.

The simulation study of Section 4.2.2 "selected 59 plausible node
positions in a map of a few city blocks in a small town".  We have no
map, so :func:`town_layout` synthesizes the equivalent: a small street
grid with nodes scattered along the streets (where one would actually
mount sensors), subject to a minimum separation — producing the same
qualitative topology (anisotropic, elongated clusters, moderate density,
~945 pairs under 22 m for the default parameters).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._validation import check_non_negative, check_positive, ensure_rng
from ..errors import ValidationError

__all__ = ["uniform_random_layout", "town_layout", "parking_lot_layout"]


def uniform_random_layout(
    n_nodes: int,
    *,
    width_m: float = 100.0,
    height_m: float = 100.0,
    min_separation_m: float = 0.0,
    rng=None,
    max_attempts: int = 10_000,
) -> np.ndarray:
    """Uniform random positions with optional minimum separation.

    Rejection-samples until *n_nodes* positions at least
    *min_separation_m* apart are placed; raises after *max_attempts*
    rejections (density too high).
    """
    if n_nodes < 1:
        raise ValidationError("n_nodes must be >= 1")
    check_positive(width_m, "width_m")
    check_positive(height_m, "height_m")
    check_non_negative(min_separation_m, "min_separation_m")
    rng = ensure_rng(rng)
    placed = []
    attempts = 0
    while len(placed) < n_nodes:
        if attempts > max_attempts:
            raise ValidationError(
                f"could not place {n_nodes} nodes with separation "
                f"{min_separation_m} m in {width_m} x {height_m} m"
            )
        candidate = np.array([rng.uniform(0, width_m), rng.uniform(0, height_m)])
        attempts += 1
        if min_separation_m > 0 and placed:
            existing = np.asarray(placed)
            gaps = np.hypot(*(existing - candidate).T)
            if np.any(gaps < min_separation_m):
                continue
        placed.append(candidate)
    return np.asarray(placed)


def town_layout(
    n_nodes: int = 59,
    *,
    blocks_x: int = 3,
    blocks_y: int = 3,
    block_size_m: float = 24.0,
    street_jitter_m: float = 4.0,
    min_separation_m: float = 6.0,
    rng=None,
) -> np.ndarray:
    """Node positions along the streets of a small block grid.

    Streets run along the edges of a ``blocks_x x blocks_y`` grid of
    square blocks.  Each node is placed at a random point along a random
    street segment, displaced laterally by up to *street_jitter_m*
    (sensors sit on verges and building fronts, not lane centers), and
    must keep *min_separation_m* from already-placed nodes.
    """
    if n_nodes < 1:
        raise ValidationError("n_nodes must be >= 1")
    if blocks_x < 1 or blocks_y < 1:
        raise ValidationError("block counts must be >= 1")
    check_positive(block_size_m, "block_size_m")
    check_non_negative(street_jitter_m, "street_jitter_m")
    check_non_negative(min_separation_m, "min_separation_m")
    rng = ensure_rng(rng)

    # Street segments: horizontal and vertical grid lines.
    segments = []
    width = blocks_x * block_size_m
    height = blocks_y * block_size_m
    for gy in range(blocks_y + 1):
        segments.append(((0.0, gy * block_size_m), (width, gy * block_size_m)))
    for gx in range(blocks_x + 1):
        segments.append(((gx * block_size_m, 0.0), (gx * block_size_m, height)))

    placed = []
    attempts = 0
    while len(placed) < n_nodes:
        if attempts > 20_000:
            raise ValidationError(
                f"could not place {n_nodes} nodes along streets with "
                f"separation {min_separation_m} m; lower the density"
            )
        attempts += 1
        (x0, y0), (x1, y1) = segments[int(rng.integers(len(segments)))]
        t = rng.uniform()
        x = x0 + t * (x1 - x0)
        y = y0 + t * (y1 - y0)
        # Lateral displacement off the street centerline.
        if x0 == x1:  # vertical street: jitter in x
            x += rng.uniform(-street_jitter_m, street_jitter_m)
        else:
            y += rng.uniform(-street_jitter_m, street_jitter_m)
        candidate = np.array([x, y])
        if placed:
            existing = np.asarray(placed)
            gaps = np.hypot(*(existing - candidate).T)
            if np.any(gaps < min_separation_m):
                continue
        placed.append(candidate)
    return np.asarray(placed)


def parking_lot_layout(
    n_nodes: int = 15,
    *,
    width_m: float = 25.0,
    height_m: float = 25.0,
    min_separation_m: float = 4.0,
    rng=None,
) -> np.ndarray:
    """The small-scale experiment's topology: nodes in a 25x25 m lot
    (Section 4.1.3, Figure 12)."""
    return uniform_random_layout(
        n_nodes,
        width_m=width_m,
        height_m=height_m,
        min_separation_m=min_separation_m,
        rng=rng,
    )
