"""Anchor selection strategies.

Anchors are nodes that know their own position (Section 4.1).  The
paper's experiments pick anchors in two ways — a random subset
(Figure 14: "we randomly chose 13 nodes as anchors from a total of 46")
and a hand-placed well-spread subset (Figure 12's 5 loudspeaker-fitted
anchors).  Both strategies are provided, plus a corner/boundary-biased
strategy used in ablation studies of anchor placement.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import as_positions, ensure_rng
from ..errors import ValidationError

__all__ = ["random_anchors", "spread_anchors", "boundary_anchors"]


def _check_count(n_nodes: int, n_anchors: int) -> None:
    if not 0 < n_anchors <= n_nodes:
        raise ValidationError(
            f"n_anchors must be in (0, {n_nodes}]; got {n_anchors}"
        )


def random_anchors(n_nodes: int, n_anchors: int, rng=None) -> np.ndarray:
    """Uniformly random anchor indices (the paper's grid experiment)."""
    _check_count(n_nodes, n_anchors)
    rng = ensure_rng(rng)
    return np.sort(rng.choice(n_nodes, size=n_anchors, replace=False))


def spread_anchors(positions, n_anchors: int, *, start: int = 0) -> np.ndarray:
    """Well-spread anchors by farthest-point sampling.

    Deterministic: starts from index *start*, then greedily adds the
    node farthest from all chosen anchors.  Approximates the paper's
    hand-placed anchor sets and the "uniform anchor distribution" that
    multilateration needs (Section 4.1.4).
    """
    pts = as_positions(positions, "positions")
    n = pts.shape[0]
    _check_count(n, n_anchors)
    if not 0 <= start < n:
        raise ValidationError(f"start must be in [0, {n})")
    chosen = [start]
    min_dist = np.hypot(*(pts - pts[start]).T)
    while len(chosen) < n_anchors:
        nxt = int(np.argmax(min_dist))
        chosen.append(nxt)
        min_dist = np.minimum(min_dist, np.hypot(*(pts - pts[nxt]).T))
    return np.sort(np.asarray(chosen))


def boundary_anchors(positions, n_anchors: int) -> np.ndarray:
    """Anchors biased to the deployment boundary.

    The paper observes unlocalized nodes "appear on the periphery of the
    area ... attributed to the lack of anchors on the boundary of the
    grid" (Section 4.1.3).  This strategy picks the nodes farthest from
    the centroid, for studying exactly that effect.
    """
    pts = as_positions(positions, "positions")
    _check_count(pts.shape[0], n_anchors)
    center = pts.mean(axis=0)
    dist = np.hypot(*(pts - center).T)
    order = np.argsort(-dist, kind="stable")
    return np.sort(order[:n_anchors])
