"""Deployment generators: the paper's offset grid, town/random layouts,
and anchor selection strategies."""

from .anchors import boundary_anchors, random_anchors, spread_anchors
from .grid import offset_grid, paper_grid, square_grid
from .random_layout import parking_lot_layout, town_layout, uniform_random_layout

__all__ = [
    "offset_grid",
    "paper_grid",
    "square_grid",
    "uniform_random_layout",
    "town_layout",
    "parking_lot_layout",
    "random_anchors",
    "spread_anchors",
    "boundary_anchors",
]
