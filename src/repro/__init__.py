"""repro — Resilient Localization for Sensor Networks in Outdoor Environments.

A faithful, laptop-scale reproduction of Kwon, Mechitov, Sundresh, Kim &
Agha (ICDCS 2005): the long-distance acoustic TDoA ranging service
(Section 3) as a calibrated signal-level simulation, plus the full
localization suite (Section 4) — least-squares multilateration with
intersection consistency checking, centralized least-squares scaling
(LSS) with a minimum-spacing soft constraint, and the distributed LSS
pipeline (local maps, pairwise rigid transforms, alignment flood).

Quickstart::

    import numpy as np
    from repro import deploy, ranging, core

    positions = deploy.paper_grid(47)              # the 7x7 offset grid
    ranges = ranging.gaussian_ranges(positions, max_range_m=22.0,
                                     sigma_m=0.33, rng=7)
    result = core.lss_localize(
        ranges, len(positions),
        config=core.LssConfig(min_spacing_m=9.0), rng=7)
    report = core.evaluate_localization(result.positions, positions,
                                        align=True)
    print(f"average error: {report.average_error:.2f} m")

Subpackages
-----------
``repro.core``
    Localization algorithms, measurement model, geometry, evaluation.
``repro.ranging``
    The acoustic ranging service and its simulation substrate.
``repro.acoustics``
    Acoustic physics: environments, propagation, tone detectors.
``repro.network``
    Clocks, radio, discrete-event simulator, flooding.
``repro.deploy``
    Deployment and anchor-selection generators.
``repro.engine``
    Vectorized batch solvers and the seeded Monte-Carlo campaign
    runner (the scaling substrate; see its module docstring for the
    batching layout and the scalar/batched parity contract).
``repro.scenarios``
    Declarative workload layer: frozen scenario specs with canonical
    content hashing, a named registry, parameter-sweep expansion, and
    the store-backed campaign runner.
``repro.store``
    Content-addressed on-disk result cache (spec hash + code version ->
    compressed trial records), with atomic writes and hit/miss stats.
``repro.experiments``
    One driver per paper figure (used by benchmarks and examples).
"""

from . import acoustics, core, deploy, engine, network, ranging, scenarios, store
from .errors import (
    CalibrationError,
    ConvergenceError,
    GraphDisconnectedError,
    InsufficientDataError,
    ReproError,
    ValidationError,
)

# Convenience re-exports of the most-used entry points.
from .core import (
    EdgeList,
    LssConfig,
    LssResult,
    MeasurementSet,
    RangeMeasurement,
    distributed_localize,
    evaluate_localization,
    localize_network,
    lss_localize,
    multilaterate,
)
from .ranging import RangingService, gaussian_ranges, run_campaign
from .scenarios import ScenarioSpec, get_scenario, run_scenario
from .store import ResultStore

#: Participates in every result-store key (see
#: :func:`repro.store.default_code_version`): bumping it invalidates all
#: cached simulation results.
__version__ = "1.1.0"

__all__ = [
    "acoustics",
    "core",
    "deploy",
    "engine",
    "network",
    "ranging",
    "scenarios",
    "store",
    "ReproError",
    "ValidationError",
    "ConvergenceError",
    "InsufficientDataError",
    "GraphDisconnectedError",
    "CalibrationError",
    "MeasurementSet",
    "RangeMeasurement",
    "EdgeList",
    "LssConfig",
    "LssResult",
    "lss_localize",
    "multilaterate",
    "localize_network",
    "distributed_localize",
    "evaluate_localization",
    "RangingService",
    "gaussian_ranges",
    "run_campaign",
    "ScenarioSpec",
    "get_scenario",
    "run_scenario",
    "ResultStore",
    "__version__",
]
