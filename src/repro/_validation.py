"""Internal input-validation helpers shared across the library.

These helpers normalize user input into canonical numpy arrays and raise
:class:`repro.errors.ValidationError` with actionable messages.  They are
deliberately small and side-effect free so algorithm modules stay focused
on the mathematics.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from .errors import ValidationError

__all__ = [
    "as_positions",
    "as_finite_array",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_index_pairs",
    "ensure_rng",
]


def as_positions(points, name: str = "positions", *, allow_empty: bool = False) -> np.ndarray:
    """Coerce *points* to a float64 ``(n, 2)`` array of planar coordinates.

    Raises :class:`ValidationError` if the input is not convertible, has
    the wrong trailing dimension, or contains non-finite values.
    """
    arr = np.asarray(points, dtype=float)
    if arr.ndim == 1 and arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim == 1 and arr.size == 2:
        arr = arr.reshape(1, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValidationError(
            f"{name} must have shape (n, 2); got shape {arr.shape}"
        )
    if not allow_empty and arr.shape[0] == 0:
        raise ValidationError(f"{name} must contain at least one point")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite values")
    return arr


def as_finite_array(values, name: str = "values", *, ndim: Optional[int] = None) -> np.ndarray:
    """Coerce *values* to a finite float64 array, optionally checking ndim."""
    arr = np.asarray(values, dtype=float)
    if ndim is not None and arr.ndim != ndim:
        raise ValidationError(f"{name} must be {ndim}-dimensional; got {arr.ndim}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite values")
    return arr


def check_positive(value: float, name: str) -> float:
    """Validate that *value* is a finite, strictly positive scalar."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValidationError(f"{name} must be a positive finite number; got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that *value* is a finite scalar >= 0."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValidationError(f"{name} must be a non-negative finite number; got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be a probability in [0, 1]; got {value!r}")
    return value


def check_index_pairs(
    pairs: Iterable[Tuple[int, int]],
    n: int,
    name: str = "pairs",
    *,
    allow_self: bool = False,
) -> np.ndarray:
    """Validate an iterable of index pairs against a node count *n*.

    Returns an ``(m, 2)`` int64 array.  Self-pairs are rejected unless
    *allow_self* is set.
    """
    arr = np.asarray(list(pairs) if not isinstance(pairs, np.ndarray) else pairs)
    if arr.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValidationError(f"{name} must have shape (m, 2); got {arr.shape}")
    arr = arr.astype(np.int64)
    if np.any(arr < 0) or np.any(arr >= n):
        raise ValidationError(f"{name} contains indices outside [0, {n})")
    if not allow_self and np.any(arr[:, 0] == arr[:, 1]):
        raise ValidationError(f"{name} contains self-pairs (i == j)")
    return arr


def ensure_rng(rng=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh unseeded generator), an ``int`` seed, or an
    existing generator (returned unchanged).  This mirrors the
    ``random_state`` convention of scipy/sklearn but uses the modern
    Generator API throughout the library.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise ValidationError(
        f"rng must be None, an int seed, or numpy.random.Generator; got {type(rng)!r}"
    )
