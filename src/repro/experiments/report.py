"""Render experiment results as human-readable reports.

Used by ``examples/reproduce_paper.py`` and to (re)generate
``EXPERIMENTS.md``: one markdown section per experiment with the
paper-vs-measured table and the shape-check verdicts.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from .base import ExperimentResult

__all__ = ["format_value", "render_markdown", "render_text", "summary_counts"]


def format_value(value) -> str:
    """Human-friendly rendering of a paper/measured value."""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def summary_counts(results: Mapping[str, ExperimentResult]) -> Dict[str, int]:
    """Aggregate pass counts over a result set."""
    return {
        "experiments": len(results),
        "experiments_passed": sum(r.passed for r in results.values()),
        "checks": sum(len(r.checks) for r in results.values()),
        "checks_passed": sum(
            sum(c.passed for c in r.checks) for r in results.values()
        ),
    }


def render_markdown(
    results: Mapping[str, ExperimentResult],
    *,
    title: str = "EXPERIMENTS — paper vs. measured",
    preamble: Iterable[str] = (),
) -> str:
    """Render a full markdown report (the EXPERIMENTS.md format)."""
    lines = [f"# {title}", ""]
    lines.extend(preamble)
    if preamble:
        lines.append("")
    counts = summary_counts(results)
    lines.append(
        f"**Summary: {counts['experiments_passed']}/{counts['experiments']} "
        f"experiments reproduce the paper's shape "
        f"({counts['checks_passed']}/{counts['checks']} individual checks).**"
    )
    lines.append("")
    for experiment_id in sorted(results):
        result = results[experiment_id]
        lines.append(f"## {experiment_id} — {result.title}")
        lines.append("")
        lines.append("| metric | paper | measured |")
        lines.append("|---|---|---|")
        for key in sorted(set(result.paper) | set(result.measured)):
            paper_v = format_value(result.paper.get(key, "—"))
            measured_v = format_value(result.measured.get(key, "—"))
            lines.append(f"| {key} | {paper_v} | {measured_v} |")
        lines.append("")
        for check in result.checks:
            mark = "✅" if check.passed else "❌"
            detail = f" — {check.detail}" if check.detail else ""
            lines.append(f"- {mark} {check.name}{detail}")
        lines.append("")
    return "\n".join(lines) + "\n"


def render_text(results: Mapping[str, ExperimentResult]) -> str:
    """Plain-text report: concatenated experiment summaries."""
    blocks = [results[eid].summary() for eid in sorted(results)]
    counts = summary_counts(results)
    blocks.append(
        f"{counts['experiments_passed']}/{counts['experiments']} experiments "
        f"({counts['checks_passed']}/{counts['checks']} checks) pass"
    )
    return "\n\n".join(blocks)
