"""Shared fixtures for the experiment drivers.

The grassy-field campaign (Sections 3.6 and 4.2-4.3) feeds a dozen
different figures; it is simulated once per (n_nodes, seed) and cached
for the lifetime of the process, exactly as the paper's one field
campaign produced the measurement set reused across its evaluation.
The raw measurement set is additionally memoized in the content-
addressed result store (:mod:`repro.store`) keyed on the campaign
parameters and code version, so repeated processes (figure
regeneration, examples, CLI runs) skip the signal-level simulation
entirely; the cheap filtering stages are recomputed from the stored raw
set, keeping one serialization path while preserving bit-identical
edges.  The cache key sees only ``repro.__version__`` — when iterating
on simulation code without bumping it, set ``REPRO_STORE_DIR=off`` (the
test suites isolate themselves via ``tests/conftest.py``).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from ..acoustics import get_environment
from ..core.measurements import EdgeList
from ..deploy import paper_grid, random_anchors
from ..ranging import RangingService, run_campaign, triangle_filter
from ..ranging.filtering import confidence_weighted_edges
from ..store import (
    measurement_set_from_payload,
    measurement_set_to_payload,
    open_default_store,
)

__all__ = [
    "DEFAULT_SEED",
    "grass_service",
    "grass_campaign_edges",
    "grid_positions",
    "root_near",
]

#: Seed used by all default experiment runs (any seed reproduces the
#: qualitative shapes; this one is fixed so tables are deterministic).
DEFAULT_SEED = 2005


@lru_cache(maxsize=4)
def grass_service(seed: int = DEFAULT_SEED) -> RangingService:
    """The calibrated refined ranging service for the grass site."""
    env = get_environment("grass")
    return RangingService(environment=env).calibrate(rng=seed)


@lru_cache(maxsize=4)
def grid_positions(n_nodes: int = 47) -> Tuple[Tuple[float, float], ...]:
    """The paper's offset-grid deployment, hashable for caching."""
    return tuple(map(tuple, paper_grid(n_nodes)))


def _simulate_grass_campaign(n_nodes: int, seed: int, rounds: int):
    positions = np.asarray(grid_positions(n_nodes))
    service = grass_service(seed)
    return run_campaign(positions, service, rounds=rounds, rng=seed + 1)


@lru_cache(maxsize=8)
def _campaign_cached(n_nodes: int, seed: int, rounds: int):
    store = open_default_store()
    raw = None
    key = None
    if store is not None:
        key = store.key_for(
            {
                "workload": "grass-campaign",
                "environment": "grass",
                "n_nodes": n_nodes,
                "seed": seed,
                "rounds": rounds,
            }
        )
        payload = store.get(key)
        if payload is not None:
            raw = measurement_set_from_payload(payload)
    if raw is None:
        raw = _simulate_grass_campaign(n_nodes, seed, rounds)
        if store is not None and key is not None:
            store.put(key, measurement_set_to_payload(raw))
    filtered = triangle_filter(raw)
    edges = confidence_weighted_edges(filtered)
    return raw, edges


def grass_campaign_edges(
    n_nodes: int = 47, seed: int = DEFAULT_SEED, rounds: int = 3
):
    """(raw MeasurementSet, confidence-weighted EdgeList) for the field
    campaign on the grass grid.  Cached per arguments."""
    return _campaign_cached(n_nodes, seed, rounds)


def root_near(positions, x: float, y: float) -> int:
    """Node index closest to (x, y) — e.g. the paper's (27, 36) root."""
    pts = np.asarray(positions, dtype=float)
    return int(np.argmin(np.hypot(pts[:, 0] - x, pts[:, 1] - y)))
