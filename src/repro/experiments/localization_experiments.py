"""Drivers for the localization figures (Section 4).

fig11 — intersection consistency check vs collinear anchors
fig12 — multilateration, 15 nodes / 5 anchors, 25x25 m parking lot
fig14 — multilateration on the sparse grass-campaign measurements
fig16 — multilateration on the synthetically extended measurements
fig18 — centralized LSS with the min-spacing soft constraint
fig19 — centralized LSS without the constraint (ablation)
fig20 — multilateration, random 59-node town, synthetic ranges
fig21 — centralized LSS on the same data, zero anchors
fig22 — fig21 without the constraint (ablation)
fig23 — convergence traces with vs without the constraint
fig24 — distributed LSS on the sparse campaign measurements
fig25 — distributed LSS with 370 extra synthetic ranges
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .._validation import ensure_rng
from ..core import (
    DistributedConfig,
    LssConfig,
    distributed_localize,
    evaluate_localization,
    intersection_consistency_filter,
    localize_network,
    lss_localize,
    lss_localize_robust,
    trimmed_mean_error,
)
from ..core.measurements import MeasurementSet
from ..deploy import parking_lot_layout, random_anchors, spread_anchors
from ..ranging import augment_with_gaussian_ranges
from .base import ExperimentResult, ShapeCheck, register
from .common import DEFAULT_SEED, grass_campaign_edges, grid_positions, root_near

#: The paper's grid experiments: 9.14 m minimum spacing, w_D = 10.
GRID_MIN_SPACING_M = 9.14
PAPER_CONSTRAINT_WEIGHT = 10.0


def _grid_setup(seed: int, n_nodes: int = 46):
    positions = np.asarray(grid_positions(n_nodes))
    raw, edges = grass_campaign_edges(n_nodes=n_nodes, seed=seed)
    return positions, raw, edges


@register("fig11")
def fig11_intersection_consistency(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Collinear anchors produce scattered intersections and get dropped.

    Reconstruction of the paper's illustration: a node measured from
    four consistent anchors plus one nearly-collinear anchor whose
    slightly-wrong range produces intersection points far from the
    cluster.  The filter must keep the consistent anchors and drop the
    collinear one.
    """
    rng = ensure_rng(seed)
    target = np.array([0.0, 0.0])
    good_anchors = np.array([[12.0, 2.0], [-3.0, 11.0], [-10.0, -5.0], [6.0, -9.0]])
    # Anchor nearly collinear with the first (relative to the target),
    # with a 5% range error — the Figure 11 configuration.
    collinear = np.array([[-24.0, -4.0]])
    anchors = np.vstack([good_anchors, collinear])
    distances = np.hypot(anchors[:, 0] - target[0], anchors[:, 1] - target[1])
    distances[:4] += rng.normal(0.0, 0.05, size=4)
    distances[4] *= 1.25  # large error on the suspicious anchor

    kept = intersection_consistency_filter(anchors, distances, cluster_radius_m=1.0)
    dropped_bad = 4 not in kept
    kept_good = all(k in kept for k in range(4))

    return ExperimentResult(
        experiment_id="fig11",
        title="Intersection consistency check drops inconsistent anchors",
        paper={"inconsistent_anchor_dropped": "yes"},
        measured={
            "anchors_kept": float(len(kept)),
            "bad_anchor_dropped": str(dropped_bad),
        },
        checks=[
            ShapeCheck("erroneous anchor dropped", dropped_bad, f"kept={list(kept)}"),
            ShapeCheck("consistent anchors retained", kept_good, ""),
        ],
    )


@register("fig12")
def fig12_multilateration_small(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Multilateration, 15 nodes (5 anchors) in a 25x25 m lot: ~0.9 m.

    The paper's small-scale experiment predates the chirp pattern, so
    individual ranges carried larger errors; measurements were one-way
    (only anchors had loudspeakers) and median-filtered.  We model the
    per-range error as N(0, 0.4 m) to anchors only.
    """
    rng = ensure_rng(seed)
    positions = parking_lot_layout(15, rng=rng)
    anchor_idx = spread_anchors(positions, 5)
    anchor_positions = {int(i): positions[i] for i in anchor_idx}

    measurements = MeasurementSet()
    for a in anchor_idx:
        for j in range(len(positions)):
            if j in set(int(x) for x in anchor_idx):
                continue
            truth = float(np.hypot(*(positions[a] - positions[j])))
            noisy = max(0.0, truth + float(rng.normal(0.0, 0.4)))
            measurements.add_distance(int(a), int(j), noisy, true_distance=truth)

    result = localize_network(measurements, anchor_positions, len(positions))
    non_anchor = ~result.is_anchor
    localized = result.localized & non_anchor
    report = evaluate_localization(
        result.positions[localized], positions[localized]
    )

    return ExperimentResult(
        experiment_id="fig12",
        title="Multilateration, 15 nodes (5 anchors), 25x25 m lot",
        paper={"average_error_m": 0.868, "n_localized": 10.0},
        measured={
            "average_error_m": report.average_error,
            "n_localized": float(localized.sum()),
        },
        checks=[
            ShapeCheck(
                "all non-anchors localized",
                int(localized.sum()) == int(non_anchor.sum()),
                f"{localized.sum()}/{non_anchor.sum()}",
            ),
            ShapeCheck(
                "sub-1.5 m average error",
                report.average_error < 1.5,
                f"{report.average_error:.2f} m",
            ),
        ],
    )


@register("fig14")
def fig14_multilateration_sparse(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Multilateration on real sparse field measurements mostly fails.

    Paper: only 7 of 33 non-anchors (~20%) localized; average anchors
    per node 1.47; the localized few averaged 0.65 m error.
    """
    positions, raw, edges = _grid_setup(seed)
    rng = ensure_rng(seed)
    n = len(positions)
    anchor_idx = random_anchors(n, 13, rng=rng)
    anchor_positions = {int(i): positions[i] for i in anchor_idx}

    result = localize_network(edges, anchor_positions, n)
    non_anchor = ~result.is_anchor
    localized = result.localized & non_anchor
    frac = float(localized.sum()) / float(non_anchor.sum())
    report = evaluate_localization(result.positions[localized], positions[localized])

    return ExperimentResult(
        experiment_id="fig14",
        title="Multilateration on sparse field measurements (13 anchors / 46 nodes)",
        paper={
            "fraction_localized": 7.0 / 33.0,
            "avg_anchors_per_node": 1.47,
            "average_error_m": 0.653,
        },
        measured={
            "fraction_localized": frac,
            "avg_anchors_per_node": result.average_anchors_per_node,
            "average_error_m": report.average_error,
        },
        checks=[
            ShapeCheck(
                "only a minority of non-anchors localized",
                frac <= 0.5,
                f"{localized.sum()}/{non_anchor.sum()} ({frac:.0%})",
            ),
            ShapeCheck(
                "average anchors per node ~1-3 (below the 3 needed)",
                1.0 <= result.average_anchors_per_node <= 3.0,
                f"{result.average_anchors_per_node:.2f}",
            ),
        ],
        extras={"result": result},
    )


@register("fig16")
def fig16_multilateration_extended(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Multilateration recovers once synthetic ranges fill the gaps.

    Paper: ~80% localized; 3.5 m average (dominated by three badly
    localized nodes — a bad range and two local-minimum victims), 0.9 m
    without those three.
    """
    positions, raw, edges = _grid_setup(seed)
    rng = ensure_rng(seed)
    n = len(positions)
    anchor_idx = random_anchors(n, 13, rng=rng)
    anchor_positions = {int(i): positions[i] for i in anchor_idx}
    extended = augment_with_gaussian_ranges(
        edges, positions, max_range_m=22.0, sigma_m=0.33, rng=rng
    )

    result = localize_network(extended, anchor_positions, n)
    non_anchor = ~result.is_anchor
    localized = result.localized & non_anchor
    frac = float(localized.sum()) / float(non_anchor.sum())
    report = evaluate_localization(result.positions[localized], positions[localized])
    trimmed = trimmed_mean_error(report.errors, drop_worst=3)

    return ExperimentResult(
        experiment_id="fig16",
        title="Multilateration with synthetically extended measurements",
        paper={
            "fraction_localized": 0.8,
            "average_error_m": 3.524,
            "average_error_without_worst3_m": 0.9,
            "avg_anchors_per_node": 3.84,
        },
        measured={
            "fraction_localized": frac,
            "average_error_m": report.average_error,
            "average_error_without_worst3_m": trimmed,
            "avg_anchors_per_node": result.average_anchors_per_node,
        },
        checks=[
            ShapeCheck(
                "majority localized after extension",
                frac >= 0.6,
                f"{frac:.0%}",
            ),
            ShapeCheck(
                "anchors per node rose substantially vs fig14",
                result.average_anchors_per_node >= 3.0,
                f"{result.average_anchors_per_node:.2f}",
            ),
            ShapeCheck(
                "trimmed error ~1-2 m (local-minimum victims excluded)",
                trimmed <= 2.5,
                f"{trimmed:.2f} m",
            ),
        ],
        extras={"result": result},
    )


def _centralized_lss(seed: int, constrained: bool):
    positions, raw, edges = _grid_setup(seed, n_nodes=47)
    n = len(positions)
    config = LssConfig(
        min_spacing_m=GRID_MIN_SPACING_M if constrained else None,
        constraint_weight=PAPER_CONSTRAINT_WEIGHT,
    )
    result = lss_localize_robust(edges, n, config=config, rng=seed)
    report = evaluate_localization(result.positions, positions, align=True)
    return report, result


@register("fig18")
def fig18_lss_constrained(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Centralized LSS with the min-spacing constraint: ~2.2 m.

    Anchor-free localization of the full grid from the sparse field
    measurements; paper reports 2.2 m average (1.5 m without the worst
    five nodes).
    """
    report, result = _centralized_lss(seed, constrained=True)
    trimmed = trimmed_mean_error(report.errors, drop_worst=5)
    return ExperimentResult(
        experiment_id="fig18",
        title="Centralized LSS with min-spacing soft constraint",
        paper={
            "average_error_m": 2.229,
            "average_error_without_worst5_m": 1.5,
        },
        measured={
            "average_error_m": report.average_error,
            "average_error_without_worst5_m": trimmed,
            "final_objective": result.error,
        },
        checks=[
            ShapeCheck(
                "average error in the paper's band (1-4 m)",
                1.0 <= report.average_error <= 4.0,
                f"{report.average_error:.2f} m",
            ),
            ShapeCheck(
                "all nodes localized (no anchors required)",
                report.n_localized == report.n_total,
                f"{report.n_localized}/{report.n_total}",
            ),
        ],
        extras={"positions": result.positions, "trace": result.error_trace},
    )


@register("fig19")
def fig19_lss_unconstrained(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Centralized LSS without the constraint fails to converge (~16.6 m)."""
    report_c, _ = _centralized_lss(seed, constrained=True)
    report_u, result_u = _centralized_lss(seed, constrained=False)
    factor = report_u.average_error / max(report_c.average_error, 1e-9)
    return ExperimentResult(
        experiment_id="fig19",
        title="Centralized LSS without the min-spacing constraint",
        paper={"average_error_m": 16.609, "constrained_average_error_m": 2.229},
        measured={
            "average_error_m": report_u.average_error,
            "constrained_average_error_m": report_c.average_error,
            "degradation_factor": factor,
        },
        checks=[
            ShapeCheck(
                "unconstrained is >= 3x worse than constrained",
                factor >= 3.0,
                f"{report_u.average_error:.1f} vs {report_c.average_error:.1f} m",
            ),
            ShapeCheck(
                "unconstrained fails outright (>= 8 m average)",
                report_u.average_error >= 8.0,
                f"{report_u.average_error:.1f} m",
            ),
        ],
        extras={"trace": result_u.error_trace},
    )


def _town_setup(seed: int):
    """One draw of the registered "town-multilateration" scenario.

    The scenario spec is the single source of truth for the town
    geometry and noise model; fig20-fig23 sample one deployment from it
    (the paper's single reported campaign), while Monte-Carlo sweeps run
    the same spec through :func:`repro.scenarios.run_scenario`.  The
    draw order (deployment, anchors, ranges) matches the historical
    driver, so seeded results are unchanged.
    """
    from ..scenarios import draw_deployment, draw_ranges, get_scenario, select_anchors

    rng = ensure_rng(seed)
    spec = get_scenario("town-multilateration")
    positions = draw_deployment(spec.deployment, rng)
    anchor_idx = select_anchors(spec.anchors, positions, rng)
    ranges = draw_ranges(spec.ranging, positions, rng)
    return positions, anchor_idx, ranges


@register("fig20")
def fig20_multilateration_random(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Multilateration on the random town deployment: ~0.95 m.

    59 plausible positions, 18 random anchors, synthetic ranges
    N(0, 0.33) for pairs under 22 m; the paper localized 35 nodes with
    1.0 m average error.
    """
    positions, anchor_idx, ranges = _town_setup(seed)
    anchor_positions = {int(i): positions[i] for i in anchor_idx}
    n = len(positions)
    result = localize_network(ranges, anchor_positions, n)
    non_anchor = ~result.is_anchor
    localized = result.localized & non_anchor
    report = evaluate_localization(result.positions[localized], positions[localized])
    return ExperimentResult(
        experiment_id="fig20",
        title="Multilateration, random 59-node town (18 anchors)",
        paper={"n_localized": 35.0, "average_error_m": 0.950},
        measured={
            "n_localized": float(localized.sum()),
            "n_non_anchors": float(non_anchor.sum()),
            "average_error_m": report.average_error,
        },
        checks=[
            ShapeCheck(
                "a substantial subset localizes, but not everyone",
                0.2 <= localized.sum() / non_anchor.sum() < 1.0,
                f"{localized.sum()}/{non_anchor.sum()}",
            ),
            ShapeCheck(
                "localized nodes are accurate (~1 m band)",
                report.average_error <= 2.5,
                f"{report.average_error:.2f} m",
            ),
        ],
        extras={"result": result, "positions": positions},
    )


from functools import lru_cache


@lru_cache(maxsize=8)
def _town_lss_cached(seed: int, constrained: bool, attempts: int, restarts: int):
    return _town_lss_impl(seed, constrained, attempts=attempts, restarts=restarts)


def _town_lss(seed: int, constrained: bool, *, attempts: int = 3, restarts: int = 30):
    return _town_lss_cached(seed, constrained, attempts, restarts)


def _town_lss_impl(seed: int, constrained: bool, *, attempts: int, restarts: int):
    """Town LSS under the paper's keep-the-best-run protocol.

    The paper restarts minimization "until a reasonable minimum is
    reached or the maximum computation time limit expires", keeping the
    best configuration *by objective value* (no ground truth involved).
    We run `attempts` independent seeds and keep the lowest-objective
    run; this is where the soft constraint earns its keep — without it,
    a low stress value does not indicate a correct configuration.  The
    independent attempts advance in vectorized lockstep through the
    engine's multistart driver (one stacked descent per restart round).
    """
    from ..engine import lss_localize_multistart

    positions, _, ranges = _town_setup(seed)
    n = len(positions)
    config = LssConfig(
        min_spacing_m=9.0 if constrained else None,
        constraint_weight=PAPER_CONSTRAINT_WEIGHT,
        restarts=restarts,
        perturbation_m=8.0,
    )
    results = lss_localize_multistart(
        ranges, n, config=config, seeds=[seed + offset for offset in range(attempts)]
    )
    best = min(results, key=lambda result: result.error)
    report = evaluate_localization(best.positions, positions, align=True)
    return positions, best, report


@register("fig21")
def fig21_lss_random(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Centralized LSS, town deployment, zero anchors: ~0.55 m.

    "All the nodes were localized with average error of 0.5 m ... much
    better than multilateration, considering that no anchors were used."
    """
    positions, result, report = _town_lss(seed, constrained=True)
    fig20 = fig20_multilateration_random(seed)
    multilat_err = fig20.measured["average_error_m"]
    multilat_localized = fig20.measured["n_localized"]
    return ExperimentResult(
        experiment_id="fig21",
        title="Centralized LSS, random town, min-spacing constraint, 0 anchors",
        paper={"average_error_m": 0.548, "multilateration_error_m": 0.950},
        measured={
            "average_error_m": report.average_error,
            "multilateration_error_m": multilat_err,
            "n_localized": float(report.n_localized),
            "multilateration_n_localized": multilat_localized,
        },
        checks=[
            ShapeCheck(
                "all nodes localized without anchors",
                report.n_localized == report.n_total,
                f"{report.n_localized}/{report.n_total}",
            ),
            ShapeCheck(
                "average error below 1.2 m",
                report.average_error <= 1.2,
                f"{report.average_error:.2f} m",
            ),
            ShapeCheck(
                "LSS localizes far more nodes than multilateration at "
                "comparable accuracy (and with zero anchors)",
                report.n_localized > multilat_localized
                and report.average_error <= max(2.0 * multilat_err, 1.2),
                f"{report.n_localized} vs {multilat_localized:.0f} nodes; "
                f"{report.average_error:.2f} vs {multilat_err:.2f} m",
            ),
        ],
        extras={"trace": result.error_trace, "positions": result.positions},
    )


@register("fig22")
def fig22_lss_random_unconstrained(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Town LSS without the constraint: ~13.6 m (fails)."""
    _, result_u, report_u = _town_lss(seed, constrained=False)
    _, _, report_c = _town_lss(seed, constrained=True)
    factor = report_u.average_error / max(report_c.average_error, 1e-9)
    return ExperimentResult(
        experiment_id="fig22",
        title="Town LSS without the min-spacing constraint",
        paper={"average_error_m": 13.606, "constrained_average_error_m": 0.548},
        measured={
            "average_error_m": report_u.average_error,
            "constrained_average_error_m": report_c.average_error,
            "degradation_factor": factor,
        },
        checks=[
            ShapeCheck(
                "unconstrained >= 5x worse than constrained",
                factor >= 5.0,
                f"{factor:.1f}x",
            ),
        ],
        extras={"trace": result_u.error_trace},
    )


@register("fig23")
def fig23_convergence(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Error-vs-epoch: the constraint accelerates convergence.

    The paper notes the constrained objective has strictly more
    (positive) terms, so its floor is higher — yet it reaches a good
    configuration dramatically faster.  We compare the *measurement
    stress* achieved per epoch budget.
    """
    positions, con, rep_c = _town_lss(seed, constrained=True)
    _, unc, rep_u = _town_lss(seed, constrained=False)
    return ExperimentResult(
        experiment_id="fig23",
        title="Convergence with vs without the soft constraint",
        paper={"constraint_reaches_global_minimum_faster": "yes"},
        measured={
            "constrained_error_after_budget_m": rep_c.average_error,
            "unconstrained_error_after_budget_m": rep_u.average_error,
            "constrained_stress": con.stress,
            "unconstrained_stress": unc.stress,
        },
        checks=[
            ShapeCheck(
                "same compute budget: constrained converges, unconstrained doesn't",
                rep_c.average_error < rep_u.average_error / 3.0,
                f"{rep_c.average_error:.2f} vs {rep_u.average_error:.2f} m",
            ),
        ],
        extras={
            "constrained_trace": con.error_trace,
            "unconstrained_trace": unc.error_trace,
        },
    )


def _distributed_setup(seed: int):
    positions = np.asarray(grid_positions(47))
    raw, edges = grass_campaign_edges(n_nodes=47, seed=seed)
    root = root_near(positions, 27.0, 36.0)
    config = DistributedConfig(min_spacing_m=GRID_MIN_SPACING_M)
    return positions, edges, root, config


@register("fig24")
def fig24_distributed_sparse(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Distributed LSS on sparse measurements: bad transforms propagate.

    Paper: 9.5 m average error — "the bad transform of a pair of nodes
    caused large localization errors which were amplified and
    propagated ... only 247 total distance measurements were available".
    """
    positions, edges, root, config = _distributed_setup(seed)
    n = len(positions)
    result = distributed_localize(edges, n, root, config=config, rng=seed)
    report = evaluate_localization(
        result.positions, positions, localized_mask=result.localized, align=True
    )
    return ExperimentResult(
        experiment_id="fig24",
        title="Distributed LSS on sparse field measurements",
        paper={"average_error_m": 9.494},
        measured={
            "average_error_m": report.average_error,
            "n_measured_pairs": float(len(edges)),
        },
        checks=[
            ShapeCheck(
                "sparse distributed localization degrades badly (>= 4 m)",
                report.average_error >= 4.0,
                f"{report.average_error:.1f} m",
            ),
        ],
        extras={"result": result},
    )


@register("fig25")
def fig25_distributed_extended(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Distributed LSS with 370 extra synthetic ranges: ~0.5 m."""
    positions, edges, root, config = _distributed_setup(seed)
    n = len(positions)
    rng = ensure_rng(seed)
    extended = augment_with_gaussian_ranges(
        edges, positions, max_range_m=22.0, sigma_m=0.33, n_extra=370, rng=rng
    )
    result = distributed_localize(extended, n, root, config=config, rng=seed)
    report = evaluate_localization(
        result.positions, positions, localized_mask=result.localized, align=True
    )
    sparse = fig24_distributed_sparse(seed)
    return ExperimentResult(
        experiment_id="fig25",
        title="Distributed LSS with 370 additional synthetic ranges",
        paper={"average_error_m": 0.534, "sparse_average_error_m": 9.494},
        measured={
            "average_error_m": report.average_error,
            "sparse_average_error_m": sparse.measured["average_error_m"],
            "n_localized": float(report.n_localized),
        },
        checks=[
            ShapeCheck(
                "all nodes localized",
                report.n_localized == report.n_total,
                f"{report.n_localized}/{report.n_total}",
            ),
            ShapeCheck(
                "average error ~0.5-1.5 m",
                report.average_error <= 1.5,
                f"{report.average_error:.2f} m",
            ),
            ShapeCheck(
                "extension improves on sparse >= 5x",
                report.average_error
                <= sparse.measured["average_error_m"] / 5.0,
                f"{sparse.measured['average_error_m']:.1f} -> {report.average_error:.2f} m",
            ),
        ],
        extras={"result": result},
    )
