"""Extension experiments: claims the paper makes in passing, verified.

ext-xsm      — the software tone-detector path (Section 3.7): shorter
               range and larger memory footprint than the hardware path.
ext-protocol — the distributed algorithm's cost claim (Section 4.3.1):
               "two local data exchanges per node and one round of
               flooding"; verified by running the algorithm as an
               actual message-passing protocol.
ext-scaling  — the motivation for the distributed variant (Section
               4.3): centralized LSS minimization cost grows quickly
               with network size, while distributed per-node work stays
               neighborhood-sized.
ext-campaign — the paper's evaluation style as a first-class workload:
               a seeded Monte-Carlo campaign of randomized
               multilateration trials through the scenario layer and the
               content-addressed result store, with reproducible
               aggregate statistics.
ext-sweep    — a density x noise x anchor-fraction scenario sweep run
               through the adaptive campaign scheduler: well-behaved
               cells stop early on a confidence-interval criterion and
               their records are a bit-identical prefix of the
               fixed-count campaign.
ext-distributed — the batched distributed-LSS pipeline (Section 4.3
               through the engine's stacked local-map and transform
               kernels) against the per-problem scalar reference:
               same-tolerance town-scale accuracy at a fraction of the
               wall-clock.
"""

from __future__ import annotations

import os
import time

import numpy as np

from .._validation import ensure_rng
from ..acoustics import get_environment
from ..core import (
    DistributedConfig,
    LssConfig,
    build_local_maps,
    distributed_localize,
    evaluate_localization,
    lss_localize,
    run_distributed_protocol,
)
from ..deploy import square_grid, town_layout
from ..ranging import RangingService, TdoaConfig, XsmRangingService, gaussian_ranges
from .base import ExperimentResult, ShapeCheck, register
from .common import DEFAULT_SEED


@register("ext-xsm")
def ext_xsm_software_detector(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Software tone detection: shorter range, bigger buffers.

    The paper reports the XSM path achieving "similar accuracy as the
    MICA hardware tone detector, but a shorter maximum range (10 m)"
    and needing "a 2 kB buffer ... with a sampling rate of 16 kHz" for
    20 m where the hardware path uses <500 B.
    """
    rng = ensure_rng(seed)
    env = get_environment("grass")
    tdoa = TdoaConfig(max_range_m=25.0)
    xsm = XsmRangingService(environment=env, tdoa=tdoa)
    mica = RangingService(environment=env, tdoa=tdoa).calibrate(rng=rng)

    # Range comparison under identical, nominal link conditions (zero
    # ground-cover gain): isolates the detector difference from the
    # luck of per-link draws.
    from ..ranging.link import LinkRealization

    nominal = LinkRealization(link_gain_db=0.0)
    distances = np.arange(4.0, 26.0, 1.0)
    xsm_range = 0.0
    mica_range = 0.0
    for d in distances:
        p_xsm = xsm.detection_probability(
            float(d), attempts=20, draw_link_gain=False, rng=rng
        )
        hits = 0
        for _ in range(20):
            est = mica.measure(float(d), link=nominal, rng=rng)
            if est is not None and abs(est - d) <= 3.0:
                hits += 1
        if p_xsm >= 0.5:
            xsm_range = float(d)
        if hits / 20 >= 0.5:
            mica_range = float(d)

    # Accuracy at a shared comfortable distance.
    xsm_errors = []
    mica_errors = []
    for _ in range(25):
        e = xsm.measure(8.0, rng=rng)
        if e is not None:
            xsm_errors.append(abs(e - 8.0))
        link = mica.link_simulator.draw_link(rng)
        e = mica.measure(8.0, link=link, rng=rng)
        if e is not None:
            mica_errors.append(abs(e - 8.0))
    xsm_median = float(np.median(xsm_errors))
    mica_median = float(np.median(mica_errors))

    software_bytes = xsm.buffer_bytes(bits_per_sample=8)
    hardware_bytes = XsmRangingService.hardware_buffer_bytes(tdoa.buffer_length)

    return ExperimentResult(
        experiment_id="ext-xsm",
        title="Software (XSM) vs hardware (MICA) tone-detection ranging",
        paper={
            "xsm_max_range_m": 10.0,
            "hardware_max_range_m": 20.0,
            "xsm_buffer_bytes_for_20m": 2048.0,
            "hardware_buffer_bytes": 500.0,
            "similar_accuracy_in_range": "yes",
        },
        measured={
            "xsm_max_range_m": xsm_range,
            "hardware_max_range_m": mica_range,
            "xsm_buffer_bytes": float(software_bytes),
            "hardware_buffer_bytes": float(hardware_bytes),
            "xsm_median_error_at_8m": xsm_median,
            "hardware_median_error_at_8m": mica_median,
        },
        checks=[
            ShapeCheck(
                "software path has shorter range than hardware path",
                xsm_range < mica_range,
                f"{xsm_range:.0f} vs {mica_range:.0f} m",
            ),
            ShapeCheck(
                "software buffers are several times larger",
                software_bytes >= 2 * hardware_bytes,
                f"{software_bytes} vs {hardware_bytes} bytes",
            ),
            ShapeCheck(
                "similar accuracy within range (both sub-meter medians)",
                xsm_median < 1.0 and mica_median < 1.0,
                f"{xsm_median:.2f} vs {mica_median:.2f} m",
            ),
        ],
    )


@register("ext-protocol")
def ext_protocol_cost(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Verify "two local data exchanges per node and one flood".

    Runs the distributed algorithm as a real protocol over the
    discrete-event radio simulator and counts broadcasts per phase.
    """
    rng = ensure_rng(seed)
    positions = square_grid(5, 5, spacing_m=10.0)
    ranges = gaussian_ranges(positions, max_range_m=16.0, sigma_m=0.1, rng=rng)
    config = DistributedConfig(min_spacing_m=10.0)
    result = run_distributed_protocol(
        ranges, positions, root=12, config=config, rng=rng
    )
    report = evaluate_localization(
        result.positions, positions, localized_mask=result.localized, align=True
    )
    n = len(positions)
    per_phase = result.messages_per_phase

    return ExperimentResult(
        experiment_id="ext-protocol",
        title="Distributed protocol message cost over a simulated radio",
        paper={
            "local_exchanges_per_node": 2.0,
            "floods": 1.0,
        },
        measured={
            "measurement_exchange_broadcasts": float(per_phase["measurement_exchange"]),
            "map_exchange_broadcasts": float(per_phase["map_exchange"]),
            "alignment_flood_broadcasts": float(per_phase["alignment_flood"]),
            "broadcasts_per_node": result.broadcasts_per_node,
            "average_error_m": report.average_error,
        },
        checks=[
            ShapeCheck(
                "exactly one broadcast per node per local exchange",
                per_phase["measurement_exchange"] == n
                and per_phase["map_exchange"] == n,
                f"{per_phase['measurement_exchange']}, {per_phase['map_exchange']} for n={n}",
            ),
            ShapeCheck(
                "flood costs at most one broadcast per node",
                per_phase["alignment_flood"] <= n,
                f"{per_phase['alignment_flood']} broadcasts",
            ),
            ShapeCheck(
                "protocol output is accurate",
                report.n_localized == n and report.average_error < 1.0,
                f"{report.n_localized}/{n}, {report.average_error:.2f} m",
            ),
        ],
    )


@register("ext-scaling")
def ext_scaling(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Centralized cost grows with n; distributed work stays local.

    "As more nodes are added, the number of terms in the error function
    increases, as does the number of local minima" — we measure the
    per-epoch cost of centralized LSS at two network sizes, and the
    size of the largest problem any single node solves in the
    distributed pipeline.
    """
    rng = ensure_rng(seed)
    sizes = (16, 64)
    per_epoch = {}
    for size in sizes:
        side = int(np.sqrt(size))
        positions = square_grid(side, side, spacing_m=10.0)
        ranges = gaussian_ranges(positions, max_range_m=16.0, sigma_m=0.33, rng=rng)
        config = LssConfig(min_spacing_m=10.0, restarts=1, max_epochs=300)
        start = time.perf_counter()
        result = lss_localize(ranges, size, config=config, rng=seed)
        elapsed = time.perf_counter() - start
        per_epoch[size] = elapsed / max(result.epochs_run, 1)

    positions = square_grid(8, 8, spacing_m=10.0)
    ranges = gaussian_ranges(positions, max_range_m=16.0, sigma_m=0.33, rng=rng)
    maps = build_local_maps(
        ranges, 64, config=DistributedConfig(min_spacing_m=10.0), rng=seed
    )
    largest_local = max(len(m.members) for m in maps.values())

    growth = per_epoch[64] / max(per_epoch[16], 1e-12)
    return ExperimentResult(
        experiment_id="ext-scaling",
        title="Centralized epoch cost vs distributed local problem size",
        paper={"centralized_does_not_scale": "yes"},
        measured={
            "epoch_cost_16_nodes_s": per_epoch[16],
            "epoch_cost_64_nodes_s": per_epoch[64],
            "epoch_cost_growth_16_to_64": growth,
            "largest_local_problem_nodes": float(largest_local),
        },
        checks=[
            ShapeCheck(
                "centralized per-epoch cost grows with network size",
                growth > 1.5,
                f"{growth:.1f}x from 16 to 64 nodes",
            ),
            ShapeCheck(
                "distributed nodes solve only neighborhood-sized problems",
                largest_local <= 16,
                f"largest local map has {largest_local} members (of 64)",
            ),
        ],
    )


@register("ext-aps")
def ext_aps_baselines(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """The related-work APS baselines, run instead of cited.

    Section 2: "The DV-hop and DV-distance techniques work well only
    for isotropic networks with uniform node density."  We run DV-hop
    on a uniform grid and on a C-shaped (anisotropic) cut of the same
    grid, and compare against LSS with actual range measurements.
    """
    from ..core import dv_hop_localize
    from ..deploy import spread_anchors

    rng = ensure_rng(seed)
    positions = square_grid(6, 6, spacing_m=10.0)
    n = len(positions)
    ranges = gaussian_ranges(positions, max_range_m=12.0, sigma_m=0.33, rng=rng)
    anchor_idx = spread_anchors(positions, 6)
    anchors = {int(i): positions[i] for i in anchor_idx}

    def evaluate_aps(result, truth):
        loc = result.localized & ~result.is_anchor
        report = evaluate_localization(result.positions[loc], truth[loc])
        return report.average_error

    iso_dvhop = evaluate_aps(dv_hop_localize(ranges, anchors, n), positions)

    # The 12 m range keeps only axis-aligned grid edges (degree ~3.7),
    # too sparse for random-start descent; seed from MDS-MAP as the
    # distributed pipeline does.
    from ..core import mds_map

    lss_init = mds_map(ranges.to_edge_list(), n)
    lss = lss_localize(
        ranges, n, config=LssConfig(min_spacing_m=10.0), initial=lss_init, rng=seed
    )
    iso_lss = evaluate_localization(lss.positions, positions, align=True).average_error

    # Anisotropic topology: carve a notch out of the grid (paths bend).
    keep = [
        i
        for i in range(n)
        if not (15.0 < positions[i][0] < 45.0 and positions[i][1] > 15.0)
    ]
    c_positions = positions[keep]
    c_ranges = gaussian_ranges(c_positions, max_range_m=12.0, sigma_m=0.33, rng=rng)
    c_anchor_idx = spread_anchors(c_positions, 6)
    c_anchors = {int(i): c_positions[i] for i in c_anchor_idx}
    aniso_dvhop = evaluate_aps(
        dv_hop_localize(c_ranges, c_anchors, len(c_positions)), c_positions
    )

    degradation = aniso_dvhop / max(iso_dvhop, 1e-9)
    return ExperimentResult(
        experiment_id="ext-aps",
        title="APS (DV-hop) baseline: isotropic vs anisotropic topologies",
        paper={
            "dv_hop_works_on_isotropic_networks": "yes",
            "dv_hop_degrades_on_anisotropic_layouts": "yes",
        },
        measured={
            "dv_hop_isotropic_error_m": iso_dvhop,
            "dv_hop_anisotropic_error_m": aniso_dvhop,
            "dv_hop_anisotropy_degradation": degradation,
            "lss_isotropic_error_m": iso_lss,
        },
        checks=[
            ShapeCheck(
                "DV-hop is usable on the isotropic grid (< half the spacing)",
                iso_dvhop < 5.0,
                f"{iso_dvhop:.2f} m",
            ),
            ShapeCheck(
                "DV-hop degrades >= 2x on the anisotropic topology",
                degradation >= 2.0,
                f"{iso_dvhop:.2f} -> {aniso_dvhop:.2f} m ({degradation:.1f}x)",
            ),
            ShapeCheck(
                "LSS with real ranges beats hop-count positioning",
                iso_lss < iso_dvhop,
                f"{iso_lss:.2f} vs {iso_dvhop:.2f} m",
            ),
        ],
    )


@register("ext-campaign")
def ext_campaign_statistics(seed: int = DEFAULT_SEED, store=None) -> ExperimentResult:
    """Monte-Carlo error statistics over randomized deployments.

    The paper reports single-campaign numbers; its qualitative claims
    (multilateration localizes accurately where enough anchors are in
    range) are really statements about the *distribution* over
    deployments and noise draws.  This driver runs the registered
    "uniform-multilateration" scenario through the store-backed campaign
    runner and checks the aggregate statistics are in the single-trial
    band — and exactly reproducible: the second run either replays the
    seed tree (no store) or reconstructs the campaign bit-identically
    from the content-addressed cache (with a store, doing zero
    simulation work — ``tests/test_scenarios.py`` pins that path).
    """
    from ..scenarios import get_scenario, run_scenario
    from ..store import aggregates_equal, records_equal

    spec = get_scenario("uniform-multilateration")
    result = run_scenario(spec, master_seed=seed, store=store)
    rerun = run_scenario(spec, master_seed=seed, store=store)
    agg = result.aggregate()
    mean_err = agg["mean_error_m"]["mean"]
    frac = agg["fraction_localized"]["mean"]
    reproducible = aggregates_equal(result, rerun) and records_equal(result, rerun)

    measured = {
        "n_trials": float(result.n_trials),
        "mean_error_m": mean_err,
        "median_error_m": agg["median_error_m"]["median"],
        "fraction_localized": frac,
        "trials_with_finite_error": agg["mean_error_m"]["n"],
    }
    if store is not None:
        measured["store_hits"] = float(store.stats.hits)
        measured["store_misses"] = float(store.stats.misses)

    return ExperimentResult(
        experiment_id="ext-campaign",
        title="Seeded Monte-Carlo campaign of randomized multilateration trials",
        paper={"localized_nodes_are_accurate": "yes"},
        measured=measured,
        checks=[
            ShapeCheck(
                "every trial localized a usable subset",
                agg["fraction_localized"]["min"] > 0.2,
                f"min fraction {agg['fraction_localized']['min']:.0%}",
            ),
            ShapeCheck(
                "campaign-mean error in the paper's accuracy band (< 2.5 m)",
                mean_err < 2.5,
                f"{mean_err:.2f} m over {result.n_trials} trials",
            ),
            ShapeCheck(
                "aggregates exactly reproducible from the master seed",
                reproducible,
                "",
            ),
        ],
        extras={"campaign": result, "spec": spec},
    )


@register("ext-sweep")
def ext_sweep(seed: int = DEFAULT_SEED, store=None) -> ExperimentResult:
    """Density x noise x anchor-fraction sweep through the scheduler.

    The ROADMAP's "as many scenarios as you can imagine" workload: one
    base scenario expanded over three axes (network density, ranging
    noise, anchor fraction) and every cell run through the adaptive
    campaign scheduler.  Well-behaved (dense) cells converge — 95% CI of
    the mean per-trial median localization error within a 20% relative
    half-width — long before the trial budget, while sparse cells (whose
    error distribution is heavy-tailed) run to the cap; the committed
    records of an early-stopped cell are a bit-identical prefix of the
    same-seed fixed-count campaign, which this driver verifies directly
    on the earliest-stopping cell.
    """
    from ..engine import CampaignResult, ConfidenceStop
    from ..scenarios import (
        AnchorSpec,
        DeploymentSpec,
        RangingSpec,
        ScenarioSpec,
        SolverSpec,
        run_scenario,
    )

    base = ScenarioSpec(
        scenario_id="ext-sweep",
        deployment=DeploymentSpec(
            kind="uniform", n_nodes=24, width_m=50.0, height_m=50.0, min_separation_m=4.0
        ),
        anchors=AnchorSpec(strategy="random", fraction=0.25),
        ranging=RangingSpec(model="gaussian", max_range_m=20.0, sigma_m=0.33),
        solver=SolverSpec(algorithm="multilateration"),
        n_trials=40,
    )
    specs = base.grid(
        {
            "deployment.n_nodes": [16, 32],
            "ranging.sigma_m": [0.1, 0.6],
            "anchors.fraction": [0.25, 0.4],
        }
    )
    stopping = ConfidenceStop(
        metric="median_error_m", tolerance=0.2, relative=True, min_trials=8
    )
    results = {
        spec.scenario_id: run_scenario(
            spec, master_seed=seed, stopping=stopping, store=store
        )
        for spec in specs
    }
    converged = {sid: r for sid, r in results.items() if r.converged}
    trials_run = sum(r.n_trials for r in results.values())
    budget = sum(spec.n_trials for spec in specs)

    # Prefix contract, verified end to end on the earliest-stopping cell:
    # rerun it as a fixed-count campaign and compare records/aggregates.
    prefix_ok = False
    if converged:
        earliest_id = min(converged, key=lambda sid: converged[sid].n_trials)
        early = converged[earliest_id]
        early_spec = next(s for s in specs if s.scenario_id == earliest_id)
        full = run_scenario(early_spec, master_seed=seed, store=store)
        from ..store import aggregates_equal, records_equal

        prefix = CampaignResult(
            master_seed=full.master_seed, records=full.records[: early.n_trials]
        )
        prefix_ok = records_equal(early, prefix) and aggregates_equal(early, prefix)

    # Qualitative shape: more noise -> more campaign-mean error, pooled
    # over the other two axes.
    def _pooled_mean_error(sigma: float) -> float:
        values = [
            r.aggregate()["mean_error_m"]["mean"]
            for sid, r in results.items()
            if f"ranging.sigma_m={sigma:g}" in sid
        ]
        return float(np.mean(values))

    low_noise = _pooled_mean_error(0.1)
    high_noise = _pooled_mean_error(0.6)

    measured = {
        "n_scenarios": float(len(specs)),
        "n_converged_early": float(
            sum(1 for r in converged.values() if r.trials_saved > 0)
        ),
        "trials_run": float(trials_run),
        "trial_budget": float(budget),
        "trials_saved_by_early_stopping": float(budget - trials_run),
        "pooled_error_low_noise_m": low_noise,
        "pooled_error_high_noise_m": high_noise,
    }
    return ExperimentResult(
        experiment_id="ext-sweep",
        title="Scenario sweep (density x noise x anchors) with early stopping",
        paper={"evaluation_is_statistics_over_randomized_trials": "yes"},
        measured=measured,
        checks=[
            ShapeCheck(
                "at least one sweep cell stops early",
                any(r.trials_saved > 0 for r in converged.values()),
                f"{measured['n_converged_early']:.0f}/{len(specs)} cells, "
                f"{budget - trials_run} trials saved",
            ),
            ShapeCheck(
                "early-stopped records are a bit-identical prefix of the "
                "fixed-count campaign",
                prefix_ok,
                "",
            ),
            ShapeCheck(
                "campaign-mean error grows with ranging noise",
                high_noise > low_noise,
                f"{low_noise:.2f} -> {high_noise:.2f} m",
            ),
        ],
        extras={"results": results, "specs": specs},
    )


@register("ext-distributed")
def ext_distributed_batched(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Batched distributed-LSS: the scalar pipeline's results, faster.

    The distributed algorithm (Section 4.3) is embarrassingly batchable
    in the simulator: a deployment's local maps are many small
    independent LSS problems and its pairwise transforms many small
    independent closed-form fits.  This driver runs the same town-scale
    deployment through the engine's stacked kernels
    (``solver="batched"``, the default) and through the per-problem
    scalar reference (``solver="scalar"``), and verifies the batched
    path is a faithful drop-in: every node localized, the same accuracy
    to solver tolerance, and a clear wall-clock win.
    """
    positions = town_layout(49, min_separation_m=6.0, rng=seed)
    ranges = gaussian_ranges(positions, max_range_m=22.0, sigma_m=0.33, rng=seed + 1)
    n = len(positions)
    centroid = positions.mean(axis=0)
    root = int(np.argmin(np.hypot(*(positions - centroid).T)))
    local_lss = LssConfig(restarts=3, max_epochs=400, perturbation_m=2.0)

    reports = {}
    timings = {}
    for solver in ("batched", "scalar"):
        config = DistributedConfig(
            local_lss=local_lss, min_spacing_m=6.0, solver=solver
        )
        start = time.perf_counter()
        result = distributed_localize(ranges, n, root, config=config, rng=seed)
        timings[solver] = time.perf_counter() - start
        reports[solver] = evaluate_localization(
            result.positions, positions, localized_mask=result.localized, align=True
        )

    batched, scalar = reports["batched"], reports["scalar"]
    speedup = timings["scalar"] / max(timings["batched"], 1e-9)
    error_gap = abs(batched.average_error - scalar.average_error)
    return ExperimentResult(
        experiment_id="ext-distributed",
        title="Batched vs scalar distributed-LSS pipeline (town scale)",
        paper={"distributed_algorithm_is_a_faithful_dropin": "yes"},
        measured={
            "batched_error_m": batched.average_error,
            "scalar_error_m": scalar.average_error,
            "batched_time_s": timings["batched"],
            "scalar_time_s": timings["scalar"],
            "speedup": speedup,
        },
        checks=[
            ShapeCheck(
                "both paths localize the same, near-complete node set",
                batched.n_localized == scalar.n_localized
                and batched.n_localized >= 0.9 * n,
                f"{batched.n_localized}/{n} batched, {scalar.n_localized}/{n} scalar",
            ),
            ShapeCheck(
                "batched accuracy matches scalar within tolerance",
                error_gap < 0.75,
                f"{batched.average_error:.2f} vs {scalar.average_error:.2f} m",
            ),
            # Wall-clock ratios are noise-bound on shared CI runners
            # (same policy as the benchmark speedup floors): the timing
            # check is informational there and enforced everywhere else.
            ShapeCheck(
                "batched path is clearly faster",
                speedup >= 1.5 or bool(os.environ.get("CI")),
                f"{speedup:.1f}x ({timings['scalar']:.2f} s -> {timings['batched']:.2f} s)",
            ),
        ],
    )
