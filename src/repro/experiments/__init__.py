"""Per-figure experiment drivers.

Importing this package populates the experiment registry; use
:func:`run_experiment` / :func:`run_all` or access drivers directly
(e.g. ``experiments.fig18_lss_constrained()``).
"""

from typing import Dict, Optional

from . import extension_experiments, localization_experiments, ranging_experiments  # noqa: F401 (registry)
from .base import ExperimentResult, ShapeCheck, all_experiments, get_experiment
from .report import render_markdown, render_text, summary_counts
from .common import DEFAULT_SEED
from .extension_experiments import (
    ext_aps_baselines,
    ext_campaign_statistics,
    ext_distributed_batched,
    ext_protocol_cost,
    ext_scaling,
    ext_sweep,
    ext_xsm_software_detector,
)
from .localization_experiments import (
    fig11_intersection_consistency,
    fig12_multilateration_small,
    fig14_multilateration_sparse,
    fig16_multilateration_extended,
    fig18_lss_constrained,
    fig19_lss_unconstrained,
    fig20_multilateration_random,
    fig21_lss_random,
    fig22_lss_random_unconstrained,
    fig23_convergence,
    fig24_distributed_sparse,
    fig25_distributed_extended,
)
from .ranging_experiments import (
    fig2_baseline_ranging,
    fig4_median_filter,
    fig5_grid,
    fig6_error_histogram,
    fig7_bidirectional,
    fig8_distance_scatter,
    fig10_dft_filter,
    text_chirp_length,
    text_clock_sync,
    text_max_range,
)


def run_experiment(experiment_id: str, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig18"``)."""
    return get_experiment(experiment_id)(seed)


def run_all(seed: int = DEFAULT_SEED) -> Dict[str, ExperimentResult]:
    """Run every registered experiment; returns id -> result."""
    return {eid: fn(seed) for eid, fn in sorted(all_experiments().items())}


__all__ = [
    "ExperimentResult",
    "ShapeCheck",
    "DEFAULT_SEED",
    "all_experiments",
    "get_experiment",
    "run_experiment",
    "run_all",
    "render_markdown",
    "render_text",
    "summary_counts",
    "fig2_baseline_ranging",
    "fig4_median_filter",
    "fig5_grid",
    "fig6_error_histogram",
    "fig7_bidirectional",
    "fig8_distance_scatter",
    "fig10_dft_filter",
    "fig11_intersection_consistency",
    "fig12_multilateration_small",
    "fig14_multilateration_sparse",
    "fig16_multilateration_extended",
    "fig18_lss_constrained",
    "fig19_lss_unconstrained",
    "fig20_multilateration_random",
    "fig21_lss_random",
    "fig22_lss_random_unconstrained",
    "fig23_convergence",
    "fig24_distributed_sparse",
    "fig25_distributed_extended",
    "text_chirp_length",
    "text_clock_sync",
    "text_max_range",
    "ext_xsm_software_detector",
    "ext_protocol_cost",
    "ext_scaling",
    "ext_aps_baselines",
    "ext_campaign_statistics",
    "ext_distributed_batched",
    "ext_sweep",
]
