"""Drivers for the ranging-service figures (Section 3).

fig2  — baseline service errors in the urban deployment
fig4  — baseline service + median filtering
fig5  — the offset grid deployment pattern
fig6  — refined-service error histogram on grass
fig7  — the same restricted to bidirectional pairs
fig8  — measured vs actual distance scatter
fig10 — the sliding-DFT software tone detector
text-range — maximum/reliable detection ranges per environment
text-sync  — clock-sync error contribution
text-chirp — chirp-length ablation (8 ms vs 64 ms vs 4 ms)
"""

from __future__ import annotations

import numpy as np

from .._validation import ensure_rng
from ..acoustics import ChirpPattern, get_environment, synthesize_waveform
from ..core.evaluation import error_histogram
from ..deploy import offset_grid, uniform_random_layout
from ..network.clock import sync_ranging_error_m
from ..ranging import (
    RangingService,
    bidirectional_filter,
    median_filter,
    run_campaign,
    tone_detect_waveform,
)
from .base import ExperimentResult, ShapeCheck, register
from .common import DEFAULT_SEED, grass_campaign_edges, grid_positions


def _signed_errors(measurements) -> np.ndarray:
    return measurements.signed_errors()


@register("fig2")
def fig2_baseline_ranging(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Baseline (single-chirp, first-hit) ranging in the urban site.

    The paper deployed 60 motes among buildings and recorded distances
    up to 30 m; "many of the measurements with >1 m errors are
    underestimates" caused by noise and echoes of earlier chirps.
    """
    rng = ensure_rng(seed)
    env = get_environment("urban")
    service = RangingService(environment=env, mode="baseline").calibrate(rng=rng)
    positions = uniform_random_layout(
        60, width_m=70.0, height_m=50.0, min_separation_m=5.0, rng=rng
    )
    measurements = run_campaign(positions, service, rounds=1, rng=rng)
    errors = _signed_errors(measurements)
    big = errors[np.abs(errors) > 1.0]
    frac_big = big.size / errors.size
    frac_under_among_big = float((big < 0).mean()) if big.size else 0.0
    max_distance = max(m.true_distance for m in measurements)

    return ExperimentResult(
        experiment_id="fig2",
        title="Baseline ranging errors, urban 60-node deployment",
        paper={
            "max_recorded_distance_m": 30.0,
            "large_errors_mostly_underestimates": "yes",
        },
        measured={
            "n_measurements": float(errors.size),
            "max_recorded_distance_m": float(max_distance),
            "fraction_abs_error_gt_1m": float(frac_big),
            "fraction_underestimates_among_large": frac_under_among_big,
        },
        checks=[
            ShapeCheck(
                "baseline produces a substantial large-error population",
                0.05 <= frac_big <= 0.8,
                f"{frac_big:.0%} of errors exceed 1 m",
            ),
            ShapeCheck(
                "large errors are mostly underestimates",
                frac_under_among_big > 0.5,
                f"{frac_under_among_big:.0%} of >1 m errors are negative",
            ),
            ShapeCheck(
                "measurements recorded to roughly 30 m",
                max_distance >= 20.0,
                f"max distance {max_distance:.1f} m",
            ),
        ],
        extras={"errors": errors},
    )


@register("fig4")
def fig4_median_filter(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Baseline ranging with median filtering of up to five measurements.

    Statistical filtering "is quite effective at discounting
    uncorrelated errors caused by random, one-time events": the
    large-error fraction should drop substantially versus fig2.
    """
    rng = ensure_rng(seed)
    env = get_environment("urban")
    service = RangingService(environment=env, mode="baseline").calibrate(rng=rng)
    positions = uniform_random_layout(
        60, width_m=70.0, height_m=50.0, min_separation_m=5.0, rng=rng
    )
    raw = run_campaign(positions, service, rounds=5, rng=rng)
    raw_errors = _signed_errors(raw)
    filtered = median_filter(raw, max_rounds=5)
    filtered_errors = _signed_errors(filtered)

    raw_big = float((np.abs(raw_errors) > 1.0).mean())
    filt_big = float((np.abs(filtered_errors) > 1.0).mean())
    improvement = raw_big / filt_big if filt_big > 0 else float("inf")

    # Median filtering only has leverage where several measurements
    # exist and the link is genuinely measurable; links beyond acoustic
    # range produce garbage every round and no statistic can save them
    # (the paper's Figure 4 still shows those).  Quantify the effect on
    # the well-measured sub-population.
    well_raw = []
    well_filtered = []
    for (i, j) in raw.directed_pairs:
        history = raw.get(i, j)
        if len(history) < 3 or history[0].true_distance > 20.0:
            continue
        well_raw.extend(m.error for m in history)
        for m in filtered.get(i, j):
            well_filtered.append(m.error)
    well_raw = np.asarray(well_raw)
    well_filtered = np.asarray(well_filtered)
    wr_big = float((np.abs(well_raw) > 1.0).mean()) if well_raw.size else 0.0
    wf_big = float((np.abs(well_filtered) > 1.0).mean()) if well_filtered.size else 0.0
    well_improvement = wr_big / wf_big if wf_big > 0 else float("inf")

    return ExperimentResult(
        experiment_id="fig4",
        title="Baseline ranging with median filtering (<=5 measurements)",
        paper={"filtering_reduces_outliers": "yes"},
        measured={
            "raw_fraction_gt_1m": raw_big,
            "median_filtered_fraction_gt_1m": filt_big,
            "outlier_reduction_factor": float(improvement),
            "well_measured_raw_fraction_gt_1m": wr_big,
            "well_measured_filtered_fraction_gt_1m": wf_big,
            "well_measured_reduction_factor": float(well_improvement),
        },
        checks=[
            ShapeCheck(
                "median filtering reduces the overall large-error fraction",
                filt_big <= raw_big,
                f"{raw_big:.1%} -> {filt_big:.1%}",
            ),
            ShapeCheck(
                "on well-measured links (>=3 rounds, in range) the "
                "large-error fraction drops >= 2x",
                well_improvement >= 2.0,
                f"{wr_big:.1%} -> {wf_big:.1%} ({well_improvement:.1f}x)",
            ),
        ],
        extras={"raw_errors": raw_errors, "filtered_errors": filtered_errors},
    )


@register("fig5")
def fig5_grid(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """The 7x7 offset grid with 9 m / 10 m nearest-neighbor spacings."""
    grid = offset_grid()
    from ..core.geometry import pairwise_distances

    dist = pairwise_distances(grid)
    np.fill_diagonal(dist, np.inf)
    nearest = np.sort(np.unique(np.round(dist.min(axis=1), 2)))
    second = sorted({round(float(np.sort(row)[1]), 2) for row in dist})
    spacings = sorted(set(np.round(np.partition(dist.ravel(), 96)[:200], 2)))
    has_9 = any(abs(s - 9.0) < 0.01 for s in nearest)
    diag = float(np.hypot(9.0, 4.5))
    has_10 = bool(np.any(np.isclose(dist, diag, atol=0.01)))

    return ExperimentResult(
        experiment_id="fig5",
        title="Offset grid deployment pattern (9 m / ~10 m spacing)",
        paper={"n_slots": 49.0, "spacing_a_m": 9.0, "spacing_b_m": 10.0},
        measured={
            "n_slots": float(grid.shape[0]),
            "spacing_a_m": float(nearest[0]),
            "spacing_b_m": diag,
        },
        checks=[
            ShapeCheck("49 grid slots", grid.shape[0] == 49, f"{grid.shape[0]} slots"),
            ShapeCheck("9 m same-column spacing present", has_9, str(nearest[:3])),
            ShapeCheck(
                "~10 m offset-diagonal spacing present",
                has_10 and abs(diag - 10.0) < 0.25,
                f"diagonal {diag:.2f} m",
            ),
        ],
        extras={"positions": grid},
    )


@register("fig6")
def fig6_error_histogram(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Refined-service error histogram on grass (46 nodes, 3 rounds).

    Expected features (Section 3.6.1): a near-zero-mean bell within
    +/-30 cm; a right-skewed cluster of moderate overestimates; rare
    large-magnitude errors (the paper saw up to ~11 m).
    """
    raw, _ = grass_campaign_edges(n_nodes=46, seed=seed)
    errors = _signed_errors(raw)
    core = errors[np.abs(errors) <= 0.3]
    frac_core = core.size / errors.size
    mean_core = float(core.mean())
    moderate = errors[(np.abs(errors) > 0.3) & (np.abs(errors) <= 3.0)]
    frac_over_moderate = float((moderate > 0).mean()) if moderate.size else 0.0
    frac_large = float((np.abs(errors) > 1.0).mean())
    max_abs = float(np.abs(errors).max())
    edges_hist, counts = error_histogram(errors, bin_width=0.1)

    return ExperimentResult(
        experiment_id="fig6",
        title="Refined ranging error histogram, 46 nodes on grass",
        paper={
            "core_band_m": 0.3,
            "core_mean_m": 0.0,
            "max_abs_error_m": 11.0,
            "moderate_errors_skew_right": "yes",
        },
        measured={
            "n_measurements": float(errors.size),
            "fraction_in_core_band": float(frac_core),
            "core_mean_m": mean_core,
            "fraction_abs_gt_1m": frac_large,
            "max_abs_error_m": max_abs,
            "fraction_overestimates_among_moderate": frac_over_moderate,
        },
        checks=[
            ShapeCheck(
                "most errors in the +/-30 cm bell",
                frac_core >= 0.6,
                f"{frac_core:.0%} within +/-30 cm",
            ),
            ShapeCheck(
                "bell is near zero-mean",
                abs(mean_core) <= 0.1,
                f"core mean {mean_core*100:.1f} cm",
            ),
            ShapeCheck(
                "moderate errors cluster right (overestimation)",
                frac_over_moderate >= 0.5,
                f"{frac_over_moderate:.0%} of 0.3-3 m errors positive",
            ),
            ShapeCheck(
                "rare large-magnitude errors exist",
                0.0 < frac_large < 0.25 and max_abs > 3.0,
                f"{frac_large:.1%} beyond 1 m, max {max_abs:.1f} m",
            ),
        ],
        extras={"errors": errors, "hist_edges": edges_hist, "hist_counts": counts},
    )


@register("fig7")
def fig7_bidirectional(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Error histogram restricted to bidirectional pairs.

    "Fortunately, most of these [large] errors are eliminated with the
    bidirectional consistency check."
    """
    raw, _ = grass_campaign_edges(n_nodes=46, seed=seed)
    all_errors = _signed_errors(raw)
    filtered = bidirectional_filter(raw, keep_unpaired=False)
    bi_errors = _signed_errors(filtered)
    p95_before = float(np.percentile(np.abs(all_errors), 95))
    p95_after = float(np.percentile(np.abs(bi_errors), 95)) if bi_errors.size else 0.0
    frac_large_before = float((np.abs(all_errors) > 1.0).mean())
    frac_large_after = float((np.abs(bi_errors) > 1.0).mean()) if bi_errors.size else 0.0

    return ExperimentResult(
        experiment_id="fig7",
        title="Ranging errors for bidirectional pairs only",
        paper={"large_errors_mostly_eliminated": "yes"},
        measured={
            "p95_abs_error_before_m": p95_before,
            "p95_abs_error_after_m": p95_after,
            "fraction_gt_1m_before": frac_large_before,
            "fraction_gt_1m_after": frac_large_after,
        },
        checks=[
            ShapeCheck(
                "large-error fraction cut >= 2x by the bidirectional check",
                frac_large_after <= frac_large_before / 2.0,
                f"{frac_large_before:.1%} -> {frac_large_after:.1%}",
            ),
            ShapeCheck(
                "95th-percentile |error| lands in the sub-meter regime",
                p95_after <= max(1.0, p95_before / 3.0),
                f"p95 {p95_before:.2f} -> {p95_after:.2f} m",
            ),
        ],
        extras={"all_errors": all_errors, "bidirectional_errors": bi_errors},
    )


@register("fig8")
def fig8_distance_scatter(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Measured vs actual distance: outliers grow with distance.

    "Large-magnitude errors are more common at longer distances" —
    lower SNR and a longer pre-arrival window for false detections.
    """
    raw, _ = grass_campaign_edges(n_nodes=46, seed=seed)
    pairs = [(m.true_distance, m.distance) for m in raw]
    actual = np.array([p[0] for p in pairs])
    measured = np.array([p[1] for p in pairs])
    errors = measured - actual
    near = np.abs(errors[actual <= 10.0])
    far = np.abs(errors[actual > 14.0])
    near_rate = float((near > 1.0).mean()) if near.size else 0.0
    far_rate = float((far > 1.0).mean()) if far.size else 0.0

    return ExperimentResult(
        experiment_id="fig8",
        title="Measured vs actual distances on grass",
        paper={"outlier_rate_grows_with_distance": "yes"},
        measured={
            "outlier_rate_below_10m": near_rate,
            "outlier_rate_above_14m": far_rate,
        },
        checks=[
            ShapeCheck(
                "far links have a higher large-error rate than near links",
                far_rate > near_rate,
                f"{near_rate:.1%} (<=10 m) vs {far_rate:.1%} (>14 m)",
            ),
        ],
        extras={"actual": actual, "measured": measured},
    )


@register("fig10")
def fig10_dft_filter(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Sliding-DFT tone detection on clean and noisy waveforms.

    The paper's demonstration: on the noisy signal "three of the four
    chirps are correctly detected, with no false positives".
    """
    rng = ensure_rng(seed)
    fs = 16_000.0
    clean = synthesize_waveform(
        num_chirps=4, frequency_hz=4_000.0, sampling_rate_hz=fs, amplitude=500.0
    )
    noisy = synthesize_waveform(
        num_chirps=4,
        frequency_hz=4_000.0,
        sampling_rate_hz=fs,
        amplitude=500.0,
        noise_std=300.0,
        rng=rng,
    )
    clean_onsets, clean_energy = tone_detect_waveform(clean)
    noisy_onsets, noisy_energy = tone_detect_waveform(noisy)
    period = int(0.012 * fs)
    start = int(0.004 * fs)
    true_onsets = np.array([start + k * period for k in range(4)])

    def match(onsets):
        hits = 0
        false_pos = 0
        for onset in onsets:
            if np.min(np.abs(true_onsets - onset)) <= 40:
                hits += 1
            else:
                false_pos += 1
        return hits, false_pos

    clean_hits, clean_fp = match(clean_onsets)
    noisy_hits, noisy_fp = match(noisy_onsets)

    return ExperimentResult(
        experiment_id="fig10",
        title="Sliding-DFT software tone detector (clean vs noisy)",
        paper={
            "clean_chirps_detected": 4.0,
            "noisy_chirps_detected": 3.0,
            "noisy_false_positives": 0.0,
        },
        measured={
            "clean_chirps_detected": float(clean_hits),
            "clean_false_positives": float(clean_fp),
            "noisy_chirps_detected": float(noisy_hits),
            "noisy_false_positives": float(noisy_fp),
        },
        checks=[
            ShapeCheck("all 4 clean chirps detected", clean_hits == 4, f"{clean_hits}/4"),
            ShapeCheck("no clean false positives", clean_fp == 0, f"{clean_fp}"),
            ShapeCheck(
                "noisy detection >= 3 of 4 chirps",
                noisy_hits >= 3,
                f"{noisy_hits}/4",
            ),
            ShapeCheck("no noisy false positives", noisy_fp == 0, f"{noisy_fp}"),
        ],
        extras={
            "clean_energy": clean_energy,
            "noisy_energy": noisy_energy,
            "clean_onsets": clean_onsets,
            "noisy_onsets": noisy_onsets,
        },
    )


@register("text-range")
def text_max_range(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Maximum and reliable detection ranges, grass vs pavement.

    Section 3.6.2: grass ~20 m max / ~10 m reliable (80-85% of chirp
    sequences detected); pavement ~35 m max / ~25 m reliable.  The
    reproduction criterion is the *ordering and rough factor* between
    the environments, not the absolute meters.
    """
    from ..ranging import TdoaConfig

    rng = ensure_rng(seed)
    results = {}
    for env_name in ("grass", "pavement"):
        env = get_environment(env_name)
        # The range study needs a buffer that can hold arrivals well
        # beyond the field services' 22 m operating range.
        service = RangingService(
            environment=env, tdoa=TdoaConfig(max_range_m=55.0)
        ).calibrate(rng=rng)
        distances = np.arange(4.0, 52.0, 2.0)
        probs = np.array(
            [
                service.detection_probability(
                    float(d), attempts=30, within_m=3.0, rng=rng
                )
                for d in distances
            ]
        )
        detectable = distances[probs > 0.05]
        reliable = distances[probs >= 0.8]
        results[env_name] = {
            "max_range_m": float(detectable.max()) if detectable.size else 0.0,
            "reliable_range_m": float(reliable.max()) if reliable.size else 0.0,
            "curve": (distances, probs),
        }

    grass_max = results["grass"]["max_range_m"]
    grass_rel = results["grass"]["reliable_range_m"]
    pave_max = results["pavement"]["max_range_m"]
    pave_rel = results["pavement"]["reliable_range_m"]

    return ExperimentResult(
        experiment_id="text-range",
        title="Detection range by environment (grass vs pavement)",
        paper={
            "grass_max_range_m": 20.0,
            "grass_reliable_range_m": 10.0,
            "pavement_max_range_m": 35.0,
            "pavement_reliable_range_m": 25.0,
        },
        measured={
            "grass_max_range_m": grass_max,
            "grass_reliable_range_m": grass_rel,
            "pavement_max_range_m": pave_max,
            "pavement_reliable_range_m": pave_rel,
        },
        checks=[
            ShapeCheck(
                "pavement max range exceeds grass by >= 1.5x",
                pave_max >= 1.5 * grass_max,
                f"{pave_max:.0f} vs {grass_max:.0f} m",
            ),
            ShapeCheck(
                "grass max range in the 14-26 m band",
                14.0 <= grass_max <= 26.0,
                f"{grass_max:.0f} m",
            ),
            ShapeCheck(
                "pavement reliable range in the 20-35 m band",
                20.0 <= pave_rel <= 35.0,
                f"{pave_rel:.0f} m",
            ),
            ShapeCheck(
                "reliable < max in both environments",
                grass_rel <= grass_max and pave_rel <= pave_max,
                "",
            ),
        ],
        extras={name: r["curve"] for name, r in results.items()},
    )


@register("text-sync")
def text_clock_sync(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Clock synchronization contributes negligible ranging error.

    "The maximum clock rate difference between a pair of nodes is on
    the order of 50 microseconds per second, which translates to
    maximum ranging error of about 0.15 cm for a distance of 30 m."
    """
    err_30 = sync_ranging_error_m(30.0)
    err_10 = sync_ranging_error_m(10.0)
    return ExperimentResult(
        experiment_id="text-sync",
        title="Clock-sync contribution to ranging error",
        paper={"error_at_30m_cm": 0.15},
        measured={
            "error_at_30m_cm": err_30 * 100.0,
            "error_at_10m_cm": err_10 * 100.0,
        },
        checks=[
            ShapeCheck(
                "sync error at 30 m is ~0.15 cm",
                abs(err_30 * 100.0 - 0.15) < 0.02,
                f"{err_30*100:.3f} cm",
            ),
            ShapeCheck(
                "sync error grows linearly with distance",
                abs(err_30 / err_10 - 3.0) < 1e-9,
                "",
            ),
        ],
    )


@register("text-chirp")
def text_chirp_length(seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Chirp-length ablation: 8 ms is the sweet spot.

    Section 3.6: 64 ms chirps caused many late-detection overestimates
    (up to the chirp length); below 8 ms the speaker cannot power up,
    reducing detections.  For 8 ms chirps the maximum overestimation
    error was ~3 m.
    """
    rng = ensure_rng(seed)
    env = get_environment("grass")
    stats = {}
    for label, duration in (("4ms", 0.004), ("8ms", 0.008), ("64ms", 0.064)):
        pattern = ChirpPattern(chirp_duration_s=duration)
        service = RangingService(environment=env, pattern=pattern).calibrate(rng=rng)
        estimates = []
        attempts = 0
        for d in (8.0, 12.0, 15.0):
            for _ in range(40):
                attempts += 1
                link = service.link_simulator.draw_link(rng)
                est = service.measure(d, link=link, rng=rng)
                if est is not None:
                    estimates.append(est - d)
        errors = np.array(estimates)
        over = errors[errors > 0.3]
        stats[label] = {
            "detection_rate": errors.size / attempts,
            "max_overestimate_m": float(errors.max()) if errors.size else 0.0,
            "overestimate_rate": float(over.size / errors.size) if errors.size else 0.0,
        }

    return ExperimentResult(
        experiment_id="text-chirp",
        title="Chirp-length ablation (4 / 8 / 64 ms)",
        paper={
            "overestimate_cap_8ms_m": 3.0,
            "long_chirps_overestimate_more": "yes",
            "short_chirps_detect_less": "yes",
        },
        measured={
            "max_overestimate_8ms_m": stats["8ms"]["max_overestimate_m"],
            "max_overestimate_64ms_m": stats["64ms"]["max_overestimate_m"],
            "detection_rate_4ms": stats["4ms"]["detection_rate"],
            "detection_rate_8ms": stats["8ms"]["detection_rate"],
        },
        checks=[
            ShapeCheck(
                "8 ms overestimates capped near one chirp length (~3 m)",
                stats["8ms"]["max_overestimate_m"] <= 3.5,
                f"{stats['8ms']['max_overestimate_m']:.2f} m",
            ),
            ShapeCheck(
                "64 ms chirps allow much larger overestimates",
                stats["64ms"]["max_overestimate_m"]
                > 2.0 * max(stats["8ms"]["max_overestimate_m"], 0.5),
                f"{stats['64ms']['max_overestimate_m']:.2f} m",
            ),
            ShapeCheck(
                "4 ms chirps detect less often than 8 ms",
                stats["4ms"]["detection_rate"] < stats["8ms"]["detection_rate"],
                f"{stats['4ms']['detection_rate']:.0%} vs {stats['8ms']['detection_rate']:.0%}",
            ),
        ],
        extras={"stats": stats},
    )
