"""Experiment driver infrastructure.

Every figure (and quantitative in-text claim) of the paper has a driver
function returning an :class:`ExperimentResult`: the paper's reported
numbers, our measured numbers, and a list of *shape checks* — the
qualitative assertions that constitute successful reproduction (who
wins, by roughly what factor, where the transitions are).  Benchmarks
print the paper-vs-measured table; tests assert the checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["ShapeCheck", "ExperimentResult", "register", "get_experiment", "all_experiments"]


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative reproduction criterion.

    Attributes
    ----------
    name : str
        What is being checked (e.g. "constraint beats no-constraint by
        >= 3x").
    passed : bool
        Whether the criterion held in this run.
    detail : str
        Human-readable evidence.
    """

    name: str
    passed: bool
    detail: str = ""


@dataclass
class ExperimentResult:
    """Outcome of one experiment driver.

    Attributes
    ----------
    experiment_id : str
        Figure/claim identifier ("fig18", "text-range", ...).
    title : str
        One-line description.
    paper : dict
        Metric name -> the paper's reported value (float or str).
    measured : dict
        Metric name -> our measured value.
    checks : list of ShapeCheck
        The reproduction criteria.
    extras : dict
        Auxiliary arrays (histograms, traces, scatters) for examples
        and plots; excluded from the summary table.
    """

    experiment_id: str
    title: str
    paper: Dict[str, Any] = field(default_factory=dict)
    measured: Dict[str, Any] = field(default_factory=dict)
    checks: List[ShapeCheck] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict, repr=False)

    @property
    def passed(self) -> bool:
        """True when every shape check held."""
        return all(c.passed for c in self.checks)

    def summary(self) -> str:
        """Multi-line paper-vs-measured report."""
        lines = [f"[{self.experiment_id}] {self.title}"]
        keys = sorted(set(self.paper) | set(self.measured))
        for key in keys:
            paper_v = self.paper.get(key, "-")
            ours_v = self.measured.get(key, "-")
            paper_s = f"{paper_v:.3f}" if isinstance(paper_v, float) else str(paper_v)
            ours_s = f"{ours_v:.3f}" if isinstance(ours_v, float) else str(ours_v)
            lines.append(f"  {key:<42s} paper={paper_s:<12s} measured={ours_s}")
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            detail = f" ({check.detail})" if check.detail else ""
            lines.append(f"  [{status}] {check.name}{detail}")
        return "\n".join(lines)


_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator adding a driver to the experiment registry."""

    def decorator(fn):
        _REGISTRY[experiment_id] = fn
        fn.experiment_id = experiment_id
        return fn

    return decorator


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a driver by id; raises KeyError with the known ids."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> Dict[str, Callable[..., ExperimentResult]]:
    """The full id -> driver registry (copy)."""
    return dict(_REGISTRY)
