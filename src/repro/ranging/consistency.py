"""Consistency checking across nodes (Section 3.5, "Consistency Checking").

Two checks, both operating on (already statistically filtered)
measurement sets:

* **Bidirectional** — "bidirectional range estimates between a pair of
  nodes are discarded if they are inconsistent."  Errors correlated on a
  single node (faulty hardware, persistent wide-band noise at one
  microphone) show up as disagreement between the two directions.
* **Triangle** — "if three nodes have measurements to each other, we use
  the triangle inequality to identify inconsistent one[s]": a triple
  where two sides sum to less than the third contains at least one bad
  estimate.

As the paper cautions, neither check can prove *which* measurement is
wrong, and discarding may be worse than keeping when data is scarce —
hence the ``keep_unpaired`` and ``drop_policy`` knobs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Set, Tuple

import numpy as np

from .._validation import check_non_negative
from ..core.measurements import MeasurementSet
from ..errors import ValidationError

__all__ = [
    "bidirectional_filter",
    "triangle_filter",
    "consistency_pipeline",
]


def bidirectional_filter(
    measurements: MeasurementSet,
    *,
    tolerance_m: float = 1.0,
    keep_unpaired: bool = True,
) -> MeasurementSet:
    """Drop pairs whose two directed estimates disagree.

    Parameters
    ----------
    measurements : MeasurementSet
        Input; multi-round estimates are collapsed with the median
        before comparison.
    tolerance_m : float
        Maximum allowed |d_ij - d_ji|.
    keep_unpaired : bool
        Whether to keep pairs measured in only one direction ("sometimes
        it may be beneficial to retain suspicious measurements due to
        the scarcity of available data").  Figure 7 sets this False —
        it restricts the histogram to bidirectional pairs only.
    """
    check_non_negative(tolerance_m, "tolerance_m")
    reduced = measurements.reduce("median")
    out = MeasurementSet()
    for (i, j) in reduced.undirected_pairs:
        forward = reduced.distances(i, j)
        backward = reduced.distances(j, i)
        if forward.size and backward.size:
            if abs(float(forward[0]) - float(backward[0])) <= tolerance_m:
                for m in reduced.get(i, j) + reduced.get(j, i):
                    out.add(m)
        elif keep_unpaired:
            for m in reduced.get(i, j) + reduced.get(j, i):
                out.add(m)
    return out


def triangle_filter(
    measurements: MeasurementSet,
    *,
    slack_m: float = 1.0,
    drop_policy: str = "greedy",
) -> MeasurementSet:
    """Flag or drop measurements violating the triangle inequality.

    For every node triple with all three undirected distances available,
    check ``a + b + slack >= c`` for each permutation.  Violating
    triples implicate all three edges; since the check "cannot identify
    which of the measurements is incorrect with complete certainty",
    two policies are offered:

    * ``"greedy"`` (default) — repeatedly drop the single edge
      implicated by the most violating triangles until no violations
      remain.  A bad edge violates several triangles at once while each
      of its innocent partners is implicated only through it, so the
      iterative argmax isolates culprits with minimal collateral damage
      (over- *and* under-estimates alike).
    * ``"suspect"`` — drop only the *longest* edge of each violating
      triple (provably the culprit for a single overestimate, but wrong
      for underestimates).
    * ``"all"`` — drop every edge of every violating triple.
    """
    check_non_negative(slack_m, "slack_m")
    if drop_policy not in ("greedy", "suspect", "all"):
        raise ValidationError("drop_policy must be 'greedy', 'suspect' or 'all'")
    reduced = measurements.symmetrized()
    pairs = reduced.undirected_pairs
    dist: Dict[Tuple[int, int], float] = {
        (i, j): float(reduced.distances(i, j)[0]) for (i, j) in pairs
    }
    nodes = reduced.node_ids
    neighbor_map: Dict[int, Set[int]] = {n: set() for n in nodes}
    for (i, j) in pairs:
        neighbor_map[i].add(j)
        neighbor_map[j].add(i)

    # Enumerate all triangles (triples with all three edges measured).
    triangles: List[Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int]]] = []
    for a in nodes:
        for b, c in combinations(sorted(neighbor_map[a]), 2):
            if a >= b:  # each triangle once, via its smallest vertex
                continue
            if c not in neighbor_map[b]:
                continue
            triangles.append(
                (
                    (min(a, b), max(a, b)),
                    (min(a, c), max(a, c)),
                    (min(b, c), max(b, c)),
                )
            )

    def violating(triple) -> bool:
        lengths = sorted(dist[e] for e in triple)
        return lengths[0] + lengths[1] + slack_m < lengths[2]

    bad_edges: Set[Tuple[int, int]] = set()
    if drop_policy == "greedy":
        active = list(triangles)
        while True:
            votes: Dict[Tuple[int, int], int] = {}
            for triple in active:
                if any(e in bad_edges for e in triple):
                    continue
                if violating(triple):
                    for e in triple:
                        votes[e] = votes.get(e, 0) + 1
            if not votes:
                break
            worst = max(votes, key=lambda e: (votes[e], e))
            bad_edges.add(worst)
    else:
        for triple in triangles:
            if not violating(triple):
                continue
            if drop_policy == "suspect":
                longest = max(triple, key=lambda e: dist[e])
                bad_edges.add(longest)
            else:  # "all"
                bad_edges.update(triple)

    def edge_ok(m) -> bool:
        key = (min(m.source, m.receiver), max(m.source, m.receiver))
        return key not in bad_edges

    return measurements.filter(edge_ok)


def consistency_pipeline(
    measurements: MeasurementSet,
    *,
    bidirectional_tolerance_m: float = 1.0,
    keep_unpaired: bool = True,
    triangle_slack_m: float = 1.0,
) -> MeasurementSet:
    """The paper's full filtering pipeline: statistical reduction,
    bidirectional check, then triangle check."""
    filtered = bidirectional_filter(
        measurements,
        tolerance_m=bidirectional_tolerance_m,
        keep_unpaired=keep_unpaired,
    )
    return triangle_filter(filtered, slack_m=triangle_slack_m)
