"""Sliding-DFT software tone detector (Figure 9 of the paper).

For WSN platforms without a hardware tone detector (e.g. Crossbow's XSM
mote) the paper designs a streaming filter that tracks the amplitude of
two beacon frequency bands — 1/4 and 1/6 of the sampling rate — chosen
so the DFT coefficients are multiplications by {0, ±1, ±2} only (the
complex roots of unity at those frequencies have rational coordinates up
to a factor of sqrt(3), folded into the output scaling).

:class:`SlidingToneFilter` is a faithful port of the Figure 9 pseudocode
(36-sample circular buffer, incremental real/imaginary accumulators);
:func:`tone_detect_waveform` applies it over a waveform, subtracts an
automatic noise estimate, and reports detections — reproducing the
clean/noisy demonstration of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ValidationError

__all__ = ["SlidingToneFilter", "filter_waveform", "tone_detect_waveform"]

_WINDOW = 36


class SlidingToneFilter:
    """Streaming two-band tone filter over a 36-sample window.

    Call :meth:`update` once per raw sample; it returns the pair of band
    energies ``(E_fs/4, E_fs/6)`` exactly as the Figure 9 pseudocode's
    ``filter(sample)`` does: ``re4^2 + im4^2`` and ``(re6^2 + 3 im6^2)/2``.

    The incremental trick: when a new sample enters, the oldest sample
    (36 back) is subtracted, and the accumulators are updated with the
    *difference*, using the position-dependent coefficient schedule for
    phase index ``n mod 4`` (quarter-rate band) and ``k mod 6``
    (sixth-rate band).
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Return the filter to its initial all-zero state (init())."""
        self._samples = np.zeros(_WINDOW)
        self._n = 0  # position in the window / quarter-band phase
        self._k = 0  # sixth-band phase
        self._re4 = 0.0
        self._im4 = 0.0
        self._re6 = 0.0
        self._im6 = 0.0

    def update(self, sample: float) -> Tuple[float, float]:
        """Push one raw sample; return (quarter-band, sixth-band) energy."""
        sample = float(sample)
        # Subtract the leaving sample, store the entering one.
        delta = sample - self._samples[self._n]
        self._samples[self._n] = sample

        phase4 = self._n % 4
        if phase4 == 0:
            self._re4 += delta
        elif phase4 == 1:
            self._im4 += delta
        elif phase4 == 2:
            self._re4 -= delta
        else:
            self._im4 -= delta

        phase6 = self._k
        if phase6 == 0:
            self._re6 += 2.0 * delta
        elif phase6 == 1:
            self._re6 += delta
            self._im6 += delta
        elif phase6 == 2:
            self._re6 -= delta
            self._im6 += delta
        elif phase6 == 3:
            self._re6 -= 2.0 * delta
        elif phase6 == 4:
            self._re6 -= delta
            self._im6 -= delta
        else:  # phase6 == 5
            self._re6 += delta
            self._im6 -= delta

        self._n = (self._n + 1) % _WINDOW
        self._k = (self._k + 1) % 6
        quarter = self._re4**2 + self._im4**2
        sixth = (self._re6**2 + 3.0 * self._im6**2) / 2.0
        return quarter, sixth


def filter_waveform(waveform) -> np.ndarray:
    """Run the sliding filter over a full waveform.

    Returns an array of shape ``(n, 2)`` with the two band energies per
    sample.
    """
    wave = np.asarray(waveform, dtype=float)
    if wave.ndim != 1:
        raise ValidationError("waveform must be 1-dimensional")
    filt = SlidingToneFilter()
    out = np.empty((wave.shape[0], 2))
    for i, sample in enumerate(wave):
        out[i] = filt.update(sample)
    return out


def tone_detect_waveform(
    waveform,
    *,
    band: int = 0,
    threshold_factor: float = 4.0,
    min_gap: int = _WINDOW,
) -> Tuple[np.ndarray, np.ndarray]:
    """Detect tone bursts in a raw waveform with the sliding filter.

    Implements the paper's noise-isolation idea: "it is useful to
    automatically isolate the amplitude of noise and subtract it from
    the DFT output; a positive result indicates detection of a tone.  We
    evaluate DFT for all frequency components and average the results to
    calculate this amplitude" (Section 3.7).  Here the noise reference
    for one band is the median energy of that band over the recording —
    a robust stand-in for the all-component average that works in the
    same spirit and keeps the routine streaming-friendly.

    Parameters
    ----------
    waveform : array-like
        Raw samples.
    band : {0, 1}
        Which band to detect in: 0 = fs/4, 1 = fs/6.
    threshold_factor : float
        A sample is "tone present" when its band energy exceeds
        ``threshold_factor`` times the noise reference.
    min_gap : int
        Detections closer than this many samples are merged into one
        burst (the filter window smears energy over ~36 samples).

    Returns
    -------
    onsets : ndarray
        Sample indices where distinct tone bursts begin.
    energies : ndarray
        The filtered energy track for the chosen band.
    """
    if band not in (0, 1):
        raise ValidationError("band must be 0 (fs/4) or 1 (fs/6)")
    if threshold_factor <= 0:
        raise ValidationError("threshold_factor must be positive")
    energies = filter_waveform(waveform)[:, band]
    noise_ref = float(np.median(energies))
    if noise_ref <= 0.0:
        noise_ref = float(np.mean(energies)) or 1e-12
    above = energies > threshold_factor * noise_ref
    onsets: List[int] = []
    last = -10 * min_gap
    for idx in np.nonzero(above)[0]:
        if idx - last >= min_gap:
            onsets.append(int(idx))
        last = int(idx)
    return np.asarray(onsets, dtype=np.int64), energies
