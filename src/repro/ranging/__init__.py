"""The acoustic ranging service (Section 3): TDoA arithmetic, detection
algorithms, the signal-level link simulator, campaign orchestration,
statistical filtering, consistency checks and synthetic generators."""

from .campaign import CampaignConfig, RangingCampaign, run_campaign
from .constraints import feasible_distance_filter, grid_distance_set, min_spacing_filter
from .consistency import bidirectional_filter, consistency_pipeline, triangle_filter
from .detection import accumulate_chirps, detect_all_windows, detect_signal, first_hit
from .dft import SlidingToneFilter, filter_waveform, tone_detect_waveform
from .filtering import (
    confidence_weighted_edges,
    limit_rounds,
    median_filter,
    mode_filter,
    statistical_filter,
)
from .link import AcousticLinkSimulator, LinkRealization
from .service import DetectionParams, RangingService
from .synthetic import (
    StatisticalErrorModel,
    augment_with_gaussian_ranges,
    eligible_pairs,
    gaussian_ranges,
    statistical_campaign,
)
from .tdoa import TdoaConfig, tdoa_distance
from .xsm import XsmRangingService

__all__ = [
    "TdoaConfig",
    "tdoa_distance",
    "accumulate_chirps",
    "detect_signal",
    "detect_all_windows",
    "first_hit",
    "SlidingToneFilter",
    "filter_waveform",
    "tone_detect_waveform",
    "AcousticLinkSimulator",
    "LinkRealization",
    "DetectionParams",
    "RangingService",
    "CampaignConfig",
    "RangingCampaign",
    "run_campaign",
    "median_filter",
    "mode_filter",
    "statistical_filter",
    "confidence_weighted_edges",
    "limit_rounds",
    "bidirectional_filter",
    "triangle_filter",
    "consistency_pipeline",
    "StatisticalErrorModel",
    "eligible_pairs",
    "gaussian_ranges",
    "augment_with_gaussian_ranges",
    "statistical_campaign",
    "min_spacing_filter",
    "grid_distance_set",
    "feasible_distance_filter",
    "XsmRangingService",
]
