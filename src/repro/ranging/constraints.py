"""Deployment-constraint filtering (Section 3.5.1).

"Some sensor network deployments offer additional information about
sensor placement.  For example, a deployment may have a requirement of
minimum node separation ...  On a regular grid deployment, a set of
possible inter-node distances can be deduced from the size and shape of
the grid configuration.  These data provide additional constraints that
consistent ranging measurements should satisfy."

The paper lists this as planned future filtering; this module implements
it:

* :func:`min_spacing_filter` — drop measurements shorter than the
  deployment's minimum node separation (physically impossible).
* :func:`feasible_distance_filter` — on a known-geometry deployment,
  keep only measurements close to one of the feasible inter-node
  distances (optionally snapping the estimate to the nearest feasible
  value).
* :func:`grid_distance_set` — the feasible distances of an offset-grid
  deployment, up to a maximum range.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from .._validation import as_positions, check_non_negative, check_positive
from ..core.geometry import pairwise_distances
from ..core.measurements import MeasurementSet
from ..errors import ValidationError

__all__ = [
    "min_spacing_filter",
    "grid_distance_set",
    "feasible_distance_filter",
]


def min_spacing_filter(
    measurements: MeasurementSet, min_spacing_m: float
) -> MeasurementSet:
    """Drop measurements below the deployment's minimum node separation.

    A range estimate shorter than the closest two nodes can physically
    be is necessarily a detection artifact (noise firing early in the
    buffer).  A small slack (10% of the spacing) tolerates genuine
    near-minimum links measured slightly short.
    """
    check_positive(min_spacing_m, "min_spacing_m")
    floor = 0.9 * min_spacing_m
    return measurements.filter(lambda m: m.distance >= floor)


def grid_distance_set(
    positions, max_range_m: float, *, resolution_m: float = 0.01
) -> np.ndarray:
    """The sorted set of feasible inter-node distances of a deployment.

    For a surveyed/regular deployment the achievable distances form a
    small discrete set (9, ~10.06, 13.5, ... for the paper's offset
    grid).  Distances are deduplicated at *resolution_m* granularity.
    """
    pts = as_positions(positions, "positions")
    check_positive(max_range_m, "max_range_m")
    check_positive(resolution_m, "resolution_m")
    dist = pairwise_distances(pts)
    iu = np.triu_indices(pts.shape[0], k=1)
    values = dist[iu]
    values = values[(values > 0) & (values <= max_range_m)]
    quantized = np.unique(np.round(values / resolution_m).astype(np.int64))
    return quantized * resolution_m


def feasible_distance_filter(
    measurements: MeasurementSet,
    feasible_distances,
    *,
    tolerance_m: float = 1.0,
    snap: bool = False,
) -> MeasurementSet:
    """Keep measurements near a feasible deployment distance.

    Parameters
    ----------
    measurements : MeasurementSet
        Input estimates.
    feasible_distances : array-like
        The achievable inter-node distances (e.g. from
        :func:`grid_distance_set`).
    tolerance_m : float
        Maximum deviation from the nearest feasible distance.
    snap : bool
        Replace each surviving estimate with its nearest feasible
        distance (exploits the survey geometry fully; appropriate only
        when the deployment followed the plan exactly).
    """
    feasible = np.sort(np.asarray(feasible_distances, dtype=float))
    if feasible.size == 0:
        raise ValidationError("feasible_distances must be non-empty")
    if np.any(feasible < 0):
        raise ValidationError("feasible distances must be non-negative")
    check_non_negative(tolerance_m, "tolerance_m")

    out = MeasurementSet()
    for m in measurements:
        idx = int(np.searchsorted(feasible, m.distance))
        candidates = []
        if idx < feasible.size:
            candidates.append(feasible[idx])
        if idx > 0:
            candidates.append(feasible[idx - 1])
        nearest = min(candidates, key=lambda f: abs(f - m.distance))
        if abs(nearest - m.distance) > tolerance_m:
            continue
        distance = float(nearest) if snap else m.distance
        out.add_distance(
            m.source,
            m.receiver,
            distance,
            true_distance=m.true_distance,
            round_index=m.round_index,
        )
    return out
