"""Signal recording and detection (Figure 3 of the paper).

The refined ranging service improves detection confidence by summing the
binary tone-detector outputs of several chirps *at the same buffer
offsets* (each chirp is re-synchronized by its own radio message, so a
genuine acoustic arrival lands at the same offset every time while
random noise does not).  Threshold detection then finds the beginning of
the chirp: a sample's accumulated count must reach the threshold ``T``,
and at least ``k`` of ``m`` consecutive samples must do so.

``accumulate_chirps`` is the paper's ``record-signal`` and
``detect_signal`` its ``detect-signal``; both are faithful 0-indexed
translations of the pseudocode, vectorized with numpy.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import ValidationError

__all__ = [
    "accumulate_chirps",
    "detect_signal",
    "detect_all_windows",
    "first_hit",
]


def accumulate_chirps(chirp_streams: Iterable[np.ndarray]) -> np.ndarray:
    """Sum per-chirp binary detector streams into one count buffer.

    Equivalent of ``record-signal``: each stream is the tone detector's
    binary output for one chirp, already aligned to the chirp's own
    radio sync message.  All streams must have equal length.  Counts are
    clipped at 15 — the service packs accumulation counts into 4 bits
    per buffer offset (Section 3.6.2).
    """
    streams = [np.asarray(s) for s in chirp_streams]
    if not streams:
        raise ValidationError("at least one chirp stream is required")
    length = streams[0].shape[0]
    for s in streams:
        if s.ndim != 1:
            raise ValidationError("chirp streams must be 1-dimensional")
        if s.shape[0] != length:
            raise ValidationError("chirp streams must have equal length")
        if np.any((s != 0) & (s != 1)):
            raise ValidationError("chirp streams must be binary (0/1)")
    counts = np.zeros(length, dtype=np.int64)
    for s in streams:
        counts += s.astype(np.int64)
    return np.minimum(counts, 15)


def detect_signal(samples: np.ndarray, k: int, m: int, threshold: int) -> int:
    """Find the beginning of the acoustic signal in a count buffer.

    Faithful translation of the paper's ``detect-signal``: returns the
    smallest index ``s`` such that

    * ``samples[s] >= threshold`` (the window starts on a hit), and
    * at least ``k`` of the ``m`` samples ``samples[s : s + m]`` reach
      the threshold,

    or ``-1`` when no such window exists.  ``k``, ``m`` and
    ``threshold`` correspond to the paper's pattern-identification
    parameters (the field experiments used ``T = 2``, ``k = 6``,
    ``m = 32`` with 10 accumulated chirps — Section 3.6).
    """
    samples = np.asarray(samples)
    if samples.ndim != 1:
        raise ValidationError("samples must be 1-dimensional")
    if m < 1 or k < 1:
        raise ValidationError("k and m must be >= 1")
    if k > m:
        raise ValidationError(f"k ({k}) cannot exceed window size m ({m})")
    if threshold < 1:
        raise ValidationError("threshold must be >= 1")
    n = samples.shape[0]
    if n < m:
        return -1
    hits = (samples >= threshold).astype(np.int64)
    # counts[s] = number of hits in samples[s : s + m]
    window_counts = np.convolve(hits, np.ones(m, dtype=np.int64), mode="valid")
    candidates = np.nonzero((window_counts >= k) & (hits[: n - m + 1] == 1))[0]
    if candidates.size == 0:
        return -1
    return int(candidates[0])


def detect_all_windows(samples: np.ndarray, k: int, m: int, threshold: int) -> np.ndarray:
    """All window-start indices satisfying the detection criterion.

    Diagnostic companion to :func:`detect_signal` (which returns only
    the first); useful for studying echo-induced secondary detections.
    """
    samples = np.asarray(samples)
    if samples.ndim != 1:
        raise ValidationError("samples must be 1-dimensional")
    if m < 1 or k < 1 or k > m or threshold < 1:
        raise ValidationError("invalid detection parameters")
    n = samples.shape[0]
    if n < m:
        return np.zeros(0, dtype=np.int64)
    hits = (samples >= threshold).astype(np.int64)
    window_counts = np.convolve(hits, np.ones(m, dtype=np.int64), mode="valid")
    return np.nonzero((window_counts >= k) & (hits[: n - m + 1] == 1))[0]


def first_hit(samples: np.ndarray, threshold: int = 1) -> int:
    """Index of the first sample reaching *threshold*, or -1.

    This is the *baseline* service's naive detection (Section 3.3): the
    hardware tone detector's first positive output is taken as the
    beginning of the chirp — the behaviour whose unreliability motivates
    the refined algorithm.
    """
    samples = np.asarray(samples)
    if samples.ndim != 1:
        raise ValidationError("samples must be 1-dimensional")
    if threshold < 1:
        raise ValidationError("threshold must be >= 1")
    hits = np.nonzero(samples >= threshold)[0]
    if hits.size == 0:
        return -1
    return int(hits[0])
