"""Deployment-scale ranging campaigns.

Orchestrates the ranging service over a full deployment the way the
field experiments ran (Section 3.6): several *rounds*, each node in turn
emitting one chirp sequence while every other node within plausible
acoustic range attempts detection.  Persistent per-link and per-node
draws (hardware profiles, ground-cover gain, echo paths) are held fixed
across rounds so errors correlate exactly the way the paper's filtering
pipeline expects.

The output is a :class:`~repro.core.measurements.MeasurementSet` with
ground truth attached, ready for the filtering/consistency stages and
for localization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .._validation import as_positions, check_positive, ensure_rng
from ..acoustics.hardware import HardwarePopulation, HardwareProfile
from ..core.measurements import MeasurementSet
from ..network.radio import RadioModel
from .link import LinkRealization
from .service import RangingService

__all__ = ["CampaignConfig", "RangingCampaign", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of a ranging campaign.

    Attributes
    ----------
    rounds : int
        Measurement rounds; each round is one chirp sequence per node
        (Figure 6 reports three rounds of bidirectional = six rounds of
        directed measurements).
    attempt_range_m : float or None
        Pairs farther apart than this skip the acoustic attempt (the
        radio coordination still happens, but no detector buffer would
        ever fire).  Defaults to 1.3x the TDoA max range — attempts just
        beyond the design range still run and simply fail to detect.
    radio : RadioModel
        Radio used for the coordination messages; a lost sync message
        skips that round's attempt for the affected receiver.
    """

    rounds: int = 3
    attempt_range_m: Optional[float] = None
    radio: RadioModel = field(default_factory=RadioModel)

    def __post_init__(self):
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.attempt_range_m is not None:
            check_positive(self.attempt_range_m, "attempt_range_m")


class RangingCampaign:
    """Stateful campaign runner: persistent hardware and link draws.

    Parameters
    ----------
    positions : array-like of shape (n, 2)
        Ground-truth node positions.
    service : RangingService
        The (calibrated) ranging service to exercise.
    config : CampaignConfig
        Campaign parameters.
    hardware_population : HardwarePopulation
        Distribution of per-node hardware profiles.
    rng : None, int or Generator
        Randomness source.
    """

    def __init__(
        self,
        positions,
        service: RangingService,
        *,
        config: Optional[CampaignConfig] = None,
        hardware_population: Optional[HardwarePopulation] = None,
        rng=None,
    ) -> None:
        self.positions = as_positions(positions, "positions")
        self.service = service
        self.config = config if config is not None else CampaignConfig()
        self._rng = ensure_rng(rng)
        population = hardware_population if hardware_population is not None else HardwarePopulation()
        self.hardware: Dict[int, HardwareProfile] = {
            i: population.sample(self._rng) for i in range(self.positions.shape[0])
        }
        self._links: Dict[Tuple[int, int], LinkRealization] = {}

    @property
    def n_nodes(self) -> int:
        return int(self.positions.shape[0])

    def _attempt_range(self) -> float:
        if self.config.attempt_range_m is not None:
            return self.config.attempt_range_m
        return 1.3 * self.service.tdoa.max_range_m

    def link_for(self, i: int, j: int) -> LinkRealization:
        """Persistent link realization for the undirected pair (i, j)."""
        key = (min(i, j), max(i, j))
        if key not in self._links:
            self._links[key] = self.service.link_simulator.draw_link(self._rng)
        return self._links[key]

    def true_distance(self, i: int, j: int) -> float:
        diff = self.positions[i] - self.positions[j]
        return float(np.hypot(diff[0], diff[1]))

    def run(self) -> MeasurementSet:
        """Execute all rounds; returns the raw directed measurement set."""
        measurements = MeasurementSet()
        limit = self._attempt_range()
        n = self.n_nodes
        for round_index in range(self.config.rounds):
            for source in range(n):
                for receiver in range(n):
                    if receiver == source:
                        continue
                    distance = self.true_distance(source, receiver)
                    if distance > limit:
                        continue
                    # The per-chirp radio sync message must arrive for
                    # the receiver to record this source's sequence.
                    if not self.config.radio.delivers(distance, self._rng):
                        continue
                    estimate = self.service.measure(
                        distance,
                        source_hw=self.hardware[source],
                        receiver_hw=self.hardware[receiver],
                        link=self.link_for(source, receiver),
                        rng=self._rng,
                    )
                    if estimate is None:
                        continue
                    measurements.add_distance(
                        source,
                        receiver,
                        estimate,
                        true_distance=distance,
                        round_index=round_index,
                    )
        return measurements


def run_campaign(
    positions,
    service: RangingService,
    *,
    rounds: int = 3,
    rng=None,
    hardware_population: Optional[HardwarePopulation] = None,
) -> MeasurementSet:
    """Convenience wrapper: build and run a campaign in one call."""
    campaign = RangingCampaign(
        positions,
        service,
        config=CampaignConfig(rounds=rounds),
        hardware_population=hardware_population,
        rng=rng,
    )
    return campaign.run()
