"""Ranging on tone-detector-less platforms (Section 3.7, XSM motes).

Platforms without the MICA's hardware PLL tone detector must detect the
chirp in *raw sampled audio*.  The paper's solution is the Figure 9
sliding-DFT filter; this module builds the full ranging path on top of
it:

1. simulate the raw microphone waveform for a link (chirp tone at the
   propagation-delayed offset, scaled by the received level, plus
   Gaussian ambient noise at the environment's noise floor),
2. run the sliding-DFT filter and find the first tone onset,
3. convert the onset sample to a distance.

As the paper notes, the software detector "needs to store a sum of raw
sampled values rather than a sum of 1-bit output values", so its memory
cost is far larger (2 kB per 20 m of range at 16 kHz vs <500 B for the
hardware path) and — with energy detection over a short filter window —
its reliable range is shorter (~10 m observed on the XSM).  The
``text-xsm`` ablation benchmark measures both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .._validation import check_non_negative, check_positive, ensure_rng
from ..acoustics.environment import Environment
from ..acoustics.propagation import LOUD_SPEAKER_SOURCE_LEVEL_DB, received_level_db
from ..acoustics.signal import DEFAULT_SAMPLING_RATE_HZ
from .dft import tone_detect_waveform
from .tdoa import TdoaConfig

__all__ = ["XsmRangingService"]

#: The XSM path samples raw audio; amplitude for a 0 dB-SNR signal.
_REFERENCE_AMPLITUDE = 100.0


@dataclass
class XsmRangingService:
    """Software-tone-detector ranging for XSM-class platforms.

    Parameters
    ----------
    environment : Environment
        Acoustic environment preset (propagation + noise floor).
    tdoa : TdoaConfig
        Buffer geometry.  The XSM buffer stores raw samples, so memory
        is ``2 bytes * buffer_length`` (see :meth:`buffer_bytes`).
    chirp_duration_s : float
        Chirp length; the XSM experiments used the same 8 ms chirps.
    tone_fraction : float
        Chirp frequency as a fraction of the sampling rate.  The
        Figure 9 filter is built for 1/4 (default) and 1/6.
    threshold_factor : float
        Detection threshold over the automatic noise reference.  Band
        energies are chi-square-ish with heavy right tails, so the
        factor must sit far above the median to keep the false-onset
        rate negligible over a ~1000-sample buffer; 50 puts the
        detection cutoff near +9 dB SNR.  Combined with single-chirp
        energy detection (no multi-chirp accumulation), this reproduces
        the XSM's shorter observed range.
    source_level_db : float
        Speaker output power.
    """

    environment: Environment
    tdoa: TdoaConfig = field(default_factory=TdoaConfig)
    chirp_duration_s: float = 0.008
    tone_fraction: float = 0.25
    threshold_factor: float = 50.0
    source_level_db: float = LOUD_SPEAKER_SOURCE_LEVEL_DB

    def __post_init__(self):
        check_positive(self.chirp_duration_s, "chirp_duration_s")
        if self.tone_fraction not in (0.25, 1.0 / 6.0):
            raise ValueError(
                "tone_fraction must be 0.25 or 1/6 (the Figure 9 filter's bands)"
            )
        check_positive(self.threshold_factor, "threshold_factor")

    # ------------------------------------------------------------------
    # Waveform simulation
    # ------------------------------------------------------------------

    def simulate_waveform(
        self,
        distance_m: float,
        *,
        link_gain_db: float = 0.0,
        rng=None,
    ) -> np.ndarray:
        """Raw microphone samples for one chirp at *distance_m*.

        Signal amplitude follows the received level relative to the
        noise floor: a tone at SNR ``s`` dB is synthesized with
        amplitude ``ref * 10^(s/20)`` over unit-std noise scaled to
        ``ref``.
        """
        check_non_negative(distance_m, "distance_m")
        rng = ensure_rng(rng)
        n = self.tdoa.buffer_length
        fs = self.tdoa.sampling_rate_hz
        wave = rng.normal(0.0, _REFERENCE_AMPLITUDE, n)
        level = float(
            received_level_db(
                distance_m,
                self.environment,
                source_level_db=self.source_level_db,
                link_gain_db=link_gain_db,
            )
        )
        snr_db = level - self.environment.noise_floor_db
        amplitude = _REFERENCE_AMPLITUDE * 10.0 ** (snr_db / 20.0)
        start = self.tdoa.index_from_distance(distance_m)
        length = max(1, int(round(self.chirp_duration_s * fs)))
        stop = min(n, start + length)
        if start < n:
            t = np.arange(stop - start)
            wave[start:stop] += amplitude * np.sin(
                2.0 * math.pi * self.tone_fraction * t
            )
        return wave

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def measure(
        self,
        distance_m: float,
        *,
        link_gain_db: float = 0.0,
        rng=None,
    ) -> Optional[float]:
        """One ranging attempt; returns a distance estimate or None."""
        wave = self.simulate_waveform(
            distance_m, link_gain_db=link_gain_db, rng=rng
        )
        band = 0 if self.tone_fraction == 0.25 else 1
        onsets, _ = tone_detect_waveform(
            wave, band=band, threshold_factor=self.threshold_factor
        )
        if onsets.size == 0:
            return None
        # The filter's 36-sample window delays the energy peak; the
        # onset index already marks the first crossing, which trails
        # the true arrival by roughly half a window.
        index = max(0, int(onsets[0]) - 18)
        return self.tdoa.distance_from_index(index)

    def detection_probability(
        self,
        distance_m: float,
        *,
        attempts: int = 30,
        within_m: float = 3.0,
        draw_link_gain: bool = True,
        rng=None,
    ) -> float:
        """Monte-Carlo probability of a correct detection.

        With *draw_link_gain* (default), each attempt draws a per-link
        ground-cover gain from the environment, matching the hardware
        path's Monte-Carlo protocol.
        """
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        rng = ensure_rng(rng)
        hits = 0
        for _ in range(attempts):
            gain = (
                float(rng.normal(0.0, self.environment.ground_variation_db))
                if draw_link_gain
                else 0.0
            )
            estimate = self.measure(distance_m, link_gain_db=gain, rng=rng)
            if estimate is not None and abs(estimate - distance_m) <= within_m:
                hits += 1
        return hits / attempts

    # ------------------------------------------------------------------
    # Resource accounting (Section 3.7's memory comparison)
    # ------------------------------------------------------------------

    def buffer_bytes(self, bits_per_sample: int = 16) -> int:
        """RAM needed for the raw-sample buffer.

        "To achieve a maximum range of 20 m, a 2 kB buffer is required
        with a sampling rate of 16 kHz" — i.e. ~1 byte per sample at
        reduced precision; default assumes 16-bit samples.
        """
        if bits_per_sample < 1:
            raise ValueError("bits_per_sample must be >= 1")
        return (self.tdoa.buffer_length * bits_per_sample + 7) // 8

    @staticmethod
    def hardware_buffer_bytes(buffer_length: int, bits_per_offset: int = 4) -> int:
        """RAM for the MICA hardware-detector path (4-bit counters)."""
        if buffer_length < 0 or bits_per_offset < 1:
            raise ValueError("invalid buffer parameters")
        return (buffer_length * bits_per_offset + 7) // 8
