"""Statistical filtering of repeated range measurements.

Section 3.5 ("Statistical Filtering"): assuming uncorrelated errors,
multiple measurements per node pair are collapsed with the median or the
mode — "the mode operation is more resistant to the effects of
uncorrelated outliers than the median, but it needs more measurements to
be effective".  Figure 4 shows the baseline service with median
filtering of up to five measurements.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.measurements import EdgeList, MeasurementSet
from ..errors import ValidationError

__all__ = [
    "median_filter",
    "mode_filter",
    "statistical_filter",
    "limit_rounds",
    "confidence_weighted_edges",
]


def limit_rounds(measurements: MeasurementSet, max_rounds: int) -> MeasurementSet:
    """Keep only the first *max_rounds* rounds of measurements.

    Figure 4 applies median filtering "of up to five measurements" —
    this helper reproduces the cap.
    """
    if max_rounds < 1:
        raise ValidationError("max_rounds must be >= 1")
    return measurements.filter(lambda m: m.round_index < max_rounds)


def median_filter(measurements: MeasurementSet, *, max_rounds: Optional[int] = None) -> MeasurementSet:
    """Collapse each directed pair's estimates to their median."""
    if max_rounds is not None:
        measurements = limit_rounds(measurements, max_rounds)
    return measurements.reduce("median")


def mode_filter(measurements: MeasurementSet, *, max_rounds: Optional[int] = None) -> MeasurementSet:
    """Collapse each directed pair's estimates to their (binned) mode."""
    if max_rounds is not None:
        measurements = limit_rounds(measurements, max_rounds)
    return measurements.reduce("mode")


def statistical_filter(
    measurements: MeasurementSet,
    *,
    mode_threshold: int = 5,
) -> MeasurementSet:
    """Paper-style adaptive filter: median for few estimates, mode for many.

    "Depending on the number of measurements, we take the median or mode
    value of the measurements" — pairs with at least *mode_threshold*
    estimates use the mode, the rest the median.
    """
    if mode_threshold < 1:
        raise ValidationError("mode_threshold must be >= 1")
    out = MeasurementSet()
    for (i, j) in measurements.directed_pairs:
        values = measurements.distances(i, j)
        subset = MeasurementSet(measurements.get(i, j))
        statistic = "mode" if values.size >= mode_threshold else "median"
        reduced = subset.reduce(statistic)
        for m in reduced:
            out.add(m)
    return out


def confidence_weighted_edges(
    measurements: MeasurementSet,
    *,
    bidirectional_weight: float = 1.0,
    repeated_weight: float = 0.5,
    single_weight: float = 0.15,
    agreement_tolerance_m: float = 1.0,
) -> EdgeList:
    """Export an edge list with per-measurement confidence weights.

    Section 4.2.1: "weighting distance measurements according to their
    confidence helps limit the effect of measurement errors on
    localization results.  Statistical entities (e.g., standard
    deviation) can make a good choice for such weights."  This helper
    grades each undirected pair by the strength of its evidence:

    * **bidirectional_weight** — both directions measured and their
      medians agree within *agreement_tolerance_m* (strongest evidence:
      two independent detectors concur);
    * **repeated_weight** — one direction only, but several rounds whose
      spread stays within the tolerance;
    * **single_weight** — a single uncorroborated estimate (exactly the
      population where noise-burst garbage hides).

    Bidirectional pairs whose directions *disagree* are dropped outright
    (same rule as :func:`repro.ranging.consistency.bidirectional_filter`).
    """
    if not 0 <= single_weight <= repeated_weight <= bidirectional_weight:
        raise ValidationError(
            "weights must satisfy 0 <= single <= repeated <= bidirectional"
        )
    if agreement_tolerance_m < 0:
        raise ValidationError("agreement_tolerance_m must be non-negative")
    pairs = []
    dists = []
    weights = []
    for (i, j) in measurements.undirected_pairs:
        forward = measurements.distances(i, j)
        backward = measurements.distances(j, i)
        both = np.concatenate([forward, backward])
        if forward.size and backward.size:
            if abs(np.median(forward) - np.median(backward)) > agreement_tolerance_m:
                continue  # inconsistent pair: discard
            weight = bidirectional_weight
        elif both.size >= 2 and np.ptp(both) <= agreement_tolerance_m:
            weight = repeated_weight
        else:
            weight = single_weight
        pairs.append((i, j))
        dists.append(float(np.median(both)))
        weights.append(weight)
    if not pairs:
        return EdgeList(
            pairs=np.zeros((0, 2), dtype=np.int64),
            distances=np.zeros(0),
            weights=np.zeros(0),
        )
    return EdgeList(
        pairs=np.asarray(pairs, dtype=np.int64),
        distances=np.asarray(dists),
        weights=np.asarray(weights),
    )
