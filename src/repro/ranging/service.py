"""The acoustic ranging service (baseline and refined variants).

Combines the link simulator with the detection algorithms to produce
distance estimates, mirroring Section 3 of the paper:

* **baseline** (Section 3.3) — a single chirp, detection = first binary
  hit of the hardware tone detector.  Unreliable: noise before the
  arrival yields underestimates, missed arrivals yield overestimates
  from echoes or later noise (Figure 2).
* **refined** (Section 3.5) — a pattern of chirps accumulated per
  buffer offset, ``k``-of-``m`` threshold detection (Figure 3), plus a
  per-environment calibration offset.

The service measures one *directed* link per call; campaign-level
orchestration (rounds, node pairs, persistent link draws) lives in
:mod:`repro.ranging.campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from .._validation import check_positive, ensure_rng
from ..acoustics.environment import Environment
from ..acoustics.hardware import HardwareProfile
from ..acoustics.signal import ChirpPattern
from ..errors import CalibrationError, ValidationError
from .detection import detect_signal, first_hit
from .link import AcousticLinkSimulator, LinkRealization
from .tdoa import TdoaConfig

__all__ = ["DetectionParams", "RangingService"]


@dataclass(frozen=True)
class DetectionParams:
    """Threshold-detection parameters of the refined service.

    The field experiments used ``threshold = 2`` with at least ``k = 6``
    of ``m = 32`` consecutive samples (Section 3.6): low thresholds suit
    high-attenuation environments at the cost of some false-positive
    vulnerability.
    """

    threshold: int = 2
    k: int = 6
    m: int = 32

    def __post_init__(self):
        if self.threshold < 1 or self.k < 1 or self.m < 1:
            raise ValidationError("detection parameters must be >= 1")
        if self.k > self.m:
            raise ValidationError("k cannot exceed m")


@dataclass
class RangingService:
    """Simulated acoustic ranging service for one environment.

    Parameters
    ----------
    environment : Environment
        Acoustic environment preset.
    mode : {"refined", "baseline"}
        Which detection pipeline to run.
    pattern : ChirpPattern
        Chirp pattern (ignored in baseline mode, which sends one chirp).
    detection : DetectionParams
        Refined-mode threshold parameters.
    tdoa : TdoaConfig
        Buffer geometry; carry calibration offsets here.
    link_simulator : AcousticLinkSimulator or None
        Custom link simulator; built from the other parameters if None.
    """

    environment: Environment
    mode: str = "refined"
    pattern: ChirpPattern = field(default_factory=ChirpPattern)
    detection: DetectionParams = field(default_factory=DetectionParams)
    tdoa: TdoaConfig = field(default_factory=TdoaConfig)
    link_simulator: Optional[AcousticLinkSimulator] = None

    def __post_init__(self):
        if self.mode not in ("refined", "baseline"):
            raise ValidationError(f"mode must be 'refined' or 'baseline'; got {self.mode!r}")
        if self.link_simulator is None:
            self.link_simulator = AcousticLinkSimulator(
                environment=self.environment,
                pattern=self.pattern,
                tdoa=self.tdoa,
            )

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def measure(
        self,
        distance_m: float,
        *,
        source_hw: Optional[HardwareProfile] = None,
        receiver_hw: Optional[HardwareProfile] = None,
        link: Optional[LinkRealization] = None,
        rng=None,
    ) -> Optional[float]:
        """One directed ranging attempt; returns a distance or None.

        ``None`` means no detection — the receiver never identified the
        chirp (out of range, excessive attenuation, bad luck).
        """
        rng = ensure_rng(rng)
        sim = self.link_simulator
        if self.mode == "baseline":
            counts = sim.simulate_counts(
                distance_m,
                source_hw=source_hw,
                receiver_hw=receiver_hw,
                link=link,
                num_chirps=1,
                rng=rng,
            )
            index = first_hit(counts, threshold=1)
        else:
            counts = sim.simulate_counts(
                distance_m,
                source_hw=source_hw,
                receiver_hw=receiver_hw,
                link=link,
                rng=rng,
            )
            index = detect_signal(
                counts,
                k=self.detection.k,
                m=self.detection.m,
                threshold=self.detection.threshold,
            )
        if index < 0:
            return None
        return self.tdoa.distance_from_index(index)

    def detection_probability(
        self,
        distance_m: float,
        *,
        attempts: int = 50,
        within_m: Optional[float] = None,
        rng=None,
    ) -> float:
        """Monte-Carlo probability of detecting a chirp at *distance_m*.

        Used for the max-range studies of Section 3.6.2.  With
        *within_m* set, only detections whose estimate falls within that
        margin of the true distance count — distinguishing genuine chirp
        detections from noise-triggered garbage, as the paper's
        ground-truth-surveyed range experiments could.
        """
        if attempts < 1:
            raise ValidationError("attempts must be >= 1")
        rng = ensure_rng(rng)
        hits = 0
        for _ in range(attempts):
            link = self.link_simulator.draw_link(rng)
            estimate = self.measure(distance_m, link=link, rng=rng)
            if estimate is None:
                continue
            if within_m is not None and abs(estimate - distance_m) > within_m:
                continue
            hits += 1
        return hits / attempts

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------

    def calibrate(
        self,
        distances_m: Sequence[float] = (2.0, 4.0, 6.0, 8.0, 10.0),
        *,
        rounds: int = 10,
        rng=None,
    ) -> "RangingService":
        """Calibrate the constant offset against known distances.

        Mirrors the field procedure of Section 3.6: measure nodes at
        surveyed distances in the target environment, take the median
        signed error as the constant sensing/actuation offset, and fold
        it into ``delta_const`` (here: ``tdoa.calibration_offset_m``).
        Returns a new service carrying the calibrated config.
        """
        rng = ensure_rng(rng)
        errors = []
        for d in distances_m:
            for _ in range(rounds):
                link = self.link_simulator.draw_link(rng)
                est = self.measure(d, link=link, rng=rng)
                if est is not None:
                    errors.append(est - d)
        if not errors:
            raise CalibrationError(
                "calibration produced no detections at any distance; "
                "environment may be too hostile or distances too large"
            )
        offset = float(np.median(errors)) + self.tdoa.calibration_offset_m
        calibrated_tdoa = self.tdoa.with_calibration(offset)
        service = replace(self, tdoa=calibrated_tdoa, link_simulator=None)
        return service
