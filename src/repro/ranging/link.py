"""Signal-level simulation of one acoustic ranging link.

This module generates the binary tone-detector buffers that the
detection algorithms of :mod:`repro.ranging.detection` consume.  For a
directed link (source chirps, receiver listens) it reproduces, at the
level of individual 16 kHz detector samples, every error source the
paper enumerates in Section 3.4:

1. *Timing effects* — per-chirp arrival jitter (sync + sampling
   granularity).
2. *Non-deterministic delays in acoustic devices* — speaker power-up
   ramp at the start of each chirp (the reason chirps below 8 ms stopped
   working) and per-node constant latency bias.
3. *Unit-to-unit variation* — speaker/microphone gain offsets and the
   occasional faulty unit, via :class:`~repro.acoustics.hardware.HardwareProfile`.
4. *Signal attenuation* — spherical spreading + environment excess
   attenuation + a persistent per-link ground-cover gain.
5. *Noise* — a stationary false-positive floor plus short impulsive
   bursts (independent across chirps) and rare long events (aircraft)
   that stay elevated across all chirps of a measurement.
6. *Echoes* — persistent multipath arrivals at a delayed offset.
7. *Unreliable tone detection* — the binary detector's saturation < 1
   and SNR-dependent miss rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .._validation import check_non_negative, check_probability, ensure_rng
from ..acoustics.environment import Environment
from ..acoustics.hardware import HardwareProfile
from ..acoustics.noise import NoiseBurstProcess
from ..acoustics.propagation import LOUD_SPEAKER_SOURCE_LEVEL_DB, snr_db
from ..acoustics.signal import ChirpPattern
from ..acoustics.tone_detector import ToneDetectorModel
from .tdoa import TdoaConfig

__all__ = ["LinkRealization", "AcousticLinkSimulator"]


@dataclass(frozen=True)
class LinkRealization:
    """Persistent characteristics of one (undirected) acoustic link.

    Drawn once per node pair and reused across measurement rounds, so
    link-specific effects (a patch of tall grass, a wall reflecting an
    echo) are *correlated across rounds* — the property that decides
    which filtering technique can remove which error (Section 3.4).
    """

    link_gain_db: float = 0.0
    has_echo: bool = False
    echo_delay_s: float = 0.0


@dataclass
class AcousticLinkSimulator:
    """Generates binary detector buffers for directed ranging attempts.

    Parameters
    ----------
    environment : Environment
        Acoustic environment preset.
    pattern : ChirpPattern
        The emitted chirp pattern (defaults to the paper's 10 x 8 ms).
    detector : ToneDetectorModel
        The binary tone-detector response curve.
    tdoa : TdoaConfig
        Buffer geometry and unit conversions.
    source_level_db : float
        Speaker output power (105 dB for the extended board).
    timing_jitter_samples : float
        Std of per-chirp arrival jitter, in detector samples.
    ramp_samples : int
        Speaker power-up ramp: hit probability scales linearly from
        ~1/ramp to 1 over the first ``ramp_samples`` of each chirp.
        The default (64 samples = 4 ms at 16 kHz) encodes the paper's
        observation that chirps shorter than 8 ms "did not have enough
        time to fully power up" — a 4 ms chirp never reaches full
        output, an 8 ms chirp spends half its length at full power.
    long_noise_probability : float
        Probability that a measurement happens during a long wide-band
        noise event (aircraft overhead) raising the false-positive rate
        for *all* chirps.
    long_noise_fp_rate : float
        Per-sample false-positive probability during such an event.
    faulty_fp_rate : float
        False-positive floor of a faulty receiver unit.
    faulty_hit_scale : float
        Multiplier on hit probability for faulty units.
    """

    environment: Environment
    pattern: ChirpPattern = field(default_factory=ChirpPattern)
    detector: ToneDetectorModel = field(default_factory=ToneDetectorModel)
    tdoa: TdoaConfig = field(default_factory=TdoaConfig)
    source_level_db: float = LOUD_SPEAKER_SOURCE_LEVEL_DB
    timing_jitter_samples: float = 1.5
    ramp_samples: int = 64
    long_noise_probability: float = 0.03
    long_noise_fp_rate: float = 0.05
    faulty_fp_rate: float = 0.04
    faulty_hit_scale: float = 0.4

    def __post_init__(self):
        check_non_negative(self.timing_jitter_samples, "timing_jitter_samples")
        if self.ramp_samples < 1:
            raise ValueError("ramp_samples must be >= 1")
        check_probability(self.long_noise_probability, "long_noise_probability")
        check_probability(self.long_noise_fp_rate, "long_noise_fp_rate")
        check_probability(self.faulty_fp_rate, "faulty_fp_rate")
        check_non_negative(self.faulty_hit_scale, "faulty_hit_scale")
        self._bursts = NoiseBurstProcess.from_environment(self.environment)

    # ------------------------------------------------------------------
    # Link construction
    # ------------------------------------------------------------------

    def draw_link(self, rng=None) -> LinkRealization:
        """Draw the persistent realization for one undirected link."""
        rng = ensure_rng(rng)
        lo, hi = self.environment.echo_delay_range_s
        has_echo = bool(rng.random() < self.environment.echo_probability)
        return LinkRealization(
            link_gain_db=float(rng.normal(0.0, self.environment.ground_variation_db)),
            has_echo=has_echo,
            echo_delay_s=float(rng.uniform(lo, hi)) if has_echo else 0.0,
        )

    def link_snr_db(
        self,
        distance_m: float,
        source_hw: HardwareProfile,
        receiver_hw: HardwareProfile,
        link: LinkRealization,
    ) -> float:
        """SNR at the receiver for this link."""
        return float(
            snr_db(
                distance_m,
                self.environment,
                source_level_db=self.source_level_db,
                unit_gain_db=source_hw.speaker_gain_db + receiver_hw.mic_gain_db,
                link_gain_db=link.link_gain_db,
            )
        )

    # ------------------------------------------------------------------
    # Buffer simulation
    # ------------------------------------------------------------------

    def simulate_counts(
        self,
        distance_m: float,
        *,
        source_hw: Optional[HardwareProfile] = None,
        receiver_hw: Optional[HardwareProfile] = None,
        link: Optional[LinkRealization] = None,
        num_chirps: Optional[int] = None,
        rng=None,
    ) -> np.ndarray:
        """Simulate one measurement's accumulated count buffer.

        Each chirp is generated as an independent binary stream (the
        service re-synchronizes per chirp) and the streams are summed,
        mirroring ``record-signal``.  Returns the int64 count buffer of
        length ``tdoa.buffer_length``.
        """
        check_non_negative(distance_m, "distance_m")
        rng = ensure_rng(rng)
        source_hw = source_hw if source_hw is not None else HardwareProfile()
        receiver_hw = receiver_hw if receiver_hw is not None else HardwareProfile()
        link = link if link is not None else self.draw_link(rng)
        if num_chirps is None:
            num_chirps = self.pattern.num_chirps

        n = self.tdoa.buffer_length
        fs = self.tdoa.sampling_rate_hz
        chirp_len = self.pattern.chirp_samples(fs)
        snr = self.link_snr_db(distance_m, source_hw, receiver_hw, link)
        p_hit = float(self.detector.hit_probability(snr))
        if receiver_hw.faulty:
            p_hit *= self.faulty_hit_scale

        base_fp = self.environment.false_positive_rate
        if receiver_hw.faulty:
            base_fp = max(base_fp, self.faulty_fp_rate)
        # A long noise event (e.g. aircraft) covers the entire
        # measurement: all chirps see the elevated floor.
        long_noise = rng.random() < self.long_noise_probability
        if long_noise:
            base_fp = max(base_fp, self.long_noise_fp_rate)

        # Latency biases shift the arrival by a constant per node pair.
        latency_s = source_hw.latency_bias_s + receiver_hw.latency_bias_s
        nominal_arrival = distance_m / self.tdoa.meters_per_sample + latency_s * fs

        # Speaker power-up ramp over the first ramp_samples of a chirp.
        ramp = np.minimum(
            1.0, np.arange(1, chirp_len + 1, dtype=float) / self.ramp_samples
        )

        counts = np.zeros(n, dtype=np.int64)
        for _ in range(int(num_chirps)):
            p = self._bursts.false_positive_track(n, fs, base_fp, rng)
            arrival = nominal_arrival + rng.normal(0.0, self.timing_jitter_samples)
            self._add_signal(p, arrival, p_hit, ramp)
            if link.has_echo:
                echo_arrival = arrival + link.echo_delay_s * fs
                self._add_signal(
                    p, echo_arrival, p_hit * self.environment.echo_strength, ramp
                )
            counts += (rng.random(n) < p).astype(np.int64)
        return np.minimum(counts, 15)

    @staticmethod
    def _add_signal(p: np.ndarray, arrival: float, p_hit: float, ramp: np.ndarray) -> None:
        """Mix a chirp's hit probability into the per-sample track *p*.

        Combination is complementary (``1 - (1-p_noise)(1-p_signal)``):
        noise and signal are independent chances of the detector firing.
        """
        n = p.shape[0]
        start = int(round(arrival))
        if start >= n:
            return
        chirp_len = ramp.shape[0]
        lo = max(0, start)
        hi = min(n, start + chirp_len)
        if hi <= lo:
            return
        segment = ramp[lo - start : hi - start] * p_hit
        p[lo:hi] = 1.0 - (1.0 - p[lo:hi]) * (1.0 - segment)
