"""Time-difference-of-arrival arithmetic.

Section 3.1 of the paper: the receiver computes the distance from
information locally available as::

    d_ij = Vs * (t_detect - (t_recv - delta_xmit) - delta_const)

where ``t_recv`` is the radio message arrival (per the receiver's
clock), ``delta_xmit`` the non-deterministic hardware send/receive delay
removed by MAC-layer timestamping, and ``delta_const`` the deliberate
pause between radio message and chirp plus the calibrated
sensing/actuation latency.

In the simulator, the receiver's sample buffer is laid out so that
*index 0 corresponds to the expected chirp arrival for distance 0* —
i.e. all the constant delays have already been accounted — which makes
``distance = index * Vs / fs`` (minus the environment calibration
offset).  :class:`TdoaConfig` carries the conversion constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import check_non_negative, check_positive
from ..acoustics.propagation import SPEED_OF_SOUND
from ..acoustics.signal import DEFAULT_SAMPLING_RATE_HZ

__all__ = ["TdoaConfig", "tdoa_distance"]


@dataclass(frozen=True)
class TdoaConfig:
    """Conversion constants for the TDoA ranging buffer.

    Attributes
    ----------
    sampling_rate_hz : float
        Tone-detector sampling rate (16 kHz in the experiments).
    speed_of_sound : float
        340 m/s throughout the paper.
    max_range_m : float
        Maximum measurable distance; fixes the buffer length.  The
        paper's field experiments assume 22 m.
    calibration_offset_m : float
        Constant subtracted from raw index-derived distances; the result
        of the per-environment calibration of Section 3.6 ("without such
        calibration, a constant offset of 10-20 cm may be added to every
        ranging measurement").
    buffer_margin_samples : int
        Extra samples beyond the max-range index so a chirp arriving at
        exactly max range still fits a detection window.
    """

    sampling_rate_hz: float = DEFAULT_SAMPLING_RATE_HZ
    speed_of_sound: float = SPEED_OF_SOUND
    max_range_m: float = 22.0
    calibration_offset_m: float = 0.0
    buffer_margin_samples: int = 192

    def __post_init__(self):
        check_positive(self.sampling_rate_hz, "sampling_rate_hz")
        check_positive(self.speed_of_sound, "speed_of_sound")
        check_positive(self.max_range_m, "max_range_m")
        check_non_negative(self.buffer_margin_samples, "buffer_margin_samples")

    @property
    def meters_per_sample(self) -> float:
        """Distance resolution of one detector sample (~2.1 cm)."""
        return self.speed_of_sound / self.sampling_rate_hz

    @property
    def buffer_length(self) -> int:
        """Number of samples in the accumulation buffer."""
        return self.index_from_distance(self.max_range_m) + self.buffer_margin_samples

    def index_from_distance(self, distance_m: float) -> int:
        """Buffer index at which a chirp from *distance_m* arrives."""
        check_non_negative(distance_m, "distance_m")
        return int(round(distance_m / self.meters_per_sample))

    def distance_from_index(self, index: int) -> float:
        """Distance estimate for a detection at buffer *index*.

        Applies the calibration offset; results are clamped at zero
        (a detection cannot imply negative distance).
        """
        if index < 0:
            raise ValueError("index must be non-negative")
        return max(0.0, index * self.meters_per_sample - self.calibration_offset_m)

    def with_calibration(self, offset_m: float) -> "TdoaConfig":
        """Copy of this config with a new calibration offset."""
        return TdoaConfig(
            sampling_rate_hz=self.sampling_rate_hz,
            speed_of_sound=self.speed_of_sound,
            max_range_m=self.max_range_m,
            calibration_offset_m=float(offset_m),
            buffer_margin_samples=self.buffer_margin_samples,
        )


def tdoa_distance(
    t_detect: float,
    t_recv: float,
    delta_xmit: float,
    delta_const: float,
    speed_of_sound: float = SPEED_OF_SOUND,
) -> float:
    """The paper's explicit distance formula (Section 3.1).

    ``d_ij = Vs * (t_detect - (t_recv - delta_xmit) - delta_const)``.
    All times are on the receiver's clock, in seconds.  Negative results
    (possible when noise triggers detection before the chirp could have
    arrived) are clamped to zero.
    """
    check_positive(speed_of_sound, "speed_of_sound")
    return max(0.0, speed_of_sound * (t_detect - (t_recv - delta_xmit) - delta_const))
