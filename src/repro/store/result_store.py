"""Content-addressed on-disk result store.

Simulation results (campaign trial records, measurement sets) are cached
under a key derived from *what produced them*: the SHA-256 of a
canonical-JSON description of the workload (a scenario spec's canonical
form, a master seed, a scheduling mode) combined with a **code version**
string.  Re-running the same workload on the same code hits the cache
and does zero simulation work; changing any spec field, the seed, or the
code version changes the key and forces a cold run.  There is no
time-based expiry — entries are immutable values addressed by content,
so the only invalidation is an explicit :meth:`ResultStore.invalidate` /
:meth:`ResultStore.clear` or a key change.

Durability and concurrency
--------------------------
Payloads are gzip-compressed JSON written to a temporary file in the
store root and published with ``os.replace`` — an atomic rename on
POSIX, so readers never observe a half-written entry and concurrent
writers of the same key simply race to publish identical bytes (last
rename wins, harmlessly).  Entries are sharded into 256 two-hex-char
subdirectories to keep directory fan-out flat at scale.
"""

from __future__ import annotations

import gzip
import json
import os
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from .._canonical import canonical_json, sha256_hex
from ..errors import ValidationError

__all__ = [
    "StoreStats",
    "ResultStore",
    "default_code_version",
    "default_store_root",
    "open_default_store",
]

#: Bump when the *store payload schema* changes (how results are
#: serialized), independently of the library version.
STORE_SCHEMA_VERSION = 1

#: Environment variable overriding the default store location; set to
#: "off" (or "0"/"none") to disable the default store entirely.
STORE_ENV_VAR = "REPRO_STORE_DIR"


def default_code_version() -> str:
    """``"<repro version>+schema<N>"`` — the key component that ties an
    entry to the code that produced it.  Bumping ``repro.__version__``
    invalidates every cached result."""
    from .. import __version__

    return f"{__version__}+schema{STORE_SCHEMA_VERSION}"


def default_store_root() -> Optional[Path]:
    """Default on-disk location: ``$REPRO_STORE_DIR`` if set (``None``
    when set to "off"/"0"/"none"), else ``~/.cache/repro/store``.

    An empty (or whitespace-only) value means *unset* — the conventional
    reading of an empty environment variable — and falls back to the
    default location; only the documented "off"/"0"/"none" values
    disable the store.
    """
    configured = os.environ.get(STORE_ENV_VAR)
    if configured is not None:
        value = configured.strip()
        if value.lower() in ("off", "0", "none"):
            return None
        if value:
            return Path(configured)
    return Path.home() / ".cache" / "repro" / "store"


def open_default_store(*, code_version: Optional[str] = None) -> Optional["ResultStore"]:
    """A :class:`ResultStore` at the default location, or ``None`` when
    the default store is disabled via :data:`STORE_ENV_VAR`."""
    root = default_store_root()
    if root is None:
        return None
    return ResultStore(root, code_version=code_version)


@dataclass
class StoreStats:
    """Hit/miss accounting for one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    invalidations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "invalidations": self.invalidations,
        }


class ResultStore:
    """Content-addressed cache of JSON-serializable result payloads.

    Parameters
    ----------
    root : path-like
        Directory holding the store (created on first write).
    code_version : str, optional
        Key component tying entries to the producing code; defaults to
        :func:`default_code_version`.
    """

    def __init__(self, root, *, code_version: Optional[str] = None) -> None:
        self.root = Path(root)
        self.code_version = (
            code_version if code_version is not None else default_code_version()
        )
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------

    def key_for(self, description: Any) -> str:
        """Content address of *description* under this store's code
        version: ``sha256(canonical_json({key: ..., code_version: ...}))``."""
        return sha256_hex(
            canonical_json({"key": description, "code_version": self.code_version})
        )

    def path_for(self, key: str) -> Path:
        """On-disk location of *key*'s entry."""
        self._check_key(key)
        return self.root / key[:2] / f"{key}.json.gz"

    @staticmethod
    def _check_key(key: str) -> None:
        if not (isinstance(key, str) and len(key) == 64 and all(
            c in "0123456789abcdef" for c in key
        )):
            raise ValidationError(f"store keys are 64-char sha256 hex; got {key!r}")

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def contains(self, key: str) -> bool:
        """True when an entry for *key* exists (does not touch stats)."""
        return self.path_for(key).is_file()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under *key*, or ``None`` on a miss.

        A corrupt entry (interrupted legacy write, disk damage) counts
        as a miss and is removed so the caller's fresh ``put`` heals it.
        Removal goes through a guarded rename: a concurrent writer may
        republish a healthy entry between our failed read and the
        removal, and a bare ``unlink`` would delete *that* — so the
        entry is renamed aside first and only deleted once its bytes
        are re-verified corrupt (a grabbed-but-healthy entry is parsed,
        restored, and returned as the hit it is).
        """
        path = self.path_for(key)
        try:
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, EOFError, json.JSONDecodeError, UnicodeDecodeError):
            payload = self._quarantine_corrupt(path)
            if payload is None:
                self.stats.misses += 1
                return None
        self.stats.hits += 1
        return payload

    def _quarantine_corrupt(self, path: Path) -> Optional[Dict[str, Any]]:
        """Remove *path* only if its current bytes really are corrupt.

        Atomically renames the entry aside, re-reads the renamed file,
        and deletes it only on a confirmed parse failure.  If the rename
        grabbed a healthy entry (a concurrent ``put`` won the race), the
        payload is published back under *path* and returned.
        """
        quarantine = (
            path.parent / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.quarantine"
        )
        try:
            os.rename(path, quarantine)
        except OSError:
            # Entry vanished (another reader healed it) — nothing to do.
            return None
        try:
            try:
                with gzip.open(quarantine, "rt", encoding="utf-8") as fh:
                    payload = json.load(fh)
            except (OSError, EOFError, json.JSONDecodeError, UnicodeDecodeError):
                return None
            # Healthy after all: a concurrent writer republished between
            # our failed read and the rename.  Entries are immutable
            # values, so restoring these bytes is always correct (and
            # harmless if yet another writer has already replaced them).
            try:
                os.replace(quarantine, path)
            except OSError:
                pass
            return payload
        finally:
            if quarantine.exists():
                try:
                    quarantine.unlink()
                except OSError:
                    pass

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Atomically publish *payload* under *key*; returns its path.

        The payload is staged to a uniquely named temporary file in the
        store root and moved into place with ``os.replace``, so
        concurrent writers never corrupt an entry.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        try:
            # mtime=0 and an empty embedded filename keep the gzip bytes
            # a pure function of the payload (no tmp-name or timestamp
            # leakage), so identical results are identical files.
            with open(tmp, "wb") as raw:
                with gzip.GzipFile(
                    filename="", fileobj=raw, mode="wb", mtime=0
                ) as fh:
                    fh.write(
                        json.dumps(payload, allow_nan=True, sort_keys=True).encode(
                            "utf-8"
                        )
                    )
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        self.stats.puts += 1
        return path

    # ------------------------------------------------------------------
    # Invalidation / maintenance
    # ------------------------------------------------------------------

    def invalidate(self, key: str) -> bool:
        """Remove *key*'s entry; True if one existed."""
        path = self.path_for(key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        self.stats.invalidations += 1
        return True

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for path in self.iter_entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.stats.invalidations += removed
        return removed

    def iter_entries(self) -> Iterator[Path]:
        """Paths of all published entries."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for path in sorted(shard.glob("*.json.gz")):
                yield path

    # ------------------------------------------------------------------
    # Shard probes
    # ------------------------------------------------------------------

    def missing_keys(self, keys) -> list:
        """The subset of *keys* with no published entry (in input order).

        The completeness probe the shard-merge path uses: an N-shard
        campaign is mergeable exactly when ``missing_keys(shard_keys)``
        is empty.
        """
        return [key for key in keys if not self.contains(key)]

    #: First bytes of every shard payload's canonical serialization:
    #: ``put`` renders with ``sort_keys=True`` and "campaign_trials" is
    #: the schema's alphabetically first key (campaign payloads start
    #: with "master_seed" instead).  Lets the store scan discard
    #: non-shard entries after a few decompressed bytes.
    _SHARD_ENTRY_PREFIX = '{"campaign_trials":'

    def list_shards(self) -> list:
        """Metadata of every ``campaign-shard`` entry in the store.

        Scans all entries and returns, per shard payload, a dict with
        ``master_seed``, ``campaign_trials``, ``shard`` (index /
        n_shards), and whatever display ``context`` the publisher
        attached (scenario id, spec hash) — enough for the CLI to group
        shard entries into campaigns and report which are incomplete,
        without knowing any keys in advance.  Unreadable or non-shard
        entries are skipped; non-shard entries (e.g. large full-campaign
        payloads) are discarded on a prefix sniff without being
        decompressed or parsed in full.
        """
        out = []
        for path in self.iter_entries():
            try:
                with gzip.open(path, "rt", encoding="utf-8") as fh:
                    head = fh.read(len(self._SHARD_ENTRY_PREFIX))
                    if head != self._SHARD_ENTRY_PREFIX:
                        continue
                    payload = json.loads(head + fh.read())
            except (OSError, EOFError, json.JSONDecodeError, UnicodeDecodeError):
                continue
            if not isinstance(payload, dict) or payload.get("type") != "campaign-shard":
                continue
            out.append(
                {
                    "master_seed": payload.get("master_seed"),
                    "campaign_trials": payload.get("campaign_trials"),
                    "shard": payload.get("shard", {}),
                    "context": payload.get("context", {}),
                }
            )
        return out

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_entries())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultStore(root={str(self.root)!r}, "
            f"code_version={self.code_version!r}, entries={len(self)})"
        )
