"""Content-addressed on-disk result store.

Simulation results (campaign trial records, measurement sets) are cached
under a key derived from *what produced them*: the SHA-256 of a
canonical-JSON description of the workload (a scenario spec's canonical
form, a master seed, a scheduling mode) combined with a **code version**
string.  Re-running the same workload on the same code hits the cache
and does zero simulation work; changing any spec field, the seed, or the
code version changes the key and forces a cold run.  There is no
time-based expiry — entries are immutable values addressed by content,
so the only invalidation is an explicit :meth:`ResultStore.invalidate` /
:meth:`ResultStore.clear` or a key change.

Durability and concurrency
--------------------------
Payloads are gzip-compressed JSON written to a temporary file in the
store root and published with ``os.replace`` — an atomic rename on
POSIX, so readers never observe a half-written entry and concurrent
writers of the same key simply race to publish identical bytes (last
rename wins, harmlessly).  Entries are sharded into 256 two-hex-char
subdirectories to keep directory fan-out flat at scale.
"""

from __future__ import annotations

import gzip
import json
import os
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from .._canonical import canonical_json, sha256_hex
from ..errors import ValidationError

__all__ = [
    "StoreStats",
    "ResultStore",
    "default_code_version",
    "default_store_root",
    "open_default_store",
]

#: Bump when the *store payload schema* changes (how results are
#: serialized), independently of the library version.
STORE_SCHEMA_VERSION = 1

#: Environment variable overriding the default store location; set to
#: "off" (or "0"/"none") to disable the default store entirely.
STORE_ENV_VAR = "REPRO_STORE_DIR"


def default_code_version() -> str:
    """``"<repro version>+schema<N>"`` — the key component that ties an
    entry to the code that produced it.  Bumping ``repro.__version__``
    invalidates every cached result."""
    from .. import __version__

    return f"{__version__}+schema{STORE_SCHEMA_VERSION}"


def default_store_root() -> Optional[Path]:
    """Default on-disk location: ``$REPRO_STORE_DIR`` if set (``None``
    when set to "off"/"0"/"none"), else ``~/.cache/repro/store``."""
    configured = os.environ.get(STORE_ENV_VAR)
    if configured is not None:
        if configured.strip().lower() in ("off", "0", "none", ""):
            return None
        return Path(configured)
    return Path.home() / ".cache" / "repro" / "store"


def open_default_store(*, code_version: Optional[str] = None) -> Optional["ResultStore"]:
    """A :class:`ResultStore` at the default location, or ``None`` when
    the default store is disabled via :data:`STORE_ENV_VAR`."""
    root = default_store_root()
    if root is None:
        return None
    return ResultStore(root, code_version=code_version)


@dataclass
class StoreStats:
    """Hit/miss accounting for one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    invalidations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "invalidations": self.invalidations,
        }


class ResultStore:
    """Content-addressed cache of JSON-serializable result payloads.

    Parameters
    ----------
    root : path-like
        Directory holding the store (created on first write).
    code_version : str, optional
        Key component tying entries to the producing code; defaults to
        :func:`default_code_version`.
    """

    def __init__(self, root, *, code_version: Optional[str] = None) -> None:
        self.root = Path(root)
        self.code_version = (
            code_version if code_version is not None else default_code_version()
        )
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------

    def key_for(self, description: Any) -> str:
        """Content address of *description* under this store's code
        version: ``sha256(canonical_json({key: ..., code_version: ...}))``."""
        return sha256_hex(
            canonical_json({"key": description, "code_version": self.code_version})
        )

    def path_for(self, key: str) -> Path:
        """On-disk location of *key*'s entry."""
        self._check_key(key)
        return self.root / key[:2] / f"{key}.json.gz"

    @staticmethod
    def _check_key(key: str) -> None:
        if not (isinstance(key, str) and len(key) == 64 and all(
            c in "0123456789abcdef" for c in key
        )):
            raise ValidationError(f"store keys are 64-char sha256 hex; got {key!r}")

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def contains(self, key: str) -> bool:
        """True when an entry for *key* exists (does not touch stats)."""
        return self.path_for(key).is_file()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under *key*, or ``None`` on a miss.

        A corrupt entry (interrupted legacy write, disk damage) counts
        as a miss and is removed so the caller's fresh ``put`` heals it.
        """
        path = self.path_for(key)
        try:
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, EOFError, json.JSONDecodeError, UnicodeDecodeError):
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Atomically publish *payload* under *key*; returns its path.

        The payload is staged to a uniquely named temporary file in the
        store root and moved into place with ``os.replace``, so
        concurrent writers never corrupt an entry.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        try:
            # mtime=0 and an empty embedded filename keep the gzip bytes
            # a pure function of the payload (no tmp-name or timestamp
            # leakage), so identical results are identical files.
            with open(tmp, "wb") as raw:
                with gzip.GzipFile(
                    filename="", fileobj=raw, mode="wb", mtime=0
                ) as fh:
                    fh.write(
                        json.dumps(payload, allow_nan=True, sort_keys=True).encode(
                            "utf-8"
                        )
                    )
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        self.stats.puts += 1
        return path

    # ------------------------------------------------------------------
    # Invalidation / maintenance
    # ------------------------------------------------------------------

    def invalidate(self, key: str) -> bool:
        """Remove *key*'s entry; True if one existed."""
        path = self.path_for(key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        self.stats.invalidations += 1
        return True

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for path in self.iter_entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.stats.invalidations += removed
        return removed

    def iter_entries(self) -> Iterator[Path]:
        """Paths of all published entries."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for path in sorted(shard.glob("*.json.gz")):
                yield path

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_entries())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultStore(root={str(self.root)!r}, "
            f"code_version={self.code_version!r}, entries={len(self)})"
        )
