"""Content-addressed result store over pluggable byte backends.

Simulation results (campaign trial records, measurement sets) are cached
under a key derived from *what produced them*: the SHA-256 of a
canonical-JSON description of the workload (a scenario spec's canonical
form, a master seed, a scheduling mode) combined with a **code version**
string.  Re-running the same workload on the same code hits the cache
and does zero simulation work; changing any spec field, the seed, or the
code version changes the key and forces a cold run.  There is no
time-based expiry — entries are immutable values addressed by content,
so invalidation is an explicit :meth:`ResultStore.invalidate` /
:meth:`ResultStore.clear`, a key change, or a size-budget eviction by
:mod:`repro.store.gc`.

Durability, concurrency, and backends
-------------------------------------
Payloads are gzip-compressed canonical JSON (sorted keys, ``mtime=0``,
empty embedded filename — a pure function of the payload, so identical
results are identical bytes).  The *encoding* happens here, once;
*where the bytes live* is a :class:`repro.store.backends.StoreBackend`:
the default :class:`~repro.store.backends.FilesystemBackend` keeps the
original one-file-per-entry sharded-directory layout (atomic tmp-file +
``os.replace`` publication), while
:class:`~repro.store.backends.SQLiteBackend` packs entries into one
WAL-mode database whose metadata index answers ``len`` /
``list_shards`` / CLI listings without decompressing anything.  Because
every backend receives the same encoded bytes, entries survive
:mod:`repro.store.sync` and backend migration byte-identically.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from .. import telemetry
from .._canonical import canonical_json, sha256_hex
from ..errors import ValidationError
from .backends import (
    CORRUPT_ERRORS,
    EntryInfo,
    FilesystemBackend,
    StoreBackend,
    check_key,
    open_backend,
    shard_meta_from_payload,
)

__all__ = [
    "StoreStats",
    "ResultStore",
    "default_code_version",
    "default_store_root",
    "open_default_store",
    "encode_payload",
    "decode_payload",
]

#: Bump when the *store payload schema* changes (how results are
#: serialized), independently of the library version.
STORE_SCHEMA_VERSION = 1

#: Environment variable overriding the default store location; set to
#: "off" (or "0"/"none") to disable the default store entirely.  A
#: path ending in ``.sqlite``/``.sqlite3``/``.db`` selects the SQLite
#: backend; anything else is a filesystem store root.
STORE_ENV_VAR = "REPRO_STORE_DIR"


def default_code_version() -> str:
    """``"<repro version>+schema<N>"`` — the key component that ties an
    entry to the code that produced it.  Bumping ``repro.__version__``
    invalidates every cached result."""
    from .. import __version__

    return f"{__version__}+schema{STORE_SCHEMA_VERSION}"


def default_store_root() -> Optional[Path]:
    """Default on-disk location: ``$REPRO_STORE_DIR`` if set (``None``
    when set to "off"/"0"/"none"), else ``~/.cache/repro/store``.

    An empty (or whitespace-only) value means *unset* — the conventional
    reading of an empty environment variable — and falls back to the
    default location; only the documented "off"/"0"/"none" values
    disable the store.  Surrounding whitespace is stripped from the
    configured path as well (a padded value must not yield a
    whitespace-padded directory name).
    """
    configured = os.environ.get(STORE_ENV_VAR)
    if configured is not None:
        value = configured.strip()
        if value.lower() in ("off", "0", "none"):
            return None
        if value:
            return Path(value)
    return Path.home() / ".cache" / "repro" / "store"


def open_default_store(*, code_version: Optional[str] = None) -> Optional["ResultStore"]:
    """A :class:`ResultStore` at the default location, or ``None`` when
    the default store is disabled via :data:`STORE_ENV_VAR`."""
    root = default_store_root()
    if root is None:
        return None
    return ResultStore(root, code_version=code_version)


def encode_payload(payload: Dict[str, Any]) -> bytes:
    """*payload* as canonical gzip-JSON bytes — the one store encoding.

    ``mtime=0`` and an empty embedded filename keep the gzip bytes a
    pure function of the payload (no name or timestamp leakage), so
    identical results are identical bytes through **every** backend —
    the backend-invariance guarantee sync and migration rest on.
    """
    buffer = io.BytesIO()
    with gzip.GzipFile(filename="", fileobj=buffer, mode="wb", mtime=0) as fh:
        fh.write(json.dumps(payload, allow_nan=True, sort_keys=True).encode("utf-8"))
    return buffer.getvalue()


def decode_payload(data: bytes) -> Dict[str, Any]:
    """Parse stored entry bytes; raises one of
    :data:`repro.store.backends.CORRUPT_ERRORS` on damage."""
    with gzip.open(io.BytesIO(data), "rt", encoding="utf-8") as fh:
        return json.load(fh)


@dataclass
class StoreStats:
    """Hit/miss accounting for one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    invalidations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "invalidations": self.invalidations,
        }


class ResultStore:
    """Content-addressed cache of JSON-serializable result payloads.

    Parameters
    ----------
    root : path-like
        Store location.  A directory (or not-yet-existing extension-less
        path) opens the filesystem backend; a ``.sqlite``/``.sqlite3``/
        ``.db`` path (or existing regular file) opens the SQLite
        backend.
    code_version : str, optional
        Key component tying entries to the producing code; defaults to
        :func:`default_code_version`.
    backend : StoreBackend, optional
        Explicit backend instance (overrides detection from *root*).
    """

    def __init__(
        self,
        root,
        *,
        code_version: Optional[str] = None,
        backend: Optional[StoreBackend] = None,
    ) -> None:
        self.backend = open_backend(root) if backend is None else backend
        self.root = Path(root) if root is not None else self.backend.location
        self.code_version = (
            code_version if code_version is not None else default_code_version()
        )
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------

    def key_for(self, description: Any) -> str:
        """Content address of *description* under this store's code
        version: ``sha256(canonical_json({key: ..., code_version: ...}))``."""
        return sha256_hex(
            canonical_json({"key": description, "code_version": self.code_version})
        )

    def path_for(self, key: str) -> Path:
        """On-disk location of *key*'s entry (filesystem backend only —
        other backends have no per-entry file; use :meth:`get_bytes`)."""
        if not isinstance(self.backend, FilesystemBackend):
            raise ValidationError(
                f"path_for is filesystem-specific; the {self.backend.kind} "
                f"backend has no per-entry files (use get_bytes)"
            )
        return self.backend.path_for(key)

    @staticmethod
    def _check_key(key: str) -> None:
        check_key(key)

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def contains(self, key: str) -> bool:
        """True when an entry for *key* exists (does not touch stats)."""
        return self.backend.contains(key)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under *key*, or ``None`` on a miss.

        A corrupt entry (interrupted legacy write, disk damage) counts
        as a miss and is removed so the caller's fresh ``put`` heals it.
        Removal is delegated to the backend's guarded
        ``quarantine_corrupt``: a concurrent writer may republish a
        healthy entry between the failed read and the removal, and a
        blind delete would destroy *that* — so the backend re-verifies
        the entry's current bytes and only removes confirmed corruption
        (a grabbed-but-healthy entry is restored and returned as the hit
        it is).
        """
        self._check_key(key)
        t0 = time.perf_counter()
        try:
            raw = self.backend.read_bytes(key)
            if raw is None:
                self.stats.misses += 1
                self._record_get("miss", t0)
                return None
            payload = decode_payload(raw)
        except CORRUPT_ERRORS:
            payload = self.backend.quarantine_corrupt(key, decode_payload)
            if payload is None:
                self.stats.misses += 1
                self._record_get("miss", t0)
                return None
        self.stats.hits += 1
        self._record_get("hit", t0)
        return payload

    def _record_get(self, outcome: str, t0: float) -> None:
        """Per-backend-kind get telemetry (hit/miss counter + latency)."""
        kind = self.backend.kind
        telemetry.count(f"store.{kind}.{outcome}", 1)
        telemetry.observe(f"store.{kind}.get_ms", (time.perf_counter() - t0) * 1000.0)

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Atomically publish *payload* under *key*; returns the path
        now holding it (the entry file, or the backend's database file).

        The canonical encoding happens here — backends receive finished
        bytes — and campaign-shard payloads additionally hand the
        backend their listing metadata so indexing backends can answer
        :meth:`list_shards` without decompressing anything.
        """
        self._check_key(key)
        t0 = time.perf_counter()
        path = self.backend.write_bytes(
            key, encode_payload(payload), shard_meta=shard_meta_from_payload(payload)
        )
        self.stats.puts += 1
        kind = self.backend.kind
        telemetry.count(f"store.{kind}.put", 1)
        telemetry.observe(f"store.{kind}.put_ms", (time.perf_counter() - t0) * 1000.0)
        return path

    # ------------------------------------------------------------------
    # Raw byte access (sync / migration)
    # ------------------------------------------------------------------

    def get_bytes(self, key: str) -> Optional[bytes]:
        """*key*'s stored bytes verbatim, or ``None`` — no decode, no
        stats, no access-time touch (this is the sync/migration read,
        not a cache hit)."""
        self._check_key(key)
        return self.backend.read_bytes(key, touch=False)

    def put_bytes(self, key: str, data: bytes) -> Path:
        """Publish already-encoded entry bytes verbatim under *key*.

        The sync/migration write: bytes cross store boundaries
        untouched, preserving byte-identity whatever the source backend
        was.  The payload is decoded once to verify it parses (corrupt
        entries must not propagate between stores) and to extract shard
        metadata for indexing backends; raises
        :class:`~repro.errors.ValidationError` on undecodable bytes.
        """
        self._check_key(key)
        try:
            payload = decode_payload(data)
        except CORRUPT_ERRORS as exc:
            raise ValidationError(
                f"refusing to store undecodable entry bytes for {key[:12]}…: {exc}"
            ) from exc
        path = self.backend.write_bytes(
            key, data, shard_meta=shard_meta_from_payload(payload)
        )
        self.stats.puts += 1
        telemetry.count(f"store.{self.backend.kind}.put_verbatim", 1)
        return path

    # ------------------------------------------------------------------
    # Invalidation / maintenance
    # ------------------------------------------------------------------

    def invalidate(self, key: str) -> bool:
        """Remove *key*'s entry; True if one existed."""
        self._check_key(key)
        if not self.backend.delete(key):
            return False
        self.stats.invalidations += 1
        return True

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for key in list(self.backend.iter_keys()):
            if self.backend.delete(key):
                removed += 1
        self.stats.invalidations += removed
        return removed

    def iter_keys(self) -> Iterator[str]:
        """All published keys, in sorted order (any backend)."""
        return self.backend.iter_keys()

    def iter_entries(self) -> Iterator[Path]:
        """Paths of all published entries (filesystem backend only;
        generic callers use :meth:`iter_keys`)."""
        if not isinstance(self.backend, FilesystemBackend):
            raise ValidationError(
                f"iter_entries is filesystem-specific; the {self.backend.kind} "
                f"backend has no per-entry files (use iter_keys)"
            )
        return self.backend.iter_entry_paths()

    def entry_info(self, key: str) -> Optional[EntryInfo]:
        """Index-level facts (size, timestamps) about *key*'s entry."""
        self._check_key(key)
        return self.backend.entry_info(key)

    def iter_entry_info(self) -> Iterator[EntryInfo]:
        """One :class:`~repro.store.backends.EntryInfo` per entry,
        sorted by key."""
        return self.backend.iter_entry_info()

    def total_bytes(self) -> int:
        """Total stored payload bytes (the GC budget's measure)."""
        return self.backend.total_bytes()

    # ------------------------------------------------------------------
    # Shard probes
    # ------------------------------------------------------------------

    def missing_keys(self, keys) -> list:
        """The subset of *keys* with no published entry (in input order).

        The completeness probe the shard-merge path uses: an N-shard
        campaign is mergeable exactly when ``missing_keys(shard_keys)``
        is empty.
        """
        return [key for key in keys if not self.contains(key)]

    def list_shards(self) -> List[Dict[str, Any]]:
        """Metadata of every ``campaign-shard`` entry in the store.

        Returns, per shard payload, a dict with ``master_seed``,
        ``campaign_trials``, ``shard`` (index / n_shards), and whatever
        display ``context`` the publisher attached (scenario id, spec
        hash) — enough for the CLI to group shard entries into campaigns
        and report which are incomplete, without knowing any keys in
        advance.  The backend answers however it can do so cheapest: the
        filesystem backend scans entries (discarding non-shard payloads
        on a few-byte prefix sniff), the SQLite backend reads the shard
        metadata indexed at ``put`` time without touching payload bytes.
        Unreadable entries are skipped.
        """
        return list(self.backend.iter_shard_meta())

    def __len__(self) -> int:
        return self.backend.count()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultStore(root={str(self.root)!r}, "
            f"backend={self.backend.kind!r}, "
            f"code_version={self.code_version!r}, entries={len(self)})"
        )
