"""Store garbage collection: size-budget LRU eviction + orphan sweep.

The store grows without bound by design — entries are immutable values
with no time-based expiry — so capping disk usage is an explicit
maintenance operation, not a side effect of reads.  :func:`collect`
does two things, both backend-agnostic:

1. **Orphan sweep.**  Crashed writers leave ``.tmp`` staging files (and
   interrupted heals leave ``.quarantine`` files) that no read or write
   path ever looks at again; the backend removes any older than a grace
   window.  The window protects files a *live* writer is staging right
   now — a fresh tmp file is never swept.
2. **LRU eviction.**  When the store exceeds ``max_bytes``, entries are
   evicted least-recently-accessed first (backends stamp a coarse
   access time on reads) until the store fits the budget.  *Pinned*
   keys — golden entries, in-flight shard sets — are never evicted,
   even if the store cannot reach the budget without them; the report
   says so instead.

Eviction is safe by the same argument that makes sync conflict-free:
an evicted entry is a cache miss, not data loss — re-running the same
workload on the same code regenerates the identical bytes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from .. import telemetry
from .backends import check_key
from .result_store import ResultStore

__all__ = ["GCReport", "collect", "DEFAULT_GRACE_SECONDS"]

#: Staging files younger than this are presumed to belong to a live
#: writer and survive the orphan sweep.
DEFAULT_GRACE_SECONDS = 3600.0


@dataclass(frozen=True)
class GCReport:
    """What one :func:`collect` pass did (or, dry-run, would do)."""

    entries_before: int
    bytes_before: int
    evicted: Tuple[str, ...]
    evicted_bytes: int
    pinned_kept: int
    pins_unmatched: Tuple[str, ...]
    swept_orphans: Tuple[str, ...]
    bytes_after: int
    under_budget: bool
    dry_run: bool = False

    def summary(self) -> str:
        evict_verb = "would evict" if self.dry_run else "evicted"
        sweep_verb = "would sweep" if self.dry_run else "swept"
        parts = [
            f"{self.entries_before} entries / {self.bytes_before} bytes scanned",
            f"{evict_verb} {len(self.evicted)} ({self.evicted_bytes} bytes)",
        ]
        if self.swept_orphans:
            parts.append(
                f"{sweep_verb} {len(self.swept_orphans)} orphaned staging files"
            )
        if self.pinned_kept:
            parts.append(f"{self.pinned_kept} pinned entries protected")
        if self.pins_unmatched:
            parts.append(
                f"WARNING: {len(self.pins_unmatched)} pinned keys matched "
                f"no entry (first: {self.pins_unmatched[0][:12]}…)"
            )
        if not self.under_budget:
            parts.append("still over budget (pinned entries exceed it)")
        return ", ".join(parts)


def collect(
    store: ResultStore,
    *,
    max_bytes: Optional[int] = None,
    pinned: Iterable[str] = (),
    grace_seconds: float = DEFAULT_GRACE_SECONDS,
    dry_run: bool = False,
    now: Optional[float] = None,
) -> GCReport:
    """Sweep orphaned staging files and evict down to *max_bytes*.

    Parameters
    ----------
    max_bytes : int, optional
        Size budget for stored payload bytes.  ``None`` skips eviction
        (the sweep still runs) — ``collect(store)`` is a pure cleanup.
    pinned : iterable of str
        Keys that must survive eviction regardless of budget pressure.
    grace_seconds : float
        Minimum age before a ``.tmp``/``.quarantine`` staging file is
        considered orphaned.
    dry_run : bool
        Report what would be evicted and which orphans would be swept,
        without deleting anything.
    now : float, optional
        Clock override for tests.
    """
    now = time.time() if now is None else float(now)
    pinned_keys = set(pinned)
    for key in pinned_keys:
        # A malformed pin can never match an entry, so the protection it
        # was meant to buy silently would not exist — fail loudly.
        check_key(key)

    swept = tuple(
        store.backend.sweep_orphans(grace_seconds, now=now, dry_run=dry_run)
    )

    infos = list(store.iter_entry_info())
    entries_before = len(infos)
    bytes_before = sum(info.size for info in infos)

    evicted = []
    evicted_bytes = 0
    pinned_kept = 0
    total = bytes_before
    if max_bytes is not None and total > max_bytes:
        # Oldest access first; key breaks ties so the order (and any
        # dry-run report) is deterministic.
        for info in sorted(infos, key=lambda i: (i.accessed_at, i.key)):
            if total <= max_bytes:
                break
            if info.key in pinned_keys:
                pinned_kept += 1
                continue
            if not dry_run and not store.invalidate(info.key):
                # Vanished concurrently (a racing GC or invalidate): its
                # bytes are already freed, so the running total must
                # drop too — or this pass would over-evict live entries
                # to pay for bytes nobody holds anymore.
                total -= info.size
                continue
            evicted.append(info.key)
            evicted_bytes += info.size
            total -= info.size
    if evicted and not dry_run:
        store.backend.compact()
    if not dry_run:
        telemetry.count("store.gc.runs", 1)
        telemetry.count("store.gc.entries_evicted", len(evicted))
        telemetry.count("store.gc.bytes_evicted", evicted_bytes)
        telemetry.count("store.gc.orphans_swept", len(swept))
    return GCReport(
        entries_before=entries_before,
        bytes_before=bytes_before,
        evicted=tuple(evicted),
        evicted_bytes=evicted_bytes,
        pinned_kept=pinned_kept,
        pins_unmatched=tuple(
            sorted(pinned_keys - {info.key for info in infos})
        ),
        swept_orphans=swept,
        bytes_after=total,
        under_budget=max_bytes is None or total <= max_bytes,
        dry_run=dry_run,
    )
