"""Cross-store synchronization: ``diff`` / ``push`` / ``pull``.

Physically separate hosts run shards of one campaign against their own
result stores (``python -m repro run <id> --shard K/N --store ...``);
before the merge, their shard entries have to end up in one store.  This
module moves entries between any two :class:`~repro.store.ResultStore`
instances, **whatever backend each uses** — entries cross the boundary
as verbatim bytes through :meth:`~repro.store.ResultStore.get_bytes` /
:meth:`~repro.store.ResultStore.put_bytes`, so a synced entry is
byte-identical to its source.

Sync is conflict-free by construction: entries are immutable values
addressed by the content hash of *what produced them*, so two stores can
never hold different payloads under the same key (short of corruption,
which :func:`push` detects and refuses to propagate).  "Merging" two
stores is therefore a plain set union — copy whatever the destination
is missing, skip what it already has.

Typical two-host flow::

    hostA$ python -m repro run town-multilateration --trials 96 --shard 1/2
    hostB$ python -m repro run town-multilateration --trials 96 --shard 2/2
    # move hostB's store (scp/rsync/shared mount), then on hostA:
    hostA$ python -m repro store sync /path/to/hostB-store ~/.cache/repro/store
    hostA$ python -m repro merge town-multilateration --trials 96 --shards 2
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from .. import telemetry
from ..errors import ValidationError
from .result_store import ResultStore

__all__ = ["StoreDiff", "SyncReport", "diff", "push", "pull", "migrate"]


@dataclass(frozen=True)
class StoreDiff:
    """Key-level comparison of two stores (no payload access)."""

    missing_in_dst: Tuple[str, ...]
    missing_in_src: Tuple[str, ...]
    common: int

    @property
    def in_sync(self) -> bool:
        return not self.missing_in_dst and not self.missing_in_src


@dataclass(frozen=True)
class SyncReport:
    """What one :func:`push` moved."""

    copied: Tuple[str, ...]
    copied_bytes: int
    skipped_present: int
    skipped_corrupt: Tuple[str, ...]

    def summary(self) -> str:
        parts = [f"copied {len(self.copied)} entries ({self.copied_bytes} bytes)"]
        if self.skipped_present:
            parts.append(f"{self.skipped_present} already present")
        if self.skipped_corrupt:
            parts.append(f"{len(self.skipped_corrupt)} corrupt (not copied)")
        return ", ".join(parts)


def diff(src: ResultStore, dst: ResultStore) -> StoreDiff:
    """Which keys each store is missing relative to the other."""
    src_keys = set(src.iter_keys())
    dst_keys = set(dst.iter_keys())
    return StoreDiff(
        missing_in_dst=tuple(sorted(src_keys - dst_keys)),
        missing_in_src=tuple(sorted(dst_keys - src_keys)),
        common=len(src_keys & dst_keys),
    )


def push(
    src: ResultStore,
    dst: ResultStore,
    *,
    keys: Optional[Iterable[str]] = None,
) -> SyncReport:
    """Copy *src* entries missing from *dst* (byte-verbatim).

    With *keys*, only that subset is considered; by default every *src*
    key is.  Entries already present in *dst* are skipped without
    reading their payloads — same key means same immutable value.
    Source entries whose bytes no longer decode are reported in
    ``skipped_corrupt`` and never propagated.
    """
    copied, corrupt = [], []
    copied_bytes = 0
    present = 0
    with telemetry.span(
        "store-sync", src=str(src.root), dst=str(dst.root)
    ):
        # One bulk key listing instead of a contains() round trip per key.
        dst_keys = set(dst.iter_keys())
        for key in sorted(keys) if keys is not None else src.iter_keys():
            if key in dst_keys:
                present += 1
                continue
            data = src.get_bytes(key)
            if data is None:  # vanished mid-sync (concurrent invalidate/GC)
                continue
            try:
                dst.put_bytes(key, data)
            except ValidationError:
                corrupt.append(key)
                continue
            copied.append(key)
            copied_bytes += len(data)
    telemetry.count("store.sync.entries_copied", len(copied))
    telemetry.count("store.sync.bytes_copied", copied_bytes)
    telemetry.count("store.sync.skipped_present", present)
    telemetry.count("store.sync.skipped_corrupt", len(corrupt))
    return SyncReport(
        copied=tuple(copied),
        copied_bytes=copied_bytes,
        skipped_present=present,
        skipped_corrupt=tuple(corrupt),
    )


def pull(dst: ResultStore, src: ResultStore, **kwargs) -> SyncReport:
    """Fetch into *dst* whatever *src* has that *dst* lacks — the same
    operation as :func:`push` seen from the receiving side."""
    return push(src, dst, **kwargs)


def migrate(src: ResultStore, dst: ResultStore) -> SyncReport:
    """Copy **every** *src* entry into *dst* and verify completeness.

    The backend-migration path (filesystem → SQLite or back): after the
    copy, *dst* must contain all of *src* — a partial migration raises
    instead of silently leaving entries behind.  Payload bytes cross
    unmodified, so migrating a store and migrating it back reproduces
    byte-identical entries.
    """
    report = push(src, dst)
    remaining = diff(src, dst).missing_in_dst
    if remaining:
        raise ValidationError(
            f"migration left {len(remaining)} entries behind "
            f"(first: {remaining[0][:12]}…); source corrupt entries must be "
            f"healed or invalidated before migrating"
        )
    return report
