"""repro.store — the content-addressed result cache.

Campaign and sweep results are pure functions of ``(scenario spec,
master seed, scheduling mode, code version)``; this package memoizes
them on disk so repeated campaigns, parameter sweeps, and CI golden runs
hit the cache instead of re-simulating.  See
:mod:`repro.store.result_store` for the keying and atomicity model and
:mod:`repro.store.serialization` for the bit-identical payload contract.
"""

from .result_store import (
    STORE_ENV_VAR,
    STORE_SCHEMA_VERSION,
    ResultStore,
    StoreStats,
    default_code_version,
    default_store_root,
    open_default_store,
)
from .serialization import (
    aggregates_equal,
    campaign_from_payload,
    campaign_to_payload,
    measurement_set_from_payload,
    measurement_set_to_payload,
    records_equal,
    shard_from_payload,
    shard_to_payload,
)

__all__ = [
    "ResultStore",
    "StoreStats",
    "STORE_ENV_VAR",
    "STORE_SCHEMA_VERSION",
    "default_code_version",
    "default_store_root",
    "open_default_store",
    "campaign_to_payload",
    "campaign_from_payload",
    "measurement_set_to_payload",
    "measurement_set_from_payload",
    "records_equal",
    "aggregates_equal",
    "shard_to_payload",
    "shard_from_payload",
]
