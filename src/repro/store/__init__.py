"""repro.store — the content-addressed result cache.

Campaign and sweep results are pure functions of ``(scenario spec,
master seed, scheduling mode, code version)``; this package memoizes
them on disk so repeated campaigns, parameter sweeps, and CI golden runs
hit the cache instead of re-simulating.  See
:mod:`repro.store.result_store` for the keying and atomicity model,
:mod:`repro.store.backends` for the pluggable byte-storage backends
(filesystem layout and SQLite-indexed single file),
:mod:`repro.store.serialization` for the bit-identical payload contract,
:mod:`repro.store.sync` for moving entries between stores on physically
separate hosts, and :mod:`repro.store.gc` for size-budget eviction and
staging-file cleanup.
"""

from .backends import (
    EntryInfo,
    FilesystemBackend,
    SQLiteBackend,
    StoreBackend,
    open_backend,
)
from .gc import DEFAULT_GRACE_SECONDS, GCReport, collect
from .result_store import (
    STORE_ENV_VAR,
    STORE_SCHEMA_VERSION,
    ResultStore,
    StoreStats,
    decode_payload,
    default_code_version,
    default_store_root,
    encode_payload,
    open_default_store,
)
from .serialization import (
    aggregates_equal,
    campaign_from_payload,
    campaign_to_payload,
    measurement_set_from_payload,
    measurement_set_to_payload,
    records_equal,
    shard_from_payload,
    shard_to_payload,
)
from .sync import StoreDiff, SyncReport, diff, migrate, pull, push

__all__ = [
    "ResultStore",
    "StoreStats",
    "STORE_ENV_VAR",
    "STORE_SCHEMA_VERSION",
    "default_code_version",
    "default_store_root",
    "open_default_store",
    "encode_payload",
    "decode_payload",
    # backends
    "StoreBackend",
    "FilesystemBackend",
    "SQLiteBackend",
    "EntryInfo",
    "open_backend",
    # sync
    "StoreDiff",
    "SyncReport",
    "diff",
    "push",
    "pull",
    "migrate",
    # gc
    "GCReport",
    "collect",
    "DEFAULT_GRACE_SECONDS",
    # serialization
    "campaign_to_payload",
    "campaign_from_payload",
    "measurement_set_to_payload",
    "measurement_set_from_payload",
    "records_equal",
    "aggregates_equal",
    "shard_to_payload",
    "shard_from_payload",
]
