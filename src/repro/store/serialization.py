"""Lossless JSON payloads for campaign results and measurement sets.

The store's bit-identical contract lives here: every float crosses the
JSON boundary via Python's shortest round-trip ``repr`` (including
``NaN``, which degenerate trials legitimately produce), so a payload
read back from disk reconstructs a result whose per-trial metrics and
aggregates are *exactly* equal to the cold-run original — not merely
close (``tests/test_store.py`` pins this).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .._canonical import canonical_json
from ..core.measurements import MeasurementSet
from ..engine.campaign import CampaignResult, TrialRecord
from ..engine.scheduler import ScheduledCampaignResult
from ..engine.sharding import ShardCampaignResult, ShardSpec
from ..errors import ValidationError

__all__ = [
    "campaign_to_payload",
    "campaign_from_payload",
    "shard_to_payload",
    "shard_from_payload",
    "measurement_set_to_payload",
    "measurement_set_from_payload",
    "records_equal",
    "aggregates_equal",
]


def records_equal(a: CampaignResult, b: CampaignResult) -> bool:
    """Value equality of two campaigns' trial records, NaN-tolerant.

    ``a.records == b.records`` is the wrong test when degenerate trials
    legitimately report nan metrics (``nan != nan``); comparing the
    canonical JSON rendering treats equal-bit NaNs as equal while
    remaining exact for every other float.
    """
    return canonical_json(campaign_to_payload(a)["records"]) == canonical_json(
        campaign_to_payload(b)["records"]
    )


def aggregates_equal(a: CampaignResult, b: CampaignResult) -> bool:
    """NaN-tolerant exact equality of two campaigns' aggregate tables."""
    return canonical_json(a.aggregate()) == canonical_json(b.aggregate())


def campaign_to_payload(result: CampaignResult) -> Dict[str, Any]:
    """JSON-safe dict capturing *result* exactly (records in trial order)."""
    payload: Dict[str, Any] = {
        "type": "campaign",
        "master_seed": result.master_seed,
        "records": [
            {"index": record.index, "metrics": dict(record.metrics)}
            for record in result.records
        ],
    }
    if isinstance(result, ScheduledCampaignResult):
        payload["scheduler"] = {
            "max_trials": result.max_trials,
            "chunk_size": result.chunk_size,
            "converged": result.converged,
            "stop_reason": result.stop_reason,
            "half_width_trace": list(result.half_width_trace),
        }
    return payload


def campaign_from_payload(payload: Dict[str, Any]) -> CampaignResult:
    """Rebuild the :class:`CampaignResult` (or scheduled variant) a
    :func:`campaign_to_payload` dict describes."""
    if payload.get("type") != "campaign":
        raise ValidationError(f"not a campaign payload: type={payload.get('type')!r}")
    records = tuple(
        TrialRecord(
            index=int(entry["index"]),
            metrics={str(k): float(v) for k, v in entry["metrics"].items()},
        )
        for entry in payload["records"]
    )
    master_seed = int(payload["master_seed"])
    scheduler = payload.get("scheduler")
    if scheduler is None:
        return CampaignResult(master_seed=master_seed, records=records)
    return ScheduledCampaignResult(
        master_seed=master_seed,
        records=records,
        max_trials=int(scheduler["max_trials"]),
        chunk_size=int(scheduler["chunk_size"]),
        converged=bool(scheduler["converged"]),
        stop_reason=str(scheduler["stop_reason"]),
        half_width_trace=tuple(float(h) for h in scheduler["half_width_trace"]),
    )


def shard_to_payload(
    result: ShardCampaignResult, *, context: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """JSON-safe dict capturing one shard of a campaign exactly.

    ``context`` carries display metadata (scenario id, spec hash, …) so
    shard entries found in a store are self-describing — the CLI's shard
    status listing groups on it.  Context never participates in store
    keys; shard entries are addressed by the run description + shard
    descriptor instead.
    """
    payload: Dict[str, Any] = {
        "type": "campaign-shard",
        "master_seed": result.master_seed,
        "campaign_trials": result.campaign_trials,
        "shard": result.shard.describe(),
        "records": [
            {"index": record.index, "metrics": dict(record.metrics)}
            for record in result.records
        ],
    }
    if context:
        payload["context"] = dict(context)
    return payload


def shard_from_payload(payload: Dict[str, Any]) -> ShardCampaignResult:
    """Rebuild the :class:`ShardCampaignResult` a :func:`shard_to_payload`
    dict describes."""
    if payload.get("type") != "campaign-shard":
        raise ValidationError(
            f"not a campaign-shard payload: type={payload.get('type')!r}"
        )
    shard = payload["shard"]
    records = tuple(
        TrialRecord(
            index=int(entry["index"]),
            metrics={str(k): float(v) for k, v in entry["metrics"].items()},
        )
        for entry in payload["records"]
    )
    return ShardCampaignResult(
        master_seed=int(payload["master_seed"]),
        records=records,
        campaign_trials=int(payload["campaign_trials"]),
        shard=ShardSpec(index=int(shard["index"]), n_shards=int(shard["n_shards"])),
    )


def measurement_set_to_payload(measurements: MeasurementSet) -> Dict[str, Any]:
    """JSON-safe dict of directed measurements, in iteration order."""
    return {
        "type": "measurements",
        "measurements": [
            {
                "source": m.source,
                "receiver": m.receiver,
                "distance": m.distance,
                "true_distance": m.true_distance,
                "round_index": m.round_index,
            }
            for m in measurements
        ],
    }


def measurement_set_from_payload(payload: Dict[str, Any]) -> MeasurementSet:
    """Rebuild the :class:`MeasurementSet` a payload describes."""
    if payload.get("type") != "measurements":
        raise ValidationError(
            f"not a measurements payload: type={payload.get('type')!r}"
        )
    out = MeasurementSet()
    for entry in payload["measurements"]:
        truth: Optional[float] = entry.get("true_distance")
        out.add_distance(
            int(entry["source"]),
            int(entry["receiver"]),
            float(entry["distance"]),
            true_distance=None if truth is None else float(truth),
            round_index=int(entry.get("round_index", 0)),
        )
    return out
