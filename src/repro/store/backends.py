"""Pluggable byte-storage backends for the result store.

:class:`repro.store.ResultStore` owns the *semantics* of the cache —
content-addressed keys, the canonical gzip-JSON payload encoding, hit/
miss accounting, corrupt-entry healing policy — and delegates all byte
I/O to a backend implementing the small :class:`StoreBackend` protocol
(``read_bytes`` / ``write_bytes`` / ``delete`` / ``contains`` /
``iter_keys`` / ``entry_info`` and a few maintenance hooks).  Because
the store hands every backend the *same already-encoded bytes* (one
deterministic gzip canonicalization, produced above this layer), a
payload stored through any backend is byte-identical to the same
payload stored through any other — the backend-invariance guarantee
that makes :mod:`repro.store.sync` and backend migration lossless.

Two backends ship:

``FilesystemBackend``
    The original one-gzip-file-per-entry layout (256 two-hex-char shard
    subdirectories, atomic tmp-file + ``os.replace`` publication),
    extracted verbatim — existing on-disk stores keep working with zero
    migration.  ``list``-style scans must decompress entries to learn
    anything about them.
``SQLiteBackend``
    A single-file SQLite database in WAL mode.  Entry bytes live in a
    BLOB column next to an indexed metadata table (size, access time,
    and — for campaign-shard payloads — the shard descriptor, captured
    at ``put`` time), so ``len``, ``list_shards``, and the CLI listings
    are answered from the index without decompressing anything.

Backends also track a coarse last-access time per entry (used by
:mod:`repro.store.gc` for LRU eviction) and know how to sweep the
orphaned ``.tmp``/``.quarantine`` staging files crashed writers leave
behind.
"""

from __future__ import annotations

import gzip
import json
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..errors import ValidationError

__all__ = [
    "CORRUPT_ERRORS",
    "EntryInfo",
    "StoreBackend",
    "FilesystemBackend",
    "SQLiteBackend",
    "open_backend",
    "check_key",
    "shard_meta_from_payload",
]

#: Exceptions that mean "these bytes are not a readable gzip-JSON
#: payload" — the corruption signature shared by the read and heal
#: paths (json.JSONDecodeError subclasses ValueError; gzip raises
#: OSError/EOFError on torn streams).
CORRUPT_ERRORS = (OSError, EOFError, json.JSONDecodeError, UnicodeDecodeError)

#: Entries younger than this keep their recorded access time on reads —
#: LRU eviction needs second-scale ordering, not a metadata write per
#: cache hit.
ACCESS_GRANULARITY_S = 1.0


def check_key(key: str) -> None:
    """Reject anything that is not a 64-char sha256 hex key.

    Backends validate keys themselves (not only through
    :class:`ResultStore`) because a malformed key would otherwise become
    a path or SQL parameter.
    """
    if not (
        isinstance(key, str)
        and len(key) == 64
        and all(c in "0123456789abcdef" for c in key)
    ):
        raise ValidationError(f"store keys are 64-char sha256 hex; got {key!r}")


def shard_meta_from_payload(payload: Any) -> Optional[Dict[str, Any]]:
    """The indexable metadata of a campaign-shard payload, or ``None``.

    This is the exact dict :meth:`ResultStore.list_shards` reports per
    shard entry; deriving it here — once, shared by the SQLite put-time
    indexer and the filesystem full-scan — keeps the two backends'
    listings identical by construction.
    """
    if not (isinstance(payload, dict) and payload.get("type") == "campaign-shard"):
        return None
    return {
        "master_seed": payload.get("master_seed"),
        "campaign_trials": payload.get("campaign_trials"),
        "shard": payload.get("shard", {}),
        "context": payload.get("context", {}),
    }


@dataclass(frozen=True)
class EntryInfo:
    """Index-level facts about one stored entry (no payload access).

    ``accessed_at`` is the coarse LRU stamp backends refresh on reads;
    there is deliberately no creation time — the filesystem backend
    cannot report one truthfully (mtime doubles as the access stamp),
    and a field one backend can honor and another cannot would break
    protocol parity.
    """

    key: str
    size: int
    accessed_at: float


class StoreBackend:
    """Protocol for result-store byte storage (documented base class).

    Implementations store opaque ``bytes`` under validated sha256-hex
    keys.  They never encode, decode, or interpret payloads — with one
    deliberate exception: ``write_bytes`` receives the payload's
    pre-extracted shard metadata so an indexing backend can answer
    :meth:`iter_shard_meta` without touching entry bytes.
    """

    #: Short backend identifier shown by ``repro store stats``.
    kind: str = "abstract"
    #: Where the backend's bytes live (directory or database file).
    location: Path
    #: True when :meth:`iter_shard_meta` is answered from an index
    #: instead of scanning payload bytes — cheap-inspection commands
    #: consult this before asking for a potentially full-store scan.
    indexed_shard_meta: bool = False

    def read_bytes(self, key: str, *, touch: bool = True) -> Optional[bytes]:
        """Entry bytes for *key*, or ``None`` when absent.  With
        *touch*, records a (granularity-throttled) access time for LRU
        eviction."""
        raise NotImplementedError

    def write_bytes(
        self, key: str, data: bytes, *, shard_meta: Optional[Dict[str, Any]] = None
    ) -> Path:
        """Atomically publish *data* under *key*; returns the path that
        now holds it (entry file, or the database file)."""
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        """Remove *key*'s entry; ``True`` if one existed."""
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        raise NotImplementedError

    def iter_keys(self) -> Iterator[str]:
        """All published keys, in sorted order."""
        raise NotImplementedError

    def entry_info(self, key: str) -> Optional[EntryInfo]:
        raise NotImplementedError

    def iter_entry_info(self) -> Iterator[EntryInfo]:
        """One :class:`EntryInfo` per entry, sorted by key (one pass —
        cheaper than ``entry_info`` per ``iter_keys`` key)."""
        raise NotImplementedError

    def count(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def total_bytes(self) -> int:
        return sum(info.size for info in self.iter_entry_info())

    def iter_shard_meta(self) -> Iterator[Dict[str, Any]]:
        """Per campaign-shard entry, the :func:`shard_meta_from_payload`
        dict, sorted by entry key."""
        raise NotImplementedError

    def quarantine_corrupt(
        self, key: str, decode: Callable[[bytes], Any]
    ) -> Optional[Any]:
        """Remove *key* only if its *current* bytes fail *decode*.

        The heal path: a reader that just failed to parse an entry calls
        this instead of deleting blindly, because a concurrent writer
        may have republished healthy bytes in between.  Returns the
        decoded payload when the entry turned out healthy (it is kept),
        else ``None`` (the corrupt entry is gone).
        """
        raise NotImplementedError

    def sweep_orphans(
        self,
        grace_seconds: float,
        *,
        now: Optional[float] = None,
        dry_run: bool = False,
    ) -> List[str]:
        """Remove staging debris (``.tmp``/``.quarantine`` files) older
        than *grace_seconds*; returns the names removed.  The grace
        window protects files a live writer is actively staging.  With
        *dry_run*, nothing is deleted — the returned names are the
        preview of what a real sweep would remove."""
        raise NotImplementedError

    def compact(self) -> None:
        """Return deleted entries' space to the operating system.

        Called by GC after evictions: per-file backends free space on
        ``delete`` already (no-op here), but a database backend only
        moves freed pages to an internal freelist — without compaction
        the file never shrinks and a disk-size budget is not actually
        enforced.
        """


class FilesystemBackend(StoreBackend):
    """The original sharded-directory layout: one gzip file per entry.

    ``<root>/<key[:2]>/<key>.json.gz``, published via unique tmp file +
    ``os.replace`` (atomic on POSIX), so readers never observe a half-
    written entry and same-key writers race harmlessly.  Access times
    for LRU eviction ride on the entry file's mtime, refreshed (best
    effort, throttled) on reads.
    """

    kind = "filesystem"

    def __init__(self, root) -> None:
        self.location = Path(root)

    @property
    def root(self) -> Path:
        return self.location

    def path_for(self, key: str) -> Path:
        check_key(key)
        return self.location / key[:2] / f"{key}.json.gz"

    def read_bytes(self, key: str, *, touch: bool = True) -> Optional[bytes]:
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        if touch:
            self._touch(path)
        return data

    def _touch(self, path: Path) -> None:
        """Refresh *path*'s mtime (the LRU access stamp), throttled to
        :data:`ACCESS_GRANULARITY_S` and best-effort: a vanished or
        read-only entry must never turn a cache hit into an error."""
        now = time.time()
        try:
            if now - path.stat().st_mtime > ACCESS_GRANULARITY_S:
                os.utime(path, (now, now))
        except OSError:
            pass

    def write_bytes(
        self, key: str, data: bytes, *, shard_meta: Optional[Dict[str, Any]] = None
    ) -> Path:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        return path

    def delete(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
        except FileNotFoundError:
            return False
        return True

    def contains(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def iter_entry_paths(self) -> Iterator[Path]:
        """Paths of all published entries, sorted (filesystem-specific;
        generic callers use :meth:`iter_keys`).

        Only files whose name is a valid ``<64-hex>.json.gz`` entry are
        yielded: a stray hand-dropped file in a shard directory must be
        ignored, not surface as a malformed key that aborts
        ``clear``/sync/GC with a :class:`ValidationError`.
        """
        if not self.location.is_dir():
            return
        for shard in sorted(self.location.iterdir()):
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for path in sorted(shard.glob("*.json.gz")):
                name = path.name[: -len(".json.gz")]
                if len(name) == 64 and all(c in "0123456789abcdef" for c in name):
                    yield path

    def iter_keys(self) -> Iterator[str]:
        for path in self.iter_entry_paths():
            yield path.name[: -len(".json.gz")]

    def entry_info(self, key: str) -> Optional[EntryInfo]:
        try:
            stat = self.path_for(key).stat()
        except FileNotFoundError:
            return None
        return EntryInfo(key=key, size=stat.st_size, accessed_at=stat.st_mtime)

    def iter_entry_info(self) -> Iterator[EntryInfo]:
        for path in self.iter_entry_paths():
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue
            yield EntryInfo(
                key=path.name[: -len(".json.gz")],
                size=stat.st_size,
                accessed_at=stat.st_mtime,
            )

    #: First bytes of every shard payload's canonical serialization:
    #: payloads are rendered with ``sort_keys=True`` and
    #: "campaign_trials" is the shard schema's alphabetically first key
    #: (full-campaign payloads start with "master_seed" instead), so a
    #: few decompressed bytes discard non-shard entries.
    _SHARD_ENTRY_PREFIX = '{"campaign_trials":'

    def iter_shard_meta(self) -> Iterator[Dict[str, Any]]:
        for path in self.iter_entry_paths():
            try:
                with gzip.open(path, "rt", encoding="utf-8") as fh:
                    head = fh.read(len(self._SHARD_ENTRY_PREFIX))
                    if head != self._SHARD_ENTRY_PREFIX:
                        continue
                    payload = json.loads(head + fh.read())
            except CORRUPT_ERRORS:
                continue
            meta = shard_meta_from_payload(payload)
            if meta is not None:
                yield meta

    def quarantine_corrupt(
        self, key: str, decode: Callable[[bytes], Any]
    ) -> Optional[Any]:
        path = self.path_for(key)
        quarantine = (
            path.parent / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.quarantine"
        )
        try:
            os.rename(path, quarantine)
        except OSError:
            # Entry vanished (another reader healed it) — nothing to do.
            return None
        try:
            try:
                payload = decode(quarantine.read_bytes())
            except CORRUPT_ERRORS:
                return None
            # Healthy after all: a concurrent writer republished between
            # the failed read and the rename.  Entries are immutable
            # values, so restoring these bytes is always correct (and
            # harmless if yet another writer has already replaced them).
            try:
                os.replace(quarantine, path)
            except OSError:
                pass
            return payload
        finally:
            if quarantine.exists():
                try:
                    quarantine.unlink()
                except OSError:
                    pass

    def sweep_orphans(
        self,
        grace_seconds: float,
        *,
        now: Optional[float] = None,
        dry_run: bool = False,
    ) -> List[str]:
        now = time.time() if now is None else float(now)
        removed: List[str] = []
        if not self.location.is_dir():
            return removed
        for pattern in ("*.tmp", "*.quarantine"):
            for path in sorted(self.location.rglob(pattern)):
                try:
                    if now - path.stat().st_mtime <= grace_seconds:
                        continue
                    if not dry_run:
                        path.unlink()
                except OSError:
                    continue
                removed.append(path.name)
        return removed


class SQLiteBackend(StoreBackend):
    """Single-file SQLite store with an indexed metadata table.

    One WAL-mode database holds every entry: the canonical gzip payload
    bytes in a BLOB, with size, created/accessed timestamps, and — for
    campaign-shard payloads — the shard listing metadata captured as a
    JSON column at ``put`` time.  ``count``/``total_bytes``/
    ``iter_shard_meta`` are answered from the index, so store-wide
    listings cost O(entries-in-index) instead of
    O(decompress-every-payload).

    Writes are transactions (atomic under concurrent multi-process
    access; ``busy_timeout`` absorbs lock contention), and a
    ``threading.Lock`` serializes this instance's shared connection
    across threads.
    """

    kind = "sqlite"
    indexed_shard_meta = True

    #: Conventional suffixes :func:`open_backend` routes here.
    SUFFIXES = (".sqlite", ".sqlite3", ".db")

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS entries (
        key         TEXT PRIMARY KEY,
        data        BLOB NOT NULL,
        size        INTEGER NOT NULL,
        created_at  REAL NOT NULL,  -- informational; not in EntryInfo (fs parity)
        accessed_at REAL NOT NULL,
        shard_meta  TEXT
    );
    CREATE INDEX IF NOT EXISTS idx_entries_shard
        ON entries(key) WHERE shard_meta IS NOT NULL;
    """

    def __init__(self, path) -> None:
        self.location = Path(path)
        self._lock = threading.Lock()
        self._connection: Optional[sqlite3.Connection] = None
        self._owner_pid: Optional[int] = None

    def _conn(self) -> sqlite3.Connection:
        """The lazily created instance connection.

        Re-opened after a ``fork``: SQLite connections must not be
        shared across processes, and worker processes inherit this
        object when a store crosses a ``multiprocessing`` boundary.
        """
        pid = os.getpid()
        if self._connection is None or self._owner_pid != pid:
            try:
                self.location.parent.mkdir(parents=True, exist_ok=True)
                conn = sqlite3.connect(
                    self.location,
                    timeout=30.0,
                    check_same_thread=False,
                    isolation_level=None,  # autocommit; explicit BEGIN where needed
                )
                conn.execute("PRAGMA busy_timeout=30000")
                try:
                    conn.execute("PRAGMA journal_mode=WAL")
                except sqlite3.OperationalError:
                    pass  # filesystem without WAL support: default journal is fine
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.executescript(self._SCHEMA)
            except (sqlite3.Error, OSError) as exc:
                # E.g. a *directory* named foo.db, or a truncated copy
                # whose header survived — surface the store's own error
                # type, not a raw sqlite3 traceback.
                raise ValidationError(
                    f"cannot open SQLite store {self.location}: {exc}"
                ) from exc
            self._connection = conn
            self._owner_pid = pid
        return self._connection

    def read_bytes(self, key: str, *, touch: bool = True) -> Optional[bytes]:
        check_key(key)
        with self._lock:
            conn = self._conn()
            row = conn.execute(
                "SELECT data, accessed_at FROM entries WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                return None
            data, accessed_at = bytes(row[0]), float(row[1])
            if touch:
                now = time.time()
                if now - accessed_at > ACCESS_GRANULARITY_S:
                    try:
                        conn.execute(
                            "UPDATE entries SET accessed_at = ? WHERE key = ?",
                            (now, key),
                        )
                    except sqlite3.OperationalError:
                        # Best-effort, like the filesystem _touch: a
                        # held write lock (e.g. a concurrent GC VACUUM)
                        # must not turn a pure cache read into an error.
                        pass
            return data

    def write_bytes(
        self, key: str, data: bytes, *, shard_meta: Optional[Dict[str, Any]] = None
    ) -> Path:
        check_key(key)
        meta_json = (
            None
            if shard_meta is None
            else json.dumps(shard_meta, sort_keys=True, allow_nan=True)
        )
        now = time.time()
        with self._lock:
            self._conn().execute(
                """
                INSERT INTO entries (key, data, size, created_at, accessed_at, shard_meta)
                VALUES (?, ?, ?, ?, ?, ?)
                ON CONFLICT(key) DO UPDATE SET
                    data = excluded.data,
                    size = excluded.size,
                    accessed_at = excluded.accessed_at,
                    shard_meta = excluded.shard_meta
                """,
                (key, sqlite3.Binary(data), len(data), now, now, meta_json),
            )
        return self.location

    def delete(self, key: str) -> bool:
        check_key(key)
        with self._lock:
            cursor = self._conn().execute(
                "DELETE FROM entries WHERE key = ?", (key,)
            )
            return cursor.rowcount > 0

    def contains(self, key: str) -> bool:
        check_key(key)
        with self._lock:
            row = self._conn().execute(
                "SELECT 1 FROM entries WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    def iter_keys(self) -> Iterator[str]:
        with self._lock:
            keys = [
                row[0]
                for row in self._conn().execute(
                    "SELECT key FROM entries ORDER BY key"
                )
            ]
        return iter(keys)

    def entry_info(self, key: str) -> Optional[EntryInfo]:
        check_key(key)
        with self._lock:
            row = self._conn().execute(
                "SELECT size, accessed_at FROM entries WHERE key = ?",
                (key,),
            ).fetchone()
        if row is None:
            return None
        return EntryInfo(key=key, size=int(row[0]), accessed_at=float(row[1]))

    def iter_entry_info(self) -> Iterator[EntryInfo]:
        with self._lock:
            rows = self._conn().execute(
                "SELECT key, size, accessed_at FROM entries ORDER BY key"
            ).fetchall()
        return iter(
            EntryInfo(key=row[0], size=int(row[1]), accessed_at=float(row[2]))
            for row in rows
        )

    def count(self) -> int:
        with self._lock:
            return int(
                self._conn().execute("SELECT COUNT(*) FROM entries").fetchone()[0]
            )

    def total_bytes(self) -> int:
        with self._lock:
            return int(
                self._conn()
                .execute("SELECT COALESCE(SUM(size), 0) FROM entries")
                .fetchone()[0]
            )

    def iter_shard_meta(self) -> Iterator[Dict[str, Any]]:
        with self._lock:
            rows = self._conn().execute(
                "SELECT shard_meta FROM entries "
                "WHERE shard_meta IS NOT NULL ORDER BY key"
            ).fetchall()
        return iter(json.loads(row[0]) for row in rows)

    def quarantine_corrupt(
        self, key: str, decode: Callable[[bytes], Any]
    ) -> Optional[Any]:
        check_key(key)
        with self._lock:
            conn = self._conn()
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT data FROM entries WHERE key = ?", (key,)
                ).fetchone()
                if row is None:
                    return None
                try:
                    payload = decode(bytes(row[0]))
                except CORRUPT_ERRORS:
                    conn.execute("DELETE FROM entries WHERE key = ?", (key,))
                    return None
                return payload
            finally:
                conn.execute("COMMIT")

    def sweep_orphans(
        self,
        grace_seconds: float,
        *,
        now: Optional[float] = None,
        dry_run: bool = False,
    ) -> List[str]:
        # Writes are transactions; SQLite leaves no staging files to
        # orphan (WAL/journal files belong to the live database).
        return []

    def compact(self) -> None:
        # Deleted rows only reach SQLite's freelist; VACUUM rebuilds
        # the file so evicting to a size budget actually shrinks it,
        # and the checkpoint truncates the WAL sidecar.
        with self._lock:
            conn = self._conn()
            try:
                conn.execute("VACUUM")
                conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.OperationalError:
                pass  # concurrent writer holds the lock; next GC retries


#: Every SQLite database begins with this 16-byte header.
_SQLITE_MAGIC = b"SQLite format 3\x00"


def open_backend(root) -> StoreBackend:
    """The backend for *root*: an existing regular file or a path with a
    SQLite suffix opens a :class:`SQLiteBackend`; anything else is a
    :class:`FilesystemBackend` directory root (created on first write).

    Existing regular files are verified against the SQLite magic header
    first (an empty file is fine — SQLite initializes it): pointing a
    store path at some other file must fail with a clear
    :class:`~repro.errors.ValidationError` up front, not a raw
    ``sqlite3.DatabaseError`` out of the first query.
    """
    path = Path(root)
    if path.is_file():
        try:
            with open(path, "rb") as fh:
                header = fh.read(len(_SQLITE_MAGIC))
        except OSError as exc:
            raise ValidationError(f"cannot read store file {path}: {exc}") from exc
        if header and header != _SQLITE_MAGIC:
            raise ValidationError(
                f"{path} is an existing file but not a SQLite store "
                f"(store roots are directories, or .sqlite/.db database files)"
            )
        return SQLiteBackend(path)
    if path.suffix.lower() in SQLiteBackend.SUFFIXES:
        return SQLiteBackend(path)
    return FilesystemBackend(path)
