"""Centralized least-squares-scaling (LSS) localization with soft
constraints (Section 4.2) — the paper's primary contribution.

LSS seeks a planar configuration minimizing the weighted stress::

    E_w = sum_{d_ij in D} w_ij * ( ||p_i - p_j|| - d_ij )^2

over the *available* measurements only (unlike classical MDS, no full
distance matrix is needed).  Deployments with a known minimum node
spacing ``d_min`` add the paper's *soft constraint*: every pair
*without* a measurement is penalized while its current estimate
violates the spacing::

    E = E_w + sum_{d_ij not in D} w_D * ( min(||p_i - p_j||, d_min) - d_min )^2

The penalty set changes dynamically as the minimization progresses —
"this can be visualized as straightening a plane which is incorrectly
folded".

Minimization is gradient descent (Equation 1) with adaptive step size
and heavy-ball momentum (a drop-in accelerant for the paper's plain
update rule — same fixed points, far fewer epochs on these
ill-conditioned stress surfaces); to escape local minima, each round
restarts from the best configuration so far perturbed by Gaussian
noise, exactly the paper's procedure.  The per-epoch error trace is
recorded to reproduce Figure 23.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize as _scipy_minimize

from .._validation import as_positions, check_non_negative, check_positive, ensure_rng
from ..errors import InsufficientDataError, ValidationError
from .measurements import EdgeList, MeasurementSet

__all__ = [
    "LssConfig",
    "LssResult",
    "lss_error",
    "lss_gradient",
    "lss_localize",
    "lss_localize_robust",
]


@dataclass(frozen=True)
class LssConfig:
    """Hyper-parameters of the LSS minimization.

    Attributes
    ----------
    min_spacing_m : float or None
        ``d_min``, the deployment's minimum node separation.  ``None``
        disables the soft constraint (the paper's ablation: Figures 19
        and 22).
    constraint_weight : float
        ``w_D``; the paper's experiments used 10 (with ``w_ij = 1``).
    max_epochs : int
        Gradient-descent epochs per restart round.
    restarts : int
        Perturbation restart rounds ("the gradient descent starts each
        round of minimization with seed positions obtained by perturbing
        the best results so far").
    perturbation_m : float
        Std of the Gaussian perturbation applied between rounds.
    step_size : float
        Initial gradient step ``alpha``; adapted multiplicatively
        (x1.05 on improvement, /2 on overshoot).
    tolerance : float
        Stop a round early when the error improves by less than this
        (relatively) over a patience window.
    init_span_m : float or None
        Random initial positions are drawn uniformly in a square of
        this side; ``None`` derives it from the measured distances.
    backend : {"gd", "gd-scalar", "lbfgs"}
        ``"gd"`` is the paper's gradient descent, executed through the
        batched engine kernel (:func:`repro.engine.batch.batch_lss_descend`
        with a batch of one); ``"gd-scalar"`` is the pre-engine scalar
        implementation, kept as the reference path for the
        batched/scalar parity tests; ``"lbfgs"`` is a scipy cross-check
        backend used by the ablation benchmarks.
    """

    min_spacing_m: Optional[float] = None
    constraint_weight: float = 10.0
    max_epochs: int = 2000
    restarts: int = 8
    perturbation_m: float = 3.0
    step_size: float = 0.02
    tolerance: float = 1e-7
    init_span_m: Optional[float] = None
    backend: str = "gd"

    def __post_init__(self):
        if self.min_spacing_m is not None:
            check_positive(self.min_spacing_m, "min_spacing_m")
        check_non_negative(self.constraint_weight, "constraint_weight")
        if self.max_epochs < 1:
            raise ValidationError("max_epochs must be >= 1")
        if self.restarts < 1:
            raise ValidationError("restarts must be >= 1")
        check_non_negative(self.perturbation_m, "perturbation_m")
        check_positive(self.step_size, "step_size")
        check_non_negative(self.tolerance, "tolerance")
        if self.init_span_m is not None:
            check_positive(self.init_span_m, "init_span_m")
        if self.backend not in ("gd", "gd-scalar", "lbfgs"):
            raise ValidationError("backend must be 'gd', 'gd-scalar' or 'lbfgs'")


@dataclass
class LssResult:
    """Outcome of one LSS localization run.

    Attributes
    ----------
    positions : ndarray of shape (n, 2)
        The best configuration found (relative coordinates; align to a
        reference frame for evaluation or deployment use).
    error : float
        Final value of the full objective ``E`` (including constraint
        terms).
    stress : float
        Final value of the measurement-only term ``E_w``.
    error_trace : ndarray
        Objective value after every gradient epoch, across all restart
        rounds (Figure 23's curves).
    round_boundaries : list of int
        Indices into *error_trace* where each restart round began.
    epochs_run : int
        Total gradient epochs across rounds.
    converged : bool
        Whether the final round hit the improvement tolerance before
        exhausting its epochs.
    """

    positions: np.ndarray
    error: float
    stress: float
    error_trace: np.ndarray = field(repr=False)
    round_boundaries: List[int] = field(default_factory=list)
    epochs_run: int = 0
    converged: bool = False


def _prepare_edges(measurements, n_nodes: int) -> EdgeList:
    if isinstance(measurements, MeasurementSet):
        edges = measurements.to_edge_list()
    elif isinstance(measurements, EdgeList):
        edges = measurements
    else:
        raise ValidationError(
            "measurements must be a MeasurementSet or EdgeList; "
            f"got {type(measurements)!r}"
        )
    if len(edges) == 0:
        raise InsufficientDataError("no distance measurements supplied")
    if np.any(edges.pairs < 0) or np.any(edges.pairs >= n_nodes):
        raise ValidationError("edge indices outside [0, n_nodes)")
    return edges


def _constraint_pairs(n_nodes: int, measured_pairs: np.ndarray) -> np.ndarray:
    """All undirected pairs with no measurement (the soft-constraint set)."""
    measured = set(map(tuple, measured_pairs.tolist()))
    iu = np.triu_indices(n_nodes, k=1)
    unmeasured = [
        (int(i), int(j))
        for i, j in zip(iu[0], iu[1])
        if (int(i), int(j)) not in measured
    ]
    if not unmeasured:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(unmeasured, dtype=np.int64)


def lss_error(
    positions,
    edges: EdgeList,
    *,
    constraint_pairs: Optional[np.ndarray] = None,
    min_spacing_m: Optional[float] = None,
    constraint_weight: float = 10.0,
) -> float:
    """Evaluate the full LSS objective ``E`` at a configuration."""
    pts = as_positions(positions, "positions")
    diff = pts[edges.pairs[:, 0]] - pts[edges.pairs[:, 1]]
    comp = np.hypot(diff[:, 0], diff[:, 1])
    value = float(np.sum(edges.weights * (comp - edges.distances) ** 2))
    if min_spacing_m is not None and constraint_pairs is not None and constraint_pairs.size:
        cdiff = pts[constraint_pairs[:, 0]] - pts[constraint_pairs[:, 1]]
        ccomp = np.hypot(cdiff[:, 0], cdiff[:, 1])
        violation = np.minimum(ccomp, min_spacing_m) - min_spacing_m
        value += float(constraint_weight * np.sum(violation**2))
    return value


def lss_gradient(
    positions,
    edges: EdgeList,
    *,
    constraint_pairs: Optional[np.ndarray] = None,
    min_spacing_m: Optional[float] = None,
    constraint_weight: float = 10.0,
) -> np.ndarray:
    """Gradient of the LSS objective w.r.t. all coordinates, shape (n, 2).

    Vectorized form of the paper's partial derivatives: for each
    measured pair, ``2 w_ij (d_comp - d_ij) (p_i - p_j) / d_comp``
    accumulated onto node *i* (and its negation onto node *j*);
    violated constraint pairs contribute the analogous term with
    ``d_min`` in place of the measurement.
    """
    pts = as_positions(positions, "positions")
    grad = np.zeros_like(pts)

    i_idx = edges.pairs[:, 0]
    j_idx = edges.pairs[:, 1]
    diff = pts[i_idx] - pts[j_idx]
    comp = np.hypot(diff[:, 0], diff[:, 1])
    safe = np.maximum(comp, 1e-12)
    coeff = 2.0 * edges.weights * (comp - edges.distances) / safe
    contrib = coeff[:, None] * diff
    np.add.at(grad, i_idx, contrib)
    np.add.at(grad, j_idx, -contrib)

    if min_spacing_m is not None and constraint_pairs is not None and constraint_pairs.size:
        ci = constraint_pairs[:, 0]
        cj = constraint_pairs[:, 1]
        cdiff = pts[ci] - pts[cj]
        ccomp = np.hypot(cdiff[:, 0], cdiff[:, 1])
        violated = ccomp < min_spacing_m
        if np.any(violated):
            vi = ci[violated]
            vj = cj[violated]
            vdiff = cdiff[violated]
            vcomp = np.maximum(ccomp[violated], 1e-12)
            vcoeff = 2.0 * constraint_weight * (vcomp - min_spacing_m) / vcomp
            vcontrib = vcoeff[:, None] * vdiff
            np.add.at(grad, vi, vcontrib)
            np.add.at(grad, vj, -vcontrib)
    return grad


def _descend(
    pts: np.ndarray,
    edges: EdgeList,
    constraint_pairs: Optional[np.ndarray],
    config: LssConfig,
    trace: List[float],
    free_mask: np.ndarray,
) -> Tuple[np.ndarray, float, bool]:
    """One gradient-descent round through the engine's batched kernel.

    Runs :func:`repro.engine.batch.batch_lss_descend` with a batch of
    one — the same code path multi-seed campaigns batch over — so a
    single-configuration round and a stacked round follow identical
    per-configuration trajectories.
    """
    from ..engine.batch import batch_lss_descend

    traces: List[List[float]] = [trace]
    out, errors, converged = batch_lss_descend(
        pts[None, :, :],
        edges,
        constraint_pairs,
        min_spacing_m=config.min_spacing_m,
        constraint_weight=config.constraint_weight,
        step_size=config.step_size,
        max_epochs=config.max_epochs,
        tolerance=config.tolerance,
        free_mask=free_mask,
        traces=traces,
    )
    return out[0], float(errors[0]), bool(converged[0])


def _descend_scalar(
    pts: np.ndarray,
    edges: EdgeList,
    constraint_pairs: Optional[np.ndarray],
    config: LssConfig,
    trace: List[float],
    free_mask: np.ndarray,
) -> Tuple[np.ndarray, float, bool]:
    """One gradient-descent round from *pts*; returns (best, error, converged).

    The pre-engine scalar implementation, kept verbatim as the
    reference path for the batched/scalar parity contract
    (``backend="gd-scalar"``).
    """
    kwargs = dict(
        constraint_pairs=constraint_pairs,
        min_spacing_m=config.min_spacing_m,
        constraint_weight=config.constraint_weight,
    )
    current = lss_error(pts, edges, **kwargs)
    alpha = config.step_size
    momentum = 0.9
    velocity = np.zeros_like(pts)
    patience = 50
    stall = 0
    converged = False
    for _ in range(config.max_epochs):
        grad = lss_gradient(pts, edges, **kwargs)
        grad[~free_mask] = 0.0
        velocity = momentum * velocity - alpha * grad
        candidate = pts + velocity
        value = lss_error(candidate, edges, **kwargs)
        if value < current:
            improvement = (current - value) / max(current, 1e-12)
            pts = candidate
            current = value
            alpha *= 1.05
            stall = stall + 1 if improvement < config.tolerance else 0
        else:
            # Overshoot: damp the step and kill the momentum so the
            # next step is a plain (smaller) gradient step.
            alpha *= 0.5
            velocity[:] = 0.0
            stall += 1
            if alpha < 1e-14:
                converged = True
                trace.append(current)
                break
        trace.append(current)
        if stall >= patience:
            converged = True
            break
    return pts, current, converged


def _lbfgs_round(
    pts: np.ndarray,
    edges: EdgeList,
    constraint_pairs: Optional[np.ndarray],
    config: LssConfig,
    trace: List[float],
    free_mask: np.ndarray,
) -> Tuple[np.ndarray, float, bool]:
    """Cross-check backend: scipy L-BFGS-B on the same objective."""
    n = pts.shape[0]
    kwargs = dict(
        constraint_pairs=constraint_pairs,
        min_spacing_m=config.min_spacing_m,
        constraint_weight=config.constraint_weight,
    )
    frozen = pts.copy()

    def fun(flat):
        p = flat.reshape(n, 2).copy()
        p[~free_mask] = frozen[~free_mask]
        value = lss_error(p, edges, **kwargs)
        grad = lss_gradient(p, edges, **kwargs)
        grad[~free_mask] = 0.0
        trace.append(value)
        return value, grad.ravel()

    result = _scipy_minimize(
        fun,
        pts.ravel(),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": config.max_epochs},
    )
    out = result.x.reshape(n, 2).copy()
    out[~free_mask] = frozen[~free_mask]
    return out, float(result.fun), bool(result.success)


def lss_localize(
    measurements,
    n_nodes: int,
    *,
    config: Optional[LssConfig] = None,
    initial=None,
    fixed_positions: Optional[Dict[int, Sequence[float]]] = None,
    rng=None,
) -> LssResult:
    """Run centralized LSS localization.

    Parameters
    ----------
    measurements : MeasurementSet or EdgeList
        Available range measurements (a subset of all pairs is fine —
        that is the point of LSS).
    n_nodes : int
        Number of nodes; ids run 0..n_nodes-1.  Nodes with no
        measurements at all are placed but meaningless; check
        connectivity upstream if that matters.
    config : LssConfig
        Hyper-parameters; defaults follow the paper (w_D = 10).
    initial : array-like of shape (n, 2), optional
        Starting configuration; random if omitted.
    fixed_positions : dict, optional
        Node id -> (x, y) to pin during minimization (anchored LSS —
        an extension; the paper's runs are fully anchor-free).
    rng : None, int or Generator
        Randomness for initialization and perturbation restarts.
    """
    config = config if config is not None else LssConfig()
    rng = ensure_rng(rng)
    edges = _prepare_edges(measurements, n_nodes)

    constraint_pairs = None
    if config.min_spacing_m is not None:
        constraint_pairs = _constraint_pairs(n_nodes, edges.pairs)

    span = config.init_span_m
    if span is None:
        # A square comfortably containing a configuration whose edges
        # have the measured lengths.
        span = max(1.0, float(np.median(edges.distances)) * math.sqrt(n_nodes))

    free_mask = np.ones(n_nodes, dtype=bool)
    pins: Dict[int, np.ndarray] = {}
    if fixed_positions:
        for node_id, pos in fixed_positions.items():
            node_id = int(node_id)
            if not 0 <= node_id < n_nodes:
                raise ValidationError(f"fixed node id {node_id} outside [0, {n_nodes})")
            arr = np.asarray(pos, dtype=float)
            if arr.shape != (2,):
                raise ValidationError("fixed positions must be (x, y) pairs")
            pins[node_id] = arr
            free_mask[node_id] = False

    if initial is not None:
        pts = as_positions(initial, "initial").copy()
        if pts.shape != (n_nodes, 2):
            raise ValidationError(f"initial must have shape ({n_nodes}, 2)")
    else:
        pts = rng.uniform(0.0, span, size=(n_nodes, 2))
    for node_id, arr in pins.items():
        pts[node_id] = arr

    if config.backend == "gd":
        descend = _descend
    elif config.backend == "gd-scalar":
        descend = _descend_scalar
    else:
        descend = _lbfgs_round

    kwargs = dict(
        constraint_pairs=constraint_pairs,
        min_spacing_m=config.min_spacing_m,
        constraint_weight=config.constraint_weight,
    )
    trace: List[float] = []
    boundaries: List[int] = []
    best_pts = pts
    best_error = lss_error(pts, edges, **kwargs)
    converged = False
    for round_index in range(config.restarts):
        boundaries.append(len(trace))
        if round_index == 0:
            seed = best_pts
        else:
            seed = best_pts + rng.normal(0.0, config.perturbation_m, size=(n_nodes, 2))
            for node_id, arr in pins.items():
                seed[node_id] = arr
        out_pts, out_error, converged = descend(
            seed, edges, constraint_pairs, config, trace, free_mask
        )
        if out_error < best_error:
            best_pts = out_pts
            best_error = out_error

    stress = lss_error(
        best_pts,
        edges,
        constraint_pairs=None,
        min_spacing_m=None,
        constraint_weight=0.0,
    )
    return LssResult(
        positions=np.asarray(best_pts, dtype=float),
        error=float(best_error),
        stress=float(stress),
        error_trace=np.asarray(trace, dtype=float),
        round_boundaries=boundaries,
        epochs_run=len(trace),
        converged=converged,
    )


def lss_localize_robust(
    measurements,
    n_nodes: int,
    *,
    config: Optional[LssConfig] = None,
    trim_residual_m: float = 3.0,
    trim_max_weight: float = 1.0,
    max_trim_rounds: int = 2,
    rng=None,
    **kwargs,
) -> LssResult:
    """LSS with residual-based trimming of low-confidence measurements.

    Runs :func:`lss_localize`, then discards edges whose fit residual
    exceeds *trim_residual_m* and whose confidence weight is below
    *trim_max_weight*, and refits from the previous configuration —
    repeating up to *max_trim_rounds* times.  This is the measurement-
    level analogue of the paper's consistency checking: an
    uncorroborated range that disagrees wildly with the consensus
    configuration is more likely a noise-burst artifact than evidence.

    Corroborated edges (weight >= *trim_max_weight*) are held to a 3x
    looser threshold, mirroring
    :func:`repro.core.distributed.build_local_maps`.
    """
    if trim_residual_m <= 0:
        raise ValidationError("trim_residual_m must be positive")
    if max_trim_rounds < 0:
        raise ValidationError("max_trim_rounds must be non-negative")
    rng = ensure_rng(rng)
    edges = _prepare_edges(measurements, n_nodes)
    result = lss_localize(edges, n_nodes, config=config, rng=rng, **kwargs)
    for _ in range(max_trim_rounds):
        diff = result.positions[edges.pairs[:, 0]] - result.positions[edges.pairs[:, 1]]
        comp = np.hypot(diff[:, 0], diff[:, 1])
        residuals = np.abs(comp - edges.distances)
        drop = ((residuals > trim_residual_m) & (edges.weights < trim_max_weight)) | (
            residuals > 3.0 * trim_residual_m
        )
        if not np.any(drop) or (~drop).sum() < 3:
            break
        edges = EdgeList(
            pairs=edges.pairs[~drop],
            distances=edges.distances[~drop],
            weights=edges.weights[~drop],
        )
        result = lss_localize(
            edges,
            n_nodes,
            config=config,
            initial=result.positions,
            rng=rng,
            **kwargs,
        )
    return result
